//! The packer worker pool: each worker repeatedly takes the fair-share
//! pick from the queue and advances it through the stepping API until the
//! job finishes, is cancelled, or yields its slot to a poorer job.
//!
//! Preemption is cooperative and checkpoint-shaped: a worker only ever
//! stops at a batch boundary, where [`CollectivePacker::capture_state`]
//! is exact, so an evicted job restored later continues bitwise
//! identically to a run that was never preempted (the PR-5/6 resume
//! guarantee). Durability comes from the same mechanism: every
//! `checkpoint_every` optimizer steps (quantized to the next batch
//! boundary) the captured state is written to the rotating disk
//! checkpoint, which a restarted server resumes from after a crash.
//! Boundary captures are pure reads — unlike the packer's own mid-batch
//! step cadence (which resets the Verlet reference and can follow a
//! different, equally valid trajectory), they leave the run untouched, so
//! a served artifact is byte-identical to `adampack pack` without any
//! checkpoint flags.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adampack_core::checkpoint::{self, RunState};
use adampack_core::prelude::*;
use adampack_io::RotatingCheckpointWriter;
use adampack_telemetry::metrics::{
    SERVER_DISK_FULL_TOTAL, SERVER_JOBS_CANCELLED_TOTAL, SERVER_JOBS_COMPLETED_TOTAL,
    SERVER_JOBS_EXPIRED_TOTAL, SERVER_JOBS_FAILED_TOTAL, SERVER_JOBS_RESUMED_TOTAL,
    SERVER_PREEMPTIONS_TOTAL,
};
use adampack_telemetry::{info, warn};

use crate::address::{format_address, run_salt};
use crate::cache::FileKind;
use crate::state::{Inner, JobPhase};

/// Failpoint site: when armed, the worker abandons its current job right
/// after a batch boundary without completing, cancelling or requeueing it
/// — the in-process stand-in for a SIGKILLed worker in the chaos tests
/// (the job's disk checkpoints survive; a fresh server resumes them).
pub const FAILPOINT_WORKER_CRASH: &str = "server.worker.crash";

/// How a worker episode ended (worker-internal).
enum EpisodeEnd {
    Finished(PackResult),
    Preempted(RunState),
    Cancelled,
    Crashed,
    Failed(PackError),
    Shutdown(Option<RunState>),
    /// Ran past its wall-clock deadline or step ceiling (per-job budget).
    Expired(RunState),
    /// Post-persist rewrites of `Finished` (the disk work happens before
    /// the registry lock is taken; these carry its outcome inside).
    Persisted {
        packed: usize,
    },
    Parked {
        packed: usize,
        bytes: Vec<u8>,
    },
    Failed2 {
        packed: usize,
        error: String,
    },
}

/// The worker loop: runs until shutdown or drain. A draining worker
/// finishes (or parks) its current episode and exits instead of picking
/// new work, so a drain converges even with a deep queue.
pub(crate) fn run(inner: Arc<Inner>) {
    loop {
        if inner.refusing() {
            return;
        }
        match inner.pick() {
            Some(addr) => episode(&inner, addr),
            None => inner.park(Duration::from_millis(100)),
        }
    }
}

/// Loads the newest decodable checkpoint for `addr`, if any.
fn load_disk_state(inner: &Inner, addr: u64) -> Option<RunState> {
    let path = inner.checkpoint_path(addr);
    for cand in adampack_io::checkpoint_candidates(&path, inner.opts.keep_last) {
        match std::fs::read(&cand) {
            Err(e) => warn!(
                "job {}: checkpoint {} unreadable: {e}",
                format_address(addr),
                cand.display()
            ),
            Ok(bytes) => match checkpoint::decode(&bytes) {
                Ok(state) => return Some(state),
                Err(e) => warn!(
                    "job {}: checkpoint {} rejected: {e}",
                    format_address(addr),
                    cand.display()
                ),
            },
        }
    }
    None
}

/// Removes the job's checkpoint rotation (after completion/failure),
/// keeping the LRU ledger in sync.
fn clear_checkpoints(inner: &Inner, addr: u64) {
    inner.clear_checkpoints(addr);
}

/// Registers the job's current checkpoint generations with the LRU
/// ledger (after a successful save: the rotation may have shifted every
/// file).
fn record_checkpoints(inner: &Inner, addr: u64) {
    let path = inner.checkpoint_path(addr);
    let mut cache = inner.cache.lock().unwrap();
    for (i, cand) in adampack_io::checkpoint_candidates(&path, inner.opts.keep_last)
        .into_iter()
        .enumerate()
    {
        let kind = if i == 0 {
            FileKind::NewestCheckpoint
        } else {
            FileKind::RotatedCheckpoint
        };
        let bytes = std::fs::metadata(&cand).map(|m| m.len()).unwrap_or(0);
        cache.insert(cand, addr, kind, bytes);
    }
}

/// Saves a durability checkpoint, degrading on a full disk: evict LRU
/// cache entries and retry once; a persistent failure is logged (the
/// run continues — checkpoints are an optimization, not correctness).
fn save_checkpoint(
    inner: &Inner,
    addr: u64,
    writer: &mut RotatingCheckpointWriter,
    state: &RunState,
) -> bool {
    let bytes = checkpoint::encode(state);
    inner.make_room(bytes.len() as u64);
    let mut result = writer.save(&bytes);
    if result.as_ref().is_err_and(|e| e.is_disk_full()) {
        SERVER_DISK_FULL_TOTAL.inc();
        inner.make_room(bytes.len() as u64);
        result = writer.save(&bytes);
    }
    match result {
        Ok(()) => {
            record_checkpoints(inner, addr);
            inner
                .disk_full
                .store(false, std::sync::atomic::Ordering::Relaxed);
            true
        }
        Err(e) => {
            if e.is_disk_full() {
                SERVER_DISK_FULL_TOTAL.inc();
                inner
                    .disk_full
                    .store(true, std::sync::atomic::Ordering::Relaxed);
            }
            warn!(
                "job {}: checkpoint write failed (run continues): {e}",
                format_address(addr)
            );
            false
        }
    }
}

/// One scheduling episode: own the job from pick to finish/preempt.
fn episode(inner: &Inner, addr: u64) {
    // Snapshot the inputs; the registry lock is never held while packing.
    let (container, params, psd, held, admitted_at, steps_base, pending) = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(job) = jobs.get_mut(&addr) else {
            return;
        };
        if job.cancel {
            job.phase = JobPhase::Cancelled;
            job.held = None;
            job.pending_artifact = None;
            SERVER_JOBS_CANCELLED_TOTAL.inc();
            drop(jobs);
            // A cancel that lands between eviction and re-pick must not
            // leave checkpoint debris behind.
            clear_checkpoints(inner, addr);
            return;
        }
        (
            job.container.clone(),
            job.params.clone(),
            job.psd.clone(),
            job.held.take(),
            job.admitted_at,
            job.budget_steps_base,
            job.pending_artifact.take(),
        )
    };

    // A finished result parked by a disk-full episode: persisting the
    // bytes is all that remains — no packing, no checkpoint dance.
    if let Some(bytes) = pending {
        retry_pending_artifact(inner, addr, bytes);
        return;
    }

    let mut packer = CollectivePacker::new(container, params);
    packer.set_fingerprint_context(run_salt());

    // Restore order: in-memory preemption state, then disk checkpoints
    // (crash recovery), then a fresh run. A stale or mismatched disk
    // checkpoint degrades to a fresh start instead of wedging the job.
    let mut prog = match held {
        Some(state) => match packer.begin_resumed(state, true) {
            Ok(p) => p,
            Err(e) => {
                warn!(
                    "job {}: held state rejected ({e}); restarting",
                    format_address(addr)
                );
                packer.begin_run(Vec::new(), true)
            }
        },
        None => match load_disk_state(inner, addr) {
            Some(state) => match packer.begin_resumed(state, true) {
                Ok(p) => {
                    SERVER_JOBS_RESUMED_TOTAL.inc();
                    info!("job {}: resumed from disk checkpoint", format_address(addr));
                    p
                }
                Err(e) => {
                    warn!(
                        "job {}: disk checkpoint rejected ({e}); restarting",
                        format_address(addr)
                    );
                    packer.begin_run(Vec::new(), true)
                }
            },
            None => packer.begin_run(Vec::new(), true),
        },
    };

    // Durability checkpoints are taken from exact batch-boundary captures,
    // never from the packer's mid-batch step cadence: boundary captures
    // are pure reads, so the trajectory (and the final artifact bytes)
    // matches a plain, cadence-free `adampack pack` of the same config.
    let mut cadence: Option<CheckpointCadence> = None;
    let mut writer =
        RotatingCheckpointWriter::new(inner.checkpoint_path(addr), inner.opts.keep_last);
    let mut last_saved_steps = prog.steps_taken();

    let slice = Duration::from_millis(inner.opts.slice_ms.max(1));
    let start = Instant::now();
    let mut consumed_base = 0u64;
    {
        let jobs = inner.jobs.lock().unwrap();
        if let Some(job) = jobs.get(&addr) {
            consumed_base = job.consumed_ns;
        }
    }

    let end = loop {
        if prog.finished() {
            break EpisodeEnd::Finished(packer.finish_run(prog));
        }
        if let Err(e) = packer.advance_batch(&psd, &mut prog, &mut cadence) {
            break EpisodeEnd::Failed(e);
        }
        let every = inner.opts.checkpoint_every as u64;
        if !prog.finished()
            && every > 0
            && prog.steps_taken() - last_saved_steps >= every
            && save_checkpoint(inner, addr, &mut writer, &packer.capture_state(&prog))
        {
            last_saved_steps = prog.steps_taken();
        }
        // Publish progress and poll the cancel flag at the boundary.
        let cancelled = {
            let mut jobs = inner.jobs.lock().unwrap();
            match jobs.get_mut(&addr) {
                Some(job) => {
                    job.packed = prog.packed();
                    job.steps = prog.steps_taken();
                    job.consumed_ns = consumed_base + start.elapsed().as_nanos() as u64;
                    job.cancel
                }
                None => true,
            }
        };
        if cancelled {
            break EpisodeEnd::Cancelled;
        }
        if failpoints::should_fail(FAILPOINT_WORKER_CRASH) {
            break EpisodeEnd::Crashed;
        }
        if prog.finished() {
            continue;
        }
        if inner.refusing() {
            break EpisodeEnd::Shutdown(Some(packer.capture_state(&prog)));
        }
        // Per-job budgets, enforced at the same exact boundary as
        // preemption so the persisted state resumes bitwise. The step
        // ceiling measures steps *since admission* (the cumulative
        // counter survives resume), so resubmitting an expired job buys
        // a fresh budget that actually advances the run.
        let deadline = inner.opts.limits.job_deadline_s;
        let ceiling = inner.opts.limits.job_step_ceiling;
        if (deadline > 0 && admitted_at.elapsed() >= Duration::from_secs(deadline))
            || (ceiling > 0 && prog.steps_taken().saturating_sub(steps_base) >= ceiling)
        {
            break EpisodeEnd::Expired(packer.capture_state(&prog));
        }
        let my_consumed = consumed_base + start.elapsed().as_nanos() as u64;
        if start.elapsed() >= slice && inner.poorer_waiting(my_consumed) {
            break EpisodeEnd::Preempted(packer.capture_state(&prog));
        }
    };

    let spent = start.elapsed().as_nanos() as u64;

    // Disk-touching epilogues (persist, budget checkpoint) run BEFORE
    // taking the registry lock: eviction needs the lock to snapshot
    // in-flight jobs, so holding it here would self-deadlock.
    let end = match end {
        EpisodeEnd::Finished(result) => {
            let packed = result.particles.len();
            match encode_artifact(&result) {
                Err(e) => EpisodeEnd::Failed2 { packed, error: e },
                Ok(bytes) => match persist_bytes(inner, addr, &bytes) {
                    Ok(()) => EpisodeEnd::Persisted { packed },
                    Err(e) if e.is_disk_full() => {
                        // Disk full degrades to load shedding, not a
                        // failed job: park the bytes, requeue, and stop
                        // admitting until a write succeeds again.
                        warn!(
                            "job {}: artifact persist hit full disk; parking result",
                            format_address(addr)
                        );
                        EpisodeEnd::Parked { packed, bytes }
                    }
                    Err(e) => EpisodeEnd::Failed2 {
                        packed,
                        error: e.to_string(),
                    },
                },
            }
        }
        EpisodeEnd::Expired(state) => {
            // Terminal, but resumable: persist the newest boundary state
            // so resubmitting the same config picks up from here with a
            // fresh budget.
            save_checkpoint(inner, addr, &mut writer, &state);
            EpisodeEnd::Expired(state)
        }
        other => other,
    };

    let mut jobs = inner.jobs.lock().unwrap();
    let Some(job) = jobs.get_mut(&addr) else {
        return;
    };
    job.consumed_ns = consumed_base + spent;
    match end {
        EpisodeEnd::Finished(_) => unreachable!("rewritten above"),
        EpisodeEnd::Persisted { packed } => {
            job.packed = packed;
            job.phase = JobPhase::Done;
            SERVER_JOBS_COMPLETED_TOTAL.inc();
            info!("job {}: done ({packed} particles)", format_address(addr));
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Parked { packed, bytes } => {
            job.packed = packed;
            job.pending_artifact = Some(bytes);
            job.phase = JobPhase::Queued;
            drop(jobs);
            inner.enqueue(addr);
        }
        EpisodeEnd::Failed2 { packed, error } => {
            job.packed = packed;
            job.phase = JobPhase::Failed;
            job.error = Some(error);
            SERVER_JOBS_FAILED_TOTAL.inc();
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Preempted(state) => {
            if job.cancel {
                // Cancel raced the eviction: the client's cancel wins.
                // The job must land Cancelled (not sneak back into the
                // queue) with no checkpoint debris left behind.
                job.phase = JobPhase::Cancelled;
                job.held = None;
                SERVER_JOBS_CANCELLED_TOTAL.inc();
                drop(jobs);
                clear_checkpoints(inner, addr);
            } else {
                job.held = Some(state);
                job.phase = JobPhase::Queued;
                job.preemptions += 1;
                SERVER_PREEMPTIONS_TOTAL.inc();
                drop(jobs);
                inner.enqueue(addr);
            }
        }
        EpisodeEnd::Cancelled => {
            job.phase = JobPhase::Cancelled;
            job.held = None;
            SERVER_JOBS_CANCELLED_TOTAL.inc();
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Crashed => {
            // Simulated worker death: leave the job marked running with
            // its disk checkpoints in place, exactly like a SIGKILL.
            warn!("job {}: worker crash injected", format_address(addr));
        }
        EpisodeEnd::Failed(e) => {
            job.phase = JobPhase::Failed;
            job.error = Some(e.to_string());
            SERVER_JOBS_FAILED_TOTAL.inc();
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Shutdown(state) => {
            // Persist the boundary state so a restarted server resumes
            // bitwise from here, then put the job back in line.
            if let Some(state) = state {
                if let Err(e) = writer.save(&checkpoint::encode(&state)) {
                    warn!(
                        "job {}: shutdown checkpoint failed: {e}",
                        format_address(addr)
                    );
                }
                job.held = Some(state);
            }
            job.phase = JobPhase::Queued;
            drop(jobs);
            self_enqueue_no_notify(inner, addr);
        }
        EpisodeEnd::Expired(state) => {
            job.held = Some(state);
            job.phase = JobPhase::Expired;
            job.error = Some(format!(
                "budget exhausted after {} steps (deadline {}s, step ceiling {}); \
                 resubmit to resume",
                job.steps, inner.opts.limits.job_deadline_s, inner.opts.limits.job_step_ceiling
            ));
            SERVER_JOBS_EXPIRED_TOTAL.inc();
            info!(
                "job {}: expired at {} steps; checkpoint persisted for resume",
                format_address(addr),
                job.steps
            );
        }
    }
}

/// Second chance for a result whose artifact write hit `ENOSPC`: evict
/// and retry the persist. Still full → park the bytes again and requeue
/// (after a short pause so a wedged disk doesn't spin the worker).
fn retry_pending_artifact(inner: &Inner, addr: u64, bytes: Vec<u8>) {
    match persist_bytes(inner, addr, &bytes) {
        Ok(()) => {
            let mut jobs = inner.jobs.lock().unwrap();
            if let Some(job) = jobs.get_mut(&addr) {
                job.phase = JobPhase::Done;
            }
            SERVER_JOBS_COMPLETED_TOTAL.inc();
            info!("job {}: parked artifact persisted", format_address(addr));
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        Err(e) => {
            if !e.is_disk_full() {
                warn!(
                    "job {}: parked artifact persist failed: {e}",
                    format_address(addr)
                );
            }
            std::thread::sleep(Duration::from_millis(50));
            let mut jobs = inner.jobs.lock().unwrap();
            if let Some(job) = jobs.get_mut(&addr) {
                if job.cancel {
                    job.phase = JobPhase::Cancelled;
                    SERVER_JOBS_CANCELLED_TOTAL.inc();
                    drop(jobs);
                    clear_checkpoints(inner, addr);
                    return;
                }
                job.pending_artifact = Some(bytes);
                job.phase = JobPhase::Queued;
                drop(jobs);
                inner.enqueue(addr);
            }
        }
    }
}

/// Re-queues without the wakeup (used on shutdown, when workers are
/// exiting anyway and the queue only matters to a future process).
fn self_enqueue_no_notify(inner: &Inner, addr: u64) {
    let si = (addr % inner.shards.len() as u64) as usize;
    inner.shards[si].lock().unwrap().push_back(addr);
}

/// Encodes the result's CSV bytes. The byte stream is identical to
/// `adampack pack --out <file>.csv` for the same config: same writer,
/// same particle order.
fn encode_artifact(result: &PackResult) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    adampack_io::write_particles_csv(
        &mut bytes,
        result
            .particles
            .iter()
            .map(|p| (p.center, p.radius, p.batch, p.set)),
    )
    .map_err(|e| e.to_string())?;
    Ok(bytes)
}

/// Writes artifact bytes atomically into the content-addressed cache,
/// evicting LRU entries to make room (and once more on `ENOSPC` before
/// giving up). Success clears the disk-full latch; a full-disk failure
/// sets it, flipping `/readyz` red and shedding new submissions.
fn persist_bytes(inner: &Inner, addr: u64, bytes: &[u8]) -> Result<(), adampack_io::Error> {
    use std::sync::atomic::Ordering;
    let path = inner.artifact_path(addr);
    inner.make_room(bytes.len() as u64);
    let mut result = adampack_io::write_atomic(&path, bytes);
    if result.as_ref().is_err_and(|e| e.is_disk_full()) {
        SERVER_DISK_FULL_TOTAL.inc();
        inner.make_room(bytes.len() as u64);
        result = adampack_io::write_atomic(&path, bytes);
    }
    match result {
        Ok(()) => {
            inner
                .cache
                .lock()
                .unwrap()
                .insert(path, addr, FileKind::Artifact, bytes.len() as u64);
            inner.disk_full.store(false, Ordering::Relaxed);
            Ok(())
        }
        Err(e) => {
            if e.is_disk_full() {
                SERVER_DISK_FULL_TOTAL.inc();
                inner.disk_full.store(true, Ordering::Relaxed);
            }
            Err(e)
        }
    }
}
