//! The packer worker pool: each worker repeatedly takes the fair-share
//! pick from the queue and advances it through the stepping API until the
//! job finishes, is cancelled, or yields its slot to a poorer job.
//!
//! Preemption is cooperative and checkpoint-shaped: a worker only ever
//! stops at a batch boundary, where [`CollectivePacker::capture_state`]
//! is exact, so an evicted job restored later continues bitwise
//! identically to a run that was never preempted (the PR-5/6 resume
//! guarantee). Durability comes from the same mechanism: every
//! `checkpoint_every` optimizer steps (quantized to the next batch
//! boundary) the captured state is written to the rotating disk
//! checkpoint, which a restarted server resumes from after a crash.
//! Boundary captures are pure reads — unlike the packer's own mid-batch
//! step cadence (which resets the Verlet reference and can follow a
//! different, equally valid trajectory), they leave the run untouched, so
//! a served artifact is byte-identical to `adampack pack` without any
//! checkpoint flags.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adampack_core::checkpoint::{self, RunState};
use adampack_core::prelude::*;
use adampack_io::RotatingCheckpointWriter;
use adampack_telemetry::metrics::{
    SERVER_JOBS_CANCELLED_TOTAL, SERVER_JOBS_COMPLETED_TOTAL, SERVER_JOBS_FAILED_TOTAL,
    SERVER_JOBS_RESUMED_TOTAL, SERVER_PREEMPTIONS_TOTAL,
};
use adampack_telemetry::{info, warn};

use crate::address::{format_address, run_salt};
use crate::state::{Inner, JobPhase};

/// Failpoint site: when armed, the worker abandons its current job right
/// after a batch boundary without completing, cancelling or requeueing it
/// — the in-process stand-in for a SIGKILLed worker in the chaos tests
/// (the job's disk checkpoints survive; a fresh server resumes them).
pub const FAILPOINT_WORKER_CRASH: &str = "server.worker.crash";

/// How a worker episode ended (worker-internal).
enum EpisodeEnd {
    Finished(PackResult),
    Preempted(RunState),
    Cancelled,
    Crashed,
    Failed(PackError),
    Shutdown(Option<RunState>),
}

/// The worker loop: runs until shutdown.
pub(crate) fn run(inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        match inner.pick() {
            Some(addr) => episode(&inner, addr),
            None => inner.park(Duration::from_millis(100)),
        }
    }
}

/// Loads the newest decodable checkpoint for `addr`, if any.
fn load_disk_state(inner: &Inner, addr: u64) -> Option<RunState> {
    let path = inner.checkpoint_path(addr);
    for cand in adampack_io::checkpoint_candidates(&path, inner.opts.keep_last) {
        match std::fs::read(&cand) {
            Err(e) => warn!(
                "job {}: checkpoint {} unreadable: {e}",
                format_address(addr),
                cand.display()
            ),
            Ok(bytes) => match checkpoint::decode(&bytes) {
                Ok(state) => return Some(state),
                Err(e) => warn!(
                    "job {}: checkpoint {} rejected: {e}",
                    format_address(addr),
                    cand.display()
                ),
            },
        }
    }
    None
}

/// Removes the job's checkpoint rotation (after completion/failure).
fn clear_checkpoints(inner: &Inner, addr: u64) {
    let path = inner.checkpoint_path(addr);
    for cand in adampack_io::checkpoint_candidates(&path, inner.opts.keep_last) {
        let _ = std::fs::remove_file(cand);
    }
}

/// One scheduling episode: own the job from pick to finish/preempt.
fn episode(inner: &Inner, addr: u64) {
    // Snapshot the inputs; the registry lock is never held while packing.
    let (container, params, psd, held) = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(job) = jobs.get_mut(&addr) else {
            return;
        };
        if job.cancel {
            job.phase = JobPhase::Cancelled;
            SERVER_JOBS_CANCELLED_TOTAL.inc();
            return;
        }
        (
            job.container.clone(),
            job.params.clone(),
            job.psd.clone(),
            job.held.take(),
        )
    };

    let mut packer = CollectivePacker::new(container, params);
    packer.set_fingerprint_context(run_salt());

    // Restore order: in-memory preemption state, then disk checkpoints
    // (crash recovery), then a fresh run. A stale or mismatched disk
    // checkpoint degrades to a fresh start instead of wedging the job.
    let mut prog = match held {
        Some(state) => match packer.begin_resumed(state, true) {
            Ok(p) => p,
            Err(e) => {
                warn!(
                    "job {}: held state rejected ({e}); restarting",
                    format_address(addr)
                );
                packer.begin_run(Vec::new(), true)
            }
        },
        None => match load_disk_state(inner, addr) {
            Some(state) => match packer.begin_resumed(state, true) {
                Ok(p) => {
                    SERVER_JOBS_RESUMED_TOTAL.inc();
                    info!("job {}: resumed from disk checkpoint", format_address(addr));
                    p
                }
                Err(e) => {
                    warn!(
                        "job {}: disk checkpoint rejected ({e}); restarting",
                        format_address(addr)
                    );
                    packer.begin_run(Vec::new(), true)
                }
            },
            None => packer.begin_run(Vec::new(), true),
        },
    };

    // Durability checkpoints are taken from exact batch-boundary captures,
    // never from the packer's mid-batch step cadence: boundary captures
    // are pure reads, so the trajectory (and the final artifact bytes)
    // matches a plain, cadence-free `adampack pack` of the same config.
    let mut cadence: Option<CheckpointCadence> = None;
    let mut writer =
        RotatingCheckpointWriter::new(inner.checkpoint_path(addr), inner.opts.keep_last);
    let mut last_saved_steps = prog.steps_taken();

    let slice = Duration::from_millis(inner.opts.slice_ms.max(1));
    let start = Instant::now();
    let mut consumed_base = 0u64;
    {
        let jobs = inner.jobs.lock().unwrap();
        if let Some(job) = jobs.get(&addr) {
            consumed_base = job.consumed_ns;
        }
    }

    let end = loop {
        if prog.finished() {
            break EpisodeEnd::Finished(packer.finish_run(prog));
        }
        if let Err(e) = packer.advance_batch(&psd, &mut prog, &mut cadence) {
            break EpisodeEnd::Failed(e);
        }
        let every = inner.opts.checkpoint_every as u64;
        if !prog.finished() && every > 0 && prog.steps_taken() - last_saved_steps >= every {
            match writer.save(&checkpoint::encode(&packer.capture_state(&prog))) {
                Ok(()) => last_saved_steps = prog.steps_taken(),
                Err(e) => warn!(
                    "job {}: checkpoint write failed (run continues): {e}",
                    format_address(addr)
                ),
            }
        }
        // Publish progress and poll the cancel flag at the boundary.
        let cancelled = {
            let mut jobs = inner.jobs.lock().unwrap();
            match jobs.get_mut(&addr) {
                Some(job) => {
                    job.packed = prog.packed();
                    job.steps = prog.steps_taken();
                    job.consumed_ns = consumed_base + start.elapsed().as_nanos() as u64;
                    job.cancel
                }
                None => true,
            }
        };
        if cancelled {
            break EpisodeEnd::Cancelled;
        }
        if failpoints::should_fail(FAILPOINT_WORKER_CRASH) {
            break EpisodeEnd::Crashed;
        }
        if prog.finished() {
            continue;
        }
        if inner.shutdown.load(std::sync::atomic::Ordering::Relaxed) {
            break EpisodeEnd::Shutdown(Some(packer.capture_state(&prog)));
        }
        let my_consumed = consumed_base + start.elapsed().as_nanos() as u64;
        if start.elapsed() >= slice && inner.poorer_waiting(my_consumed) {
            break EpisodeEnd::Preempted(packer.capture_state(&prog));
        }
    };

    let spent = start.elapsed().as_nanos() as u64;
    let mut jobs = inner.jobs.lock().unwrap();
    let Some(job) = jobs.get_mut(&addr) else {
        return;
    };
    job.consumed_ns = consumed_base + spent;
    match end {
        EpisodeEnd::Finished(result) => {
            job.packed = result.particles.len();
            match persist_artifact(inner, addr, &result) {
                Ok(()) => {
                    job.phase = JobPhase::Done;
                    SERVER_JOBS_COMPLETED_TOTAL.inc();
                    info!(
                        "job {}: done ({} particles)",
                        format_address(addr),
                        result.particles.len()
                    );
                    drop(jobs);
                    clear_checkpoints(inner, addr);
                }
                Err(e) => {
                    job.phase = JobPhase::Failed;
                    job.error = Some(e);
                    SERVER_JOBS_FAILED_TOTAL.inc();
                }
            }
        }
        EpisodeEnd::Preempted(state) => {
            job.held = Some(state);
            job.phase = JobPhase::Queued;
            job.preemptions += 1;
            SERVER_PREEMPTIONS_TOTAL.inc();
            drop(jobs);
            inner.enqueue(addr);
        }
        EpisodeEnd::Cancelled => {
            job.phase = JobPhase::Cancelled;
            job.held = None;
            SERVER_JOBS_CANCELLED_TOTAL.inc();
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Crashed => {
            // Simulated worker death: leave the job marked running with
            // its disk checkpoints in place, exactly like a SIGKILL.
            warn!("job {}: worker crash injected", format_address(addr));
        }
        EpisodeEnd::Failed(e) => {
            job.phase = JobPhase::Failed;
            job.error = Some(e.to_string());
            SERVER_JOBS_FAILED_TOTAL.inc();
            drop(jobs);
            clear_checkpoints(inner, addr);
        }
        EpisodeEnd::Shutdown(state) => {
            // Persist the boundary state so a restarted server resumes
            // bitwise from here, then put the job back in line.
            if let Some(state) = state {
                if let Err(e) = writer.save(&checkpoint::encode(&state)) {
                    warn!(
                        "job {}: shutdown checkpoint failed: {e}",
                        format_address(addr)
                    );
                }
                job.held = Some(state);
            }
            job.phase = JobPhase::Queued;
            drop(jobs);
            self_enqueue_no_notify(inner, addr);
        }
    }
}

/// Re-queues without the wakeup (used on shutdown, when workers are
/// exiting anyway and the queue only matters to a future process).
fn self_enqueue_no_notify(inner: &Inner, addr: u64) {
    let si = (addr % inner.shards.len() as u64) as usize;
    inner.shards[si].lock().unwrap().push_back(addr);
}

/// Writes the result's CSV bytes atomically into the artifact cache.
/// The byte stream is identical to `adampack pack --out <file>.csv` for
/// the same config: same writer, same particle order.
fn persist_artifact(inner: &Inner, addr: u64, result: &PackResult) -> Result<(), String> {
    let mut bytes = Vec::new();
    adampack_io::write_particles_csv(
        &mut bytes,
        result
            .particles
            .iter()
            .map(|p| (p.center, p.radius, p.batch, p.set)),
    )
    .map_err(|e| e.to_string())?;
    adampack_io::write_atomic(inner.artifact_path(addr), &bytes).map_err(|e| e.to_string())
}
