//! Canonical content addresses for packing jobs.
//!
//! A job's address is the checkpoint-fingerprint of its *resolved, then
//! canonicalized* parameters: the submitted YAML is parsed into
//! [`PackingParams`] (so key order, comments, quoting style and spelled-out
//! defaults all collapse into one struct value), the target count is
//! resolved from the container the same way the runner resolves it, and
//! perf-only knobs that are proven not to change the packed bytes are
//! normalized away:
//!
//! * `neighbor.order` — all sweep orders produce bitwise identical
//!   packings (DESIGN.md §13), so `auto`/`morton`/`strided` spellings of
//!   one job coalesce;
//! * `params.threads` never reaches [`PackingParams`] at all, so thread
//!   counts coalesce for free.
//!
//! Everything that *can* change the artifact — seed, PSD, learning-rate
//! schedule, kernel (`simd_mixed` is intentionally not bitwise-equal to
//! `simd`), acceptance thresholds, container geometry — stays in the hash.
//! The container's AABB and volume are folded in by the fingerprint
//! itself, so two configs pointing at different STL files collide only if
//! the hulls are geometrically indistinguishable to the packer.

use adampack_core::prelude::*;

/// Domain-separation salt for content addresses (never reused for run
/// checkpoints, so an address can't be mistaken for a resume fingerprint).
const ADDR_SALT_DOMAIN: &str = "adampack-server/addr/v1";

/// Domain-separation salt mixed into the checkpoint fingerprints of runs
/// executed by the server: a server checkpoint resumes only under the
/// server context (and vice versa), mirroring the CLI's context salt.
const RUN_SALT_DOMAIN: &str = "adampack-server/run/v1";

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The fingerprint salt for server-executed runs.
pub fn run_salt() -> u64 {
    fnv1a(RUN_SALT_DOMAIN)
}

/// The canonical content address of a job: parameters with perf-only
/// knobs normalized, hashed together with the container geometry under
/// the address domain salt.
pub fn content_address(container: &Container, params: &PackingParams) -> u64 {
    let mut norm = params.clone();
    norm.neighbor.order = SweepOrder::default();
    let mut probe = CollectivePacker::new(container.clone(), norm);
    probe.set_fingerprint_context(fnv1a(ADDR_SALT_DOMAIN));
    probe.fingerprint()
}

/// Renders an address as its canonical 16-digit lowercase hex form (the
/// job id used in URLs and artifact file names).
pub fn format_address(addr: u64) -> String {
    format!("{addr:016x}")
}

/// Parses the canonical hex form back into an address.
pub fn parse_address(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_container() -> Container {
        let mesh = adampack_geometry::shapes::box_mesh(
            adampack_geometry::Vec3::ZERO,
            adampack_geometry::Vec3::splat(1.0),
        );
        Container::from_mesh(&mesh).unwrap()
    }

    #[test]
    fn address_roundtrips_through_hex() {
        let c = box_container();
        let p = PackingParams::default();
        let a = content_address(&c, &p);
        assert_eq!(parse_address(&format_address(a)), Some(a));
        assert_eq!(parse_address("nope"), None);
        assert_eq!(parse_address("00112233445566"), None, "too short");
    }

    #[test]
    fn sweep_order_is_normalized_but_seed_and_kernel_are_not() {
        let c = box_container();
        let base = PackingParams::default();
        let mut morton = base.clone();
        morton.neighbor.order = SweepOrder::Morton;
        let mut strided = base.clone();
        strided.neighbor.order = SweepOrder::Strided;
        let a = content_address(&c, &base);
        assert_eq!(a, content_address(&c, &morton), "order must coalesce");
        assert_eq!(a, content_address(&c, &strided), "order must coalesce");

        let mut seeded = base.clone();
        seeded.seed = base.seed.wrapping_add(1);
        assert_ne!(a, content_address(&c, &seeded), "seed changes the bytes");
        let mut mixed = base.clone();
        mixed.kernel = Kernel::SimdMixed;
        assert_ne!(a, content_address(&c, &mixed), "kernel changes the bytes");
    }

    #[test]
    fn address_domain_is_separated_from_run_fingerprints() {
        let c = box_container();
        let p = PackingParams::default();
        let mut probe = CollectivePacker::new(c.clone(), p.clone());
        probe.set_fingerprint_context(run_salt());
        assert_ne!(content_address(&c, &p), probe.fingerprint());
    }
}
