//! Property tests for the geometry substrate: hull invariants, clipping
//! volume conservation, mesh transforms.

use adampack_geometry::{clip_convex, shapes, Aabb, ClipResult, ConvexHull, Plane, Vec3};
use proptest::prelude::*;

fn vec3_strategy(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hull_contains_all_input_points(
        points in prop::collection::vec(vec3_strategy(3.0), 8..60),
    ) {
        let bb = Aabb::from_points(&points);
        prop_assume!(bb.extent().min_component() > 0.05); // avoid degenerate clouds
        let Ok(hull) = ConvexHull::from_points(&points) else {
            // Degenerate input is allowed to error; nothing further to check.
            return Ok(());
        };
        let tol = 1e-7 * bb.diagonal().max(1.0);
        for &p in &points {
            prop_assert!(
                hull.contains(p, tol),
                "input point {p} outside by {}",
                hull.halfspaces().max_signed_distance(p)
            );
        }
    }

    #[test]
    fn hull_volume_bounded_by_bbox(
        points in prop::collection::vec(vec3_strategy(2.0), 8..40),
    ) {
        let Ok(hull) = ConvexHull::from_points(&points) else { return Ok(()); };
        let bb = Aabb::from_points(&points);
        prop_assert!(hull.volume() >= -1e-9);
        prop_assert!(hull.volume() <= bb.volume() * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn hull_mesh_is_closed_and_oriented(
        points in prop::collection::vec(vec3_strategy(2.0), 10..50),
    ) {
        let Ok(hull) = ConvexHull::from_points(&points) else { return Ok(()); };
        let mesh = hull.to_mesh();
        prop_assert!(mesh.is_watertight());
        prop_assert!(mesh.signed_volume() > 0.0, "outward orientation");
        prop_assert_eq!(mesh.euler_characteristic(), 2);
        // Mesh volume equals hull volume (same facets).
        prop_assert!((mesh.signed_volume() - hull.volume()).abs() < 1e-9);
    }

    #[test]
    fn hull_planes_face_outward_from_centroid(
        points in prop::collection::vec(vec3_strategy(2.0), 10..40),
    ) {
        let Ok(hull) = ConvexHull::from_points(&points) else { return Ok(()); };
        let centroid = hull
            .vertices
            .iter()
            .fold(Vec3::ZERO, |a, &b| a + b)
            / hull.vertices.len() as f64;
        for plane in hull.halfspaces().planes() {
            prop_assert!(
                plane.signed_distance(centroid) < 1e-9,
                "centroid should be inside every half-space"
            );
        }
    }

    #[test]
    fn clip_conserves_volume(
        nx in -1.0f64..1.0,
        ny in -1.0f64..1.0,
        nz in -1.0f64..1.0,
        offset in -0.8f64..0.8,
    ) {
        let n = Vec3::new(nx, ny, nz);
        prop_assume!(n.norm() > 0.1);
        let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        let n = n.normalized().unwrap();
        let plane = Plane::from_point_normal(n * offset, n).unwrap();
        let total = mesh.signed_volume();

        let inside = clip_convex(&mesh, &plane, 1e-9);
        let outside = clip_convex(&mesh, &plane.flipped(), 1e-9);
        let vol = |r: &ClipResult| match r {
            ClipResult::Unchanged => total,
            ClipResult::Empty => 0.0,
            ClipResult::Clipped(m) => m.signed_volume(),
        };
        let (vi, vo) = (vol(&inside), vol(&outside));
        prop_assert!(
            (vi + vo - total).abs() < 1e-6 * total,
            "volume not conserved: {vi} + {vo} != {total}"
        );
        if let ClipResult::Clipped(m) = &inside {
            prop_assert!(m.is_watertight());
        }
    }

    #[test]
    fn shrink_then_contains(
        half in 0.2f64..3.0,
        factor in 0.0f64..0.95,
        px in -1.0f64..1.0,
        py in -1.0f64..1.0,
        pz in -1.0f64..1.0,
    ) {
        let b = Aabb::cube(Vec3::ZERO, 2.0 * half);
        let s = b.shrink(factor);
        // The shrunken box is always inside the original.
        for c in s.corners() {
            prop_assert!(b.contains(c));
        }
        // Volume scales with (1 - factor)³.
        let expect = b.volume() * (1.0 - factor).powi(3);
        prop_assert!((s.volume() - expect).abs() < 1e-9 * b.volume().max(1.0));
        // Any point in the shrunken box is in the original.
        let p = Vec3::new(px, py, pz) * half * (1.0 - factor);
        prop_assert!(s.contains(p) && b.contains(p));
    }

    #[test]
    fn plane_signed_distance_is_linear_along_normal(
        n in vec3_strategy(1.0),
        d in -2.0f64..2.0,
        p in vec3_strategy(3.0),
        t in -2.0f64..2.0,
    ) {
        prop_assume!(n.norm() > 0.1);
        let plane = Plane::from_coefficients(n.x, n.y, n.z, d).unwrap();
        let base = plane.signed_distance(p);
        let moved = plane.signed_distance(p + plane.normal * t);
        prop_assert!((moved - (base + t)).abs() < 1e-9);
    }

    #[test]
    fn lathe_volume_matches_frustum_sum(
        r0 in 0.2f64..2.0,
        r1 in 0.2f64..2.0,
        r2 in 0.2f64..2.0,
        h1 in 0.2f64..2.0,
        h2 in 0.2f64..2.0,
    ) {
        // A two-segment lathe equals the sum of the two frustum volumes
        // (discretized identically).
        let segs = 48;
        let m = shapes::lathe(&[(0.0, r0), (h1, r1), (h1 + h2, r2)], segs);
        prop_assert!(m.is_watertight());
        let f1 = shapes::frustum(r0, r1, h1, segs).signed_volume();
        let f2 = shapes::frustum(r1, r2, h2, segs).signed_volume();
        let v = m.signed_volume();
        prop_assert!(
            (v - (f1 + f2)).abs() < 1e-9 * (f1 + f2),
            "lathe {v} vs frustums {}",
            f1 + f2
        );
    }
}
