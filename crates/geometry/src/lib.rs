//! # adampack-geometry
//!
//! Geometry substrate for the `adampack` sphere-packing workspace.
//!
//! The paper ("Rapid Random Packing of Poly-disperse Spheres using Adam
//! Stochastic Optimization", IPPS 2025) models containers as triangular
//! meshes (built with Trimesh in the reference implementation) and
//! approximates them by their convex hull computed with QHULL. This crate
//! provides the equivalent, dependency-free substrate:
//!
//! * [`Vec3`] / [`Mat3`] — minimal double-precision linear algebra,
//! * [`Aabb`] — axis-aligned bounding boxes,
//! * [`Plane`] — oriented planes in `ax + by + cz + d = 0` form, matching the
//!   rows of the paper's `H` matrix,
//! * [`TriMesh`] — indexed triangle meshes with watertightness checks,
//!   signed volume and surface area,
//! * [`ConvexHull`] — 3-D QuickHull over point sets, exposing the facet
//!   planes as a [`HalfSpaceSet`] (the `Conv(V)` half-space intersection the
//!   objective's exterior-distance term evaluates),
//! * [`shapes`] — procedural generators for the container geometries used in
//!   the paper's experiments (boxes, cylinders, cones, spheres and the
//!   blast-furnace vessel of §VI-B).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod aabb;
pub mod axis;
pub mod clip;
pub mod hull;
pub mod mesh;
pub mod plane;
pub mod sanity;
pub mod shapes;
pub mod triangle;
pub mod vec3;

pub use aabb::Aabb;
pub use axis::Axis;
pub use clip::{clip_convex, clip_convex_all, ClipResult};
pub use hull::{ConvexHull, HalfSpaceSet, HullError};
pub use mesh::{MeshError, TriMesh};
pub use plane::Plane;
pub use sanity::{container_sanity, SanityError};
pub use triangle::Triangle;
pub use vec3::{Mat3, Vec3};

/// Relative tolerance used throughout geometric predicates.
///
/// Absolute epsilons are derived from this by scaling with the extent of the
/// data (e.g. the bounding-box diagonal) so that predicates behave identically
/// for millimetre-scale and metre-scale containers.
pub const REL_EPS: f64 = 1e-10;
