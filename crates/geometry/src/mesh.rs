//! Indexed triangle meshes (the paper's container representation).
//!
//! The reference implementation uses Trimesh; here [`TriMesh`] provides the
//! subset the packing pipeline needs: construction, validation, bounding
//! boxes, surface area, enclosed volume, and rigid/affine transforms.

use std::collections::HashMap;

use crate::aabb::Aabb;
use crate::triangle::Triangle;
use crate::vec3::{Mat3, Vec3};

/// Errors produced by mesh validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A face references a vertex index `>= vertices.len()`.
    IndexOutOfBounds {
        /// Offending face index.
        face: usize,
        /// Offending vertex index.
        index: usize,
    },
    /// A face repeats a vertex (degenerate by construction).
    DegenerateFace {
        /// Offending face index.
        face: usize,
    },
    /// A vertex has a non-finite coordinate.
    NonFiniteVertex {
        /// Offending vertex index.
        vertex: usize,
    },
    /// The mesh has no faces.
    Empty,
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::IndexOutOfBounds { face, index } => {
                write!(f, "face {face} references out-of-bounds vertex {index}")
            }
            MeshError::DegenerateFace { face } => write!(f, "face {face} repeats a vertex"),
            MeshError::NonFiniteVertex { vertex } => {
                write!(f, "vertex {vertex} has a non-finite coordinate")
            }
            MeshError::Empty => write!(f, "mesh has no faces"),
        }
    }
}

impl std::error::Error for MeshError {}

/// An indexed triangle mesh.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as triplets of vertex indices; counter-clockwise winding
    /// seen from outside for closed meshes.
    pub faces: Vec<[usize; 3]>,
}

impl TriMesh {
    /// Creates a mesh and validates indices/degeneracy/finiteness.
    pub fn new(vertices: Vec<Vec3>, faces: Vec<[usize; 3]>) -> Result<TriMesh, MeshError> {
        let mesh = TriMesh { vertices, faces };
        mesh.validate()?;
        Ok(mesh)
    }

    /// Structural validation (not watertightness — see
    /// [`TriMesh::is_watertight`]).
    pub fn validate(&self) -> Result<(), MeshError> {
        if self.faces.is_empty() {
            return Err(MeshError::Empty);
        }
        for (vi, v) in self.vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(MeshError::NonFiniteVertex { vertex: vi });
            }
        }
        for (fi, f) in self.faces.iter().enumerate() {
            for &i in f {
                if i >= self.vertices.len() {
                    return Err(MeshError::IndexOutOfBounds { face: fi, index: i });
                }
            }
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(MeshError::DegenerateFace { face: fi });
            }
        }
        Ok(())
    }

    /// Number of triangles.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The triangle for face `i`.
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.faces[i];
        Triangle::new(self.vertices[a], self.vertices[b], self.vertices[c])
    }

    /// Iterator over all triangles.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle> + '_ {
        self.faces.iter().map(move |&[a, b, c]| {
            Triangle::new(self.vertices[a], self.vertices[b], self.vertices[c])
        })
    }

    /// Axis-aligned bounding box of the vertices.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(&self.vertices)
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Enclosed (signed) volume via the divergence theorem.
    ///
    /// Positive for closed meshes wound counter-clockwise seen from outside;
    /// meaningless for open meshes.
    pub fn signed_volume(&self) -> f64 {
        self.triangles().map(|t| t.signed_volume()).sum()
    }

    /// True when every undirected edge is shared by exactly two faces with
    /// opposite directions — i.e. the mesh is a closed, consistently
    /// oriented 2-manifold.
    pub fn is_watertight(&self) -> bool {
        // Count directed edges; watertight+oriented ⟺ every directed edge
        // appears exactly once and its reverse also appears exactly once.
        let mut directed: HashMap<(usize, usize), usize> = HashMap::new();
        for f in &self.faces {
            for k in 0..3 {
                let e = (f[k], f[(k + 1) % 3]);
                *directed.entry(e).or_insert(0) += 1;
            }
        }
        directed
            .iter()
            .all(|(&(a, b), &count)| count == 1 && directed.get(&(b, a)).copied() == Some(1))
    }

    /// Euler characteristic `V - E + F` (2 for sphere-topology meshes).
    pub fn euler_characteristic(&self) -> i64 {
        let mut edges = std::collections::HashSet::new();
        for f in &self.faces {
            for k in 0..3 {
                let (a, b) = (f[k], f[(k + 1) % 3]);
                edges.insert((a.min(b), a.max(b)));
            }
        }
        self.vertex_count() as i64 - edges.len() as i64 + self.face_count() as i64
    }

    /// Translates every vertex by `t`.
    pub fn translate(&mut self, t: Vec3) {
        for v in &mut self.vertices {
            *v += t;
        }
    }

    /// Scales every vertex about the origin (uniform or per-axis).
    pub fn scale(&mut self, s: Vec3) {
        for v in &mut self.vertices {
            *v = v.hadamard(s);
        }
    }

    /// Applies a linear map (e.g. rotation) about the origin.
    pub fn transform(&mut self, m: &Mat3) {
        for v in &mut self.vertices {
            *v = m.mul_vec(*v);
        }
    }

    /// Returns a translated copy.
    pub fn translated(&self, t: Vec3) -> TriMesh {
        let mut m = self.clone();
        m.translate(t);
        m
    }

    /// Merges vertices closer than `tol` and reindexes faces, dropping faces
    /// that become degenerate. Useful after generating meshes whose seams
    /// duplicate vertices.
    pub fn deduplicate_vertices(&mut self, tol: f64) {
        let quantum = tol.max(f64::MIN_POSITIVE);
        let mut map: HashMap<(i64, i64, i64), usize> = HashMap::new();
        let mut remap = vec![0usize; self.vertices.len()];
        let mut new_vertices: Vec<Vec3> = Vec::new();
        for (i, v) in self.vertices.iter().enumerate() {
            let key = (
                (v.x / quantum).round() as i64,
                (v.y / quantum).round() as i64,
                (v.z / quantum).round() as i64,
            );
            let idx = *map.entry(key).or_insert_with(|| {
                new_vertices.push(*v);
                new_vertices.len() - 1
            });
            remap[i] = idx;
        }
        self.vertices = new_vertices;
        self.faces = self
            .faces
            .iter()
            .map(|f| [remap[f[0]], remap[f[1]], remap[f[2]]])
            .filter(|f| f[0] != f[1] && f[1] != f[2] && f[0] != f[2])
            .collect();
    }

    /// Centroid of the enclosed solid (volume-weighted); only meaningful for
    /// closed meshes with nonzero volume.
    pub fn volume_centroid(&self) -> Option<Vec3> {
        let mut vol = 0.0;
        let mut moment = Vec3::ZERO;
        for t in self.triangles() {
            let v = t.signed_volume();
            vol += v;
            // Centroid of tetra (0, a, b, c) is (a + b + c)/4.
            moment += (t.a + t.b + t.c) / 4.0 * v;
        }
        if vol.abs() < 1e-300 {
            None
        } else {
            Some(moment / vol)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn tetra() -> TriMesh {
        // Unit right tetra with outward winding.
        TriMesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
            vec![[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_errors() {
        assert_eq!(
            TriMesh::new(vec![Vec3::ZERO], vec![]).unwrap_err(),
            MeshError::Empty
        );
        let e = TriMesh::new(vec![Vec3::ZERO, Vec3::X], vec![[0, 1, 2]]).unwrap_err();
        assert!(matches!(
            e,
            MeshError::IndexOutOfBounds { face: 0, index: 2 }
        ));
        let e = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 1]]).unwrap_err();
        assert!(matches!(e, MeshError::DegenerateFace { face: 0 }));
        let e = TriMesh::new(
            vec![Vec3::new(f64::NAN, 0.0, 0.0), Vec3::X, Vec3::Y],
            vec![[0, 1, 2]],
        )
        .unwrap_err();
        assert!(matches!(e, MeshError::NonFiniteVertex { vertex: 0 }));
    }

    #[test]
    fn tetra_volume_area_watertight() {
        let m = tetra();
        assert!((m.signed_volume() - 1.0 / 6.0).abs() < 1e-12);
        // Surface: 3 right triangles of area 1/2 plus hypotenuse face √3/2.
        let expect = 1.5 + 3.0f64.sqrt() / 2.0;
        assert!((m.surface_area() - expect).abs() < 1e-12);
        assert!(m.is_watertight());
        assert_eq!(m.euler_characteristic(), 2);
    }

    #[test]
    fn open_mesh_not_watertight() {
        let m = TriMesh::new(
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
            vec![[0, 2, 1], [0, 1, 3], [0, 3, 2]], // hypotenuse face removed
        )
        .unwrap();
        assert!(!m.is_watertight());
    }

    #[test]
    fn inconsistent_winding_not_watertight() {
        let mut m = tetra();
        m.faces[3] = [2, 1, 3]; // flipped face
        assert!(!m.is_watertight());
    }

    #[test]
    fn transforms() {
        let mut m = tetra();
        let v0 = m.signed_volume();
        m.translate(Vec3::new(5.0, -2.0, 1.0));
        assert!(
            (m.signed_volume() - v0).abs() < 1e-12,
            "volume is translation invariant"
        );
        m.scale(Vec3::new(2.0, 2.0, 2.0));
        assert!((m.signed_volume() - v0 * 8.0).abs() < 1e-9);

        let mut m2 = tetra();
        let r = Mat3::rotation_axis_angle(Vec3::Z, 1.0);
        m2.transform(&r);
        assert!(
            (m2.signed_volume() - v0).abs() < 1e-12,
            "rotation preserves volume"
        );
    }

    #[test]
    fn aabb_covers_vertices() {
        let m = tetra().translated(Vec3::new(1.0, 1.0, 1.0));
        let bb = m.aabb();
        assert_eq!(bb.min, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(bb.max, Vec3::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn deduplicate_vertices_merges_seams() {
        // Two faces sharing an edge but with duplicated vertices at the seam.
        let m0 = TriMesh {
            vertices: vec![
                Vec3::ZERO,
                Vec3::X,
                Vec3::Y,
                Vec3::X, // dup of 1
                Vec3::Y, // dup of 2
                Vec3::new(1.0, 1.0, 0.0),
            ],
            faces: vec![[0, 1, 2], [3, 5, 4]],
        };
        let mut m = m0;
        m.deduplicate_vertices(1e-9);
        assert_eq!(m.vertex_count(), 4);
        assert_eq!(m.face_count(), 2);
        m.validate().unwrap();
    }

    #[test]
    fn volume_centroid_of_cube() {
        let m = shapes::box_mesh(Vec3::new(1.0, 2.0, 3.0), Vec3::new(2.0, 2.0, 2.0));
        let c = m.volume_centroid().unwrap();
        assert!((c - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-12);
    }

    #[test]
    fn box_mesh_properties() {
        let m = shapes::box_mesh(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert!(m.is_watertight());
        assert!((m.signed_volume() - 24.0).abs() < 1e-12);
        assert!((m.surface_area() - 2.0 * (6.0 + 8.0 + 12.0)).abs() < 1e-12);
        assert_eq!(m.euler_characteristic(), 2);
    }
}
