//! Container-mesh sanity checks with facet-level diagnostics.
//!
//! [`TriMesh::validate`] catches structural corruption (bad indices,
//! repeated vertices, NaN coordinates). [`container_sanity`] goes further
//! and answers the question a user with a broken STL actually has: *which
//! facet* is wrong, and how. It is meant to run once at load time — before
//! the hull pipeline silently "fixes" a bad mesh by convexifying it — so
//! the CLI can refuse input that would otherwise produce a packing in a
//! container that does not match the file.

use std::collections::HashMap;

use crate::hull::{ConvexHull, HullError};
use crate::mesh::{MeshError, TriMesh};

/// What [`container_sanity`] found wrong, pointing at the offending facet
/// or edge where there is one.
#[derive(Debug, Clone, PartialEq)]
pub enum SanityError {
    /// Structural corruption (bad index, repeated vertex, non-finite
    /// coordinate, no faces) — see the wrapped [`MeshError`].
    Structural(MeshError),
    /// A facet has (near-)zero area: its vertices are distinct but
    /// collinear, or closer than the mesh scale resolves.
    SliverFacet {
        /// Offending face index.
        face: usize,
        /// Its area (in squared mesh units).
        area: f64,
    },
    /// An edge of `face` has no partner facet — the surface is open.
    OpenEdge {
        /// Facet owning the unmatched edge.
        face: usize,
        /// Edge start vertex index.
        from: usize,
        /// Edge end vertex index.
        to: usize,
    },
    /// An edge of `face` is used by more than one facet in the same
    /// direction — duplicated facets or inconsistent winding.
    NonManifoldEdge {
        /// First facet found using the over-shared edge.
        face: usize,
        /// Edge start vertex index.
        from: usize,
        /// Edge end vertex index.
        to: usize,
    },
    /// The enclosed volume is zero or negative: the facets are wound
    /// clockwise seen from outside (inside-out mesh).
    InvertedOrientation {
        /// The signed volume that was computed.
        volume: f64,
    },
    /// The mesh deviates from its convex hull by more than the caller's
    /// tolerance; the packing pipeline would silently convexify it.
    NotConvex {
        /// Volume enclosed by the mesh.
        mesh_volume: f64,
        /// Volume of its convex hull.
        hull_volume: f64,
    },
    /// Hull construction itself failed (needed for the convexity check).
    Hull(HullError),
}

impl std::fmt::Display for SanityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanityError::Structural(e) => write!(f, "{e}"),
            SanityError::SliverFacet { face, area } => {
                write!(f, "facet {face} is a sliver (area {area:.3e})")
            }
            SanityError::OpenEdge { face, from, to } => write!(
                f,
                "mesh is not watertight: edge {from}->{to} of facet {face} has no partner facet"
            ),
            SanityError::NonManifoldEdge { face, from, to } => write!(
                f,
                "edge {from}->{to} of facet {face} is shared by multiple facets in the same \
                 direction (duplicate facet or inconsistent winding)"
            ),
            SanityError::InvertedOrientation { volume } => write!(
                f,
                "mesh encloses non-positive volume {volume:.3e}: facets are wound inside-out"
            ),
            SanityError::NotConvex {
                mesh_volume,
                hull_volume,
            } => write!(
                f,
                "mesh is not convex: it encloses {mesh_volume:.6e} but its convex hull encloses \
                 {hull_volume:.6e}; the packer would silently use the hull"
            ),
            SanityError::Hull(e) => write!(f, "convex hull construction failed: {e}"),
        }
    }
}

impl std::error::Error for SanityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SanityError::Structural(e) => Some(e),
            SanityError::Hull(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MeshError> for SanityError {
    fn from(e: MeshError) -> Self {
        SanityError::Structural(e)
    }
}

impl From<HullError> for SanityError {
    fn from(e: HullError) -> Self {
        SanityError::Hull(e)
    }
}

/// Validates a mesh as a packing container, naming the offending facet on
/// failure.
///
/// Checks, in order: structure ([`TriMesh::validate`]), sliver facets,
/// watertightness with an edge-level diagnosis, orientation (positive
/// enclosed volume), and convexity — the mesh volume must match the hull
/// volume to within the relative `convexity_tol` (the pipeline packs into
/// the convex hull, so a concave container would silently gain volume).
pub fn container_sanity(mesh: &TriMesh, convexity_tol: f64) -> Result<(), SanityError> {
    mesh.validate()?;

    let diag = mesh.aabb().diagonal().max(f64::MIN_POSITIVE);
    let sliver_area = crate::REL_EPS * diag * diag;
    for (fi, t) in mesh.triangles().enumerate() {
        let area = t.area();
        // NaN areas (degenerate vertices) must fail, same as slivers.
        if area <= sliver_area || area.is_nan() {
            return Err(SanityError::SliverFacet { face: fi, area });
        }
    }

    // Directed-edge census: watertight + consistently oriented ⟺ every
    // directed edge appears once and its reverse appears once.
    let mut directed: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (fi, f) in mesh.faces.iter().enumerate() {
        for k in 0..3 {
            let e = (f[k], f[(k + 1) % 3]);
            let entry = directed.entry(e).or_insert((0, fi));
            entry.0 += 1;
        }
    }
    for (fi, f) in mesh.faces.iter().enumerate() {
        for k in 0..3 {
            let (a, b) = (f[k], f[(k + 1) % 3]);
            if directed[&(a, b)].0 > 1 {
                return Err(SanityError::NonManifoldEdge {
                    face: directed[&(a, b)].1,
                    from: a,
                    to: b,
                });
            }
            if !directed.contains_key(&(b, a)) {
                return Err(SanityError::OpenEdge {
                    face: fi,
                    from: a,
                    to: b,
                });
            }
        }
    }

    let volume = mesh.signed_volume();
    // A NaN volume is as inverted as a negative one.
    if volume <= 0.0 || volume.is_nan() {
        return Err(SanityError::InvertedOrientation { volume });
    }

    let hull = ConvexHull::from_mesh(mesh)?;
    let hull_volume = hull.volume();
    if hull_volume - volume > convexity_tol * hull_volume {
        return Err(SanityError::NotConvex {
            mesh_volume: volume,
            hull_volume,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;
    use crate::vec3::Vec3;

    const TOL: f64 = 1e-6;

    #[test]
    fn paper_containers_pass() {
        for mesh in [
            shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0)),
            shapes::cylinder(1.0, 2.0, 48),
            shapes::cone(1.0, 2.0, 32, true),
            shapes::blast_furnace(0.1, 24),
        ] {
            container_sanity(&mesh, TOL).unwrap();
        }
    }

    #[test]
    fn structural_errors_pass_through() {
        let mesh = TriMesh {
            vertices: vec![Vec3::ZERO, Vec3::X, Vec3::new(f64::NAN, 0.0, 0.0)],
            faces: vec![[0, 1, 2]],
        };
        assert!(matches!(
            container_sanity(&mesh, TOL),
            Err(SanityError::Structural(MeshError::NonFiniteVertex {
                vertex: 2
            }))
        ));
    }

    #[test]
    fn sliver_facet_is_named() {
        // Face 12 added to a valid box: three collinear (distinct) vertices.
        let mut mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        let base = mesh.vertices.len();
        mesh.vertices.extend([
            Vec3::new(5.0, 0.0, 0.0),
            Vec3::new(6.0, 0.0, 0.0),
            Vec3::new(7.0, 0.0, 0.0),
        ]);
        mesh.faces.push([base, base + 1, base + 2]);
        match container_sanity(&mesh, TOL) {
            Err(SanityError::SliverFacet { face, .. }) => assert_eq!(face, 12),
            other => panic!("expected SliverFacet, got {other:?}"),
        }
    }

    #[test]
    fn open_mesh_names_the_unmatched_edge() {
        let mut mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        mesh.faces.pop();
        match container_sanity(&mesh, TOL) {
            Err(SanityError::OpenEdge { face, .. }) => assert!(face < mesh.face_count()),
            other => panic!("expected OpenEdge, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_facet_is_non_manifold() {
        let mut mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        let dup = mesh.faces[3];
        mesh.faces.push(dup);
        assert!(matches!(
            container_sanity(&mesh, TOL),
            Err(SanityError::NonManifoldEdge { .. })
        ));
    }

    #[test]
    fn inside_out_mesh_is_rejected() {
        let mut mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        for f in &mut mesh.faces {
            f.swap(1, 2);
        }
        assert!(matches!(
            container_sanity(&mesh, TOL),
            Err(SanityError::InvertedOrientation { volume }) if volume < 0.0
        ));
    }

    #[test]
    fn concave_mesh_is_rejected() {
        // An L-shaped (concave) solid: union of two boxes sharing a face,
        // meshed watertight by construction via hull of each box... simpler:
        // a box with one corner pushed inward far enough to dent it.
        let mut mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        // Pull vertex at a corner towards the center: the box becomes
        // concave around that corner but stays watertight.
        let target = mesh
            .vertices
            .iter()
            .position(|v| (*v - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-9)
            .expect("corner vertex");
        mesh.vertices[target] = Vec3::new(0.2, 0.2, 0.2);
        match container_sanity(&mesh, TOL) {
            Err(SanityError::NotConvex {
                mesh_volume,
                hull_volume,
            }) => assert!(hull_volume > mesh_volume),
            other => panic!("expected NotConvex, got {other:?}"),
        }
    }

    #[test]
    fn display_messages_name_the_facet() {
        let e = SanityError::SliverFacet { face: 7, area: 0.0 };
        assert!(e.to_string().contains("facet 7"));
        let e = SanityError::OpenEdge {
            face: 3,
            from: 1,
            to: 2,
        };
        assert!(e.to_string().contains("facet 3"));
        assert!(e.to_string().contains("1->2"));
    }
}
