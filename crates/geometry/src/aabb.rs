//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;

/// An axis-aligned box `[min, max]` in ℝ³.
///
/// Used both as a bounding volume and as the *virtual inner box* density
/// probe of the paper's Fig. 4 (a box ⅓ smaller than the container, centred).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners; the result is normalized so that
    /// `min <= max` component-wise.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// An empty box, suitable as the identity for [`Aabb::union`] /
    /// [`Aabb::expand_point`].
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Smallest box containing all `points`; [`Aabb::empty`] for no points.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut b = Aabb::empty();
        for &p in points {
            b.expand_point(p);
        }
        b
    }

    /// A cube of the given side, centred at `center`.
    pub fn cube(center: Vec3, side: f64) -> Self {
        let h = Vec3::splat(side / 2.0);
        Aabb::new(center - h, center + h)
    }

    /// True when `min <= max` fails on some axis (no point is contained).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Grows the box to include `p`.
    pub fn expand_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Intersection; may be empty.
    pub fn intersection(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        }
    }

    /// Box centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths.
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the space diagonal; `0` for an empty box.
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.extent().norm()
        }
    }

    /// Volume; `0` for an empty box.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            let e = self.extent();
            e.x * e.y * e.z
        }
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when the closed boxes intersect.
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.intersection(other).is_empty()
    }

    /// True when the sphere `(center, radius)` intersects the box.
    pub fn intersects_sphere(&self, center: Vec3, radius: f64) -> bool {
        self.distance_sq_to_point(center) <= radius * radius
    }

    /// Squared distance from `p` to the box (0 if inside).
    pub fn distance_sq_to_point(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for i in 0..3 {
            let v = p[i];
            if v < self.min[i] {
                d2 += (self.min[i] - v) * (self.min[i] - v);
            } else if v > self.max[i] {
                d2 += (v - self.max[i]) * (v - self.max[i]);
            }
        }
        d2
    }

    /// Shrinks the box towards its centre by `factor` on every axis.
    ///
    /// `factor = 1/3` produces the paper's Fig. 4 *virtual inner box*: each
    /// edge is reduced to `1 - 1/3 = 2/3` of the original while the centre is
    /// preserved.
    pub fn shrink(&self, factor: f64) -> Aabb {
        assert!(
            (0.0..1.0).contains(&factor),
            "shrink factor must be in [0, 1), got {factor}"
        );
        let c = self.center();
        let h = self.extent() * 0.5 * (1.0 - factor);
        Aabb::new(c - h, c + h)
    }

    /// The 8 corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(-1.0, 1.0, 2.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 2.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 5.0));
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.diagonal(), 0.0);
        assert!(!e.contains(Vec3::ZERO));
    }

    #[test]
    fn from_points_and_expand() {
        let pts = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 2.0, -3.0),
            Vec3::new(-1.0, 0.5, 4.0),
        ];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, -3.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 4.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn cube_center_extent_volume() {
        let b = Aabb::cube(Vec3::new(1.0, 1.0, 1.0), 2.0);
        assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(b.extent(), Vec3::splat(2.0));
        assert!((b.volume() - 8.0).abs() < 1e-12);
        assert!((b.diagonal() - (12.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn union_intersection() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert_eq!(u, Aabb::new(Vec3::ZERO, Vec3::splat(3.0)));
        let i = a.intersection(&b);
        assert_eq!(i, Aabb::new(Vec3::splat(1.0), Vec3::splat(2.0)));
        assert!(a.intersects(&b));

        let far = Aabb::new(Vec3::splat(10.0), Vec3::splat(11.0));
        assert!(!a.intersects(&far));
        assert!(a.intersection(&far).is_empty());
    }

    #[test]
    fn sphere_intersection() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.intersects_sphere(Vec3::splat(0.5), 0.1)); // inside
        assert!(b.intersects_sphere(Vec3::new(1.5, 0.5, 0.5), 0.6)); // touching face
        assert!(!b.intersects_sphere(Vec3::new(2.0, 0.5, 0.5), 0.5)); // too far
                                                                      // Corner case: sphere approaching the (1,1,1) corner diagonally.
        let c = Vec3::splat(1.0 + 0.1 / (3.0f64).sqrt());
        assert!(b.intersects_sphere(c, 0.11));
        assert!(!b.intersects_sphere(c, 0.09));
    }

    #[test]
    fn distance_sq_inside_is_zero() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.distance_sq_to_point(Vec3::splat(0.5)), 0.0);
        assert_eq!(b.distance_sq_to_point(Vec3::new(1.0, 1.0, 1.0)), 0.0); // boundary
        assert!((b.distance_sq_to_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shrink_matches_paper_inner_box() {
        // Container box 2x2x2 centred at origin; inner box 1/3 smaller.
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let inner = b.shrink(1.0 / 3.0);
        assert_eq!(inner.center(), Vec3::ZERO);
        let e = inner.extent();
        assert!((e.x - 4.0 / 3.0).abs() < 1e-12);
        assert!((e.y - 4.0 / 3.0).abs() < 1e-12);
        assert!((e.z - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shrink factor")]
    fn shrink_rejects_bad_factor() {
        let _ = Aabb::cube(Vec3::ZERO, 1.0).shrink(1.0);
    }

    #[test]
    fn corners_are_contained_and_unique() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 1.0, 3.0));
        let cs = b.corners();
        for c in cs {
            assert!(b.contains(c));
        }
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(cs[i], cs[j]);
            }
        }
    }
}
