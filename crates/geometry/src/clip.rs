//! Clipping convex closed meshes by half-spaces.
//!
//! Zones (§VI-A) restrict a container to a sub-region — an altitude slab or
//! a nested shape. Representing the restricted region only as extra
//! half-space rows is enough for the objective, but loses the explicit
//! geometry (volume, vertex support for spawn slabs). This module clips a
//! convex, watertight [`TriMesh`] against a plane's inner half-space
//! (`signed distance ≤ 0`), producing a closed mesh again: surface
//! triangles are Sutherland–Hodgman-clipped, and the cut cross-section is
//! capped with a fan around its centroid (the cross-section of a convex
//! body is convex, so the fan is valid).

use crate::mesh::TriMesh;
use crate::plane::Plane;
use crate::vec3::Vec3;

/// Result of [`clip_convex`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClipResult {
    /// The mesh lies entirely inside the half-space (returned unchanged).
    Unchanged,
    /// The mesh lies entirely outside; nothing remains.
    Empty,
    /// The mesh was cut; the payload is the closed clipped mesh.
    Clipped(TriMesh),
}

/// Clips a convex closed mesh by the half-space `plane.signed_distance ≤ 0`.
///
/// `eps` is the absolute tolerance for on-plane classification; pass
/// something like `1e-9 ×` the mesh diagonal.
pub fn clip_convex(mesh: &TriMesh, plane: &Plane, eps: f64) -> ClipResult {
    let dists: Vec<f64> = mesh
        .vertices
        .iter()
        .map(|&v| plane.signed_distance(v))
        .collect();
    let any_out = dists.iter().any(|&d| d > eps);
    let any_in = dists.iter().any(|&d| d < -eps);
    if !any_out {
        return ClipResult::Unchanged;
    }
    if !any_in {
        return ClipResult::Empty;
    }

    let mut vertices: Vec<Vec3> = Vec::new();
    let mut faces: Vec<[usize; 3]> = Vec::new();
    let mut cut_points: Vec<Vec3> = Vec::new();

    let push_poly = |poly: &[Vec3], vertices: &mut Vec<Vec3>, faces: &mut Vec<[usize; 3]>| {
        if poly.len() < 3 {
            return;
        }
        let base = vertices.len();
        vertices.extend_from_slice(poly);
        for k in 1..poly.len() - 1 {
            faces.push([base, base + k, base + k + 1]);
        }
    };

    for tri in &mesh.faces {
        let pts = [
            mesh.vertices[tri[0]],
            mesh.vertices[tri[1]],
            mesh.vertices[tri[2]],
        ];
        let ds = [dists[tri[0]], dists[tri[1]], dists[tri[2]]];
        // Sutherland–Hodgman against the single clip plane. Classification
        // is the exact sign test (`d ≤ 0` is inside) so both triangles of a
        // shared edge agree on its crossing point; `eps` is only used for
        // the fast-path checks above and the final weld.
        let mut poly: Vec<Vec3> = Vec::with_capacity(4);
        for i in 0..3 {
            let j = (i + 1) % 3;
            let (pi, pj) = (pts[i], pts[j]);
            let (di, dj) = (ds[i], ds[j]);
            if di <= 0.0 {
                poly.push(pi);
            }
            if (di <= 0.0) != (dj <= 0.0) {
                let t = di / (di - dj);
                let x = pi.lerp(pj, t);
                poly.push(x);
                cut_points.push(x);
            }
        }
        push_poly(&poly, &mut vertices, &mut faces);
    }

    // Cap the cut. The cut cross-section of a convex body is a convex
    // polygon; order its points angularly around the centroid in the plane
    // and fan-triangulate with winding facing the plane normal (outward).
    if cut_points.len() >= 3 {
        let centroid = cut_points.iter().fold(Vec3::ZERO, |a, &b| a + b) / cut_points.len() as f64;
        let u = plane.normal.any_orthonormal();
        let v = plane.normal.cross(u);
        let mut ring: Vec<(f64, Vec3)> = cut_points
            .iter()
            .map(|&p| {
                let d = p - centroid;
                (d.dot(v).atan2(d.dot(u)), p)
            })
            .collect();
        ring.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Drop angular duplicates (each cut edge endpoint appears twice).
        let mut dedup: Vec<Vec3> = Vec::with_capacity(ring.len() / 2 + 1);
        let tol2 = (eps * 10.0).powi(2).max(1e-24);
        for (_, p) in ring {
            if dedup.last().is_none_or(|q| q.distance_sq(p) > tol2) {
                dedup.push(p);
            }
        }
        if dedup.len() >= 2 && dedup[0].distance_sq(*dedup.last().unwrap()) <= tol2 {
            dedup.pop();
        }
        if dedup.len() >= 3 {
            let base = vertices.len();
            vertices.push(centroid);
            vertices.extend_from_slice(&dedup);
            let n = dedup.len();
            for k in 0..n {
                let a = base + 1 + k;
                let b = base + 1 + (k + 1) % n;
                // Wind so the cap's normal points along the clip plane's
                // outward normal.
                let tri = crate::triangle::Triangle::new(vertices[base], vertices[a], vertices[b]);
                if tri.scaled_normal().dot(plane.normal) >= 0.0 {
                    faces.push([base, a, b]);
                } else {
                    faces.push([base, b, a]);
                }
            }
        }
    }

    let mut out = TriMesh { vertices, faces };
    let diag = mesh.aabb().diagonal().max(1.0);
    out.deduplicate_vertices(diag * 1e-12 + eps * 0.5);
    if out.faces.len() < 4 {
        return ClipResult::Empty;
    }
    ClipResult::Clipped(out)
}

/// Clips by several half-spaces in sequence; `None` when nothing remains.
pub fn clip_convex_all(mesh: &TriMesh, planes: &[Plane], eps: f64) -> Option<TriMesh> {
    let mut current = mesh.clone();
    for p in planes {
        match clip_convex(&current, p, eps) {
            ClipResult::Unchanged => {}
            ClipResult::Empty => return None,
            ClipResult::Clipped(m) => current = m,
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn unit_box() -> TriMesh {
        shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0)) // [-1, 1]^3
    }

    #[test]
    fn plane_missing_the_mesh_is_unchanged_or_empty() {
        let m = unit_box();
        let above = Plane::from_point_normal(Vec3::new(0.0, 0.0, 5.0), Vec3::Z).unwrap();
        assert_eq!(clip_convex(&m, &above, 1e-9), ClipResult::Unchanged);
        let below = Plane::from_point_normal(Vec3::new(0.0, 0.0, -5.0), Vec3::Z).unwrap();
        assert_eq!(clip_convex(&m, &below, 1e-9), ClipResult::Empty);
    }

    #[test]
    fn axis_aligned_cut_halves_the_volume() {
        let m = unit_box();
        let cut = Plane::from_point_normal(Vec3::ZERO, Vec3::Z).unwrap();
        let ClipResult::Clipped(half) = clip_convex(&m, &cut, 1e-9) else {
            panic!("expected a cut");
        };
        assert!(half.is_watertight(), "clipped mesh must be closed");
        assert!(
            (half.signed_volume() - 4.0).abs() < 1e-9,
            "volume = {}",
            half.signed_volume()
        );
        // All vertices on or below the plane.
        for &v in &half.vertices {
            assert!(v.z <= 1e-9);
        }
    }

    #[test]
    fn oblique_cut_of_box_volume_is_exact() {
        // Cut [-1,1]^3 by x + y + z ≤ 0: by symmetry, exactly half remains.
        let m = unit_box();
        let n = Vec3::new(1.0, 1.0, 1.0);
        let cut = Plane::from_point_normal(Vec3::ZERO, n).unwrap();
        let ClipResult::Clipped(piece) = clip_convex(&m, &cut, 1e-9) else {
            panic!("expected a cut");
        };
        assert!(piece.is_watertight());
        assert!(
            (piece.signed_volume() - 4.0).abs() < 1e-9,
            "volume = {}",
            piece.signed_volume()
        );
    }

    #[test]
    fn corner_cut_produces_tetrahedral_complement() {
        // Cut off the (+,+,+) corner of the box with x + y + z ≤ 2: removes
        // a tetrahedron of volume 1/6 (legs of length 1).
        let m = unit_box();
        let cut = Plane::from_point_normal(
            Vec3::new(2.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0),
            Vec3::new(1.0, 1.0, 1.0),
        )
        .unwrap();
        let ClipResult::Clipped(piece) = clip_convex(&m, &cut, 1e-9) else {
            panic!("expected a cut");
        };
        assert!(piece.is_watertight());
        let expect = 8.0 - 1.0 / 6.0;
        assert!(
            (piece.signed_volume() - expect).abs() < 1e-9,
            "volume = {}, expect = {expect}",
            piece.signed_volume()
        );
    }

    #[test]
    fn slab_of_cylinder_matches_closed_form() {
        let m = shapes::cylinder(1.0, 2.0, 64);
        let planes = vec![
            Plane::from_point_normal(Vec3::new(0.0, 0.0, 1.5), Vec3::Z).unwrap(),
            Plane::from_point_normal(Vec3::new(0.0, 0.0, 0.5), -Vec3::Z).unwrap(),
        ];
        let slab = clip_convex_all(&m, &planes, 1e-9).expect("slab remains");
        assert!(slab.is_watertight());
        // One unit of cylinder height: π r² (discretized with 64 segments).
        let expect = m.signed_volume() / 2.0;
        assert!(
            (slab.signed_volume() - expect).abs() / expect < 1e-9,
            "volume = {}, expect = {expect}",
            slab.signed_volume()
        );
        for &v in &slab.vertices {
            assert!(v.z >= 0.5 - 1e-9 && v.z <= 1.5 + 1e-9);
        }
    }

    #[test]
    fn repeated_cuts_reduce_to_nothing() {
        let m = unit_box();
        let planes = vec![
            Plane::from_point_normal(Vec3::new(0.0, 0.0, -0.5), Vec3::Z).unwrap(),
            Plane::from_point_normal(Vec3::new(0.0, 0.0, -0.6), -Vec3::Z).unwrap(),
        ];
        // z ≤ -0.5 AND z ≥ -0.6 is a thin slab: remains.
        assert!(clip_convex_all(&m, &planes, 1e-9).is_some());
        // Contradictory planes: z ≤ -0.5 AND z ≥ 0.5 is empty.
        let contradiction = vec![
            Plane::from_point_normal(Vec3::new(0.0, 0.0, -0.5), Vec3::Z).unwrap(),
            Plane::from_point_normal(Vec3::new(0.0, 0.0, 0.5), -Vec3::Z).unwrap(),
        ];
        assert!(clip_convex_all(&m, &contradiction, 1e-9).is_none());
    }

    #[test]
    fn clipped_sphere_cap_volume() {
        // Sphere of radius 1 cut at z ≤ 0.5 keeps volume = sphere − cap(h=0.5).
        let m = shapes::uv_sphere(Vec3::ZERO, 1.0, 64, 48);
        let cut = Plane::from_point_normal(Vec3::new(0.0, 0.0, 0.5), Vec3::Z).unwrap();
        let ClipResult::Clipped(piece) = clip_convex(&m, &cut, 1e-9) else {
            panic!("expected a cut");
        };
        assert!(piece.is_watertight());
        let v_sphere = 4.0 / 3.0 * std::f64::consts::PI;
        let v_cap = std::f64::consts::PI * 0.25 * (3.0 - 0.5) / 3.0;
        let expect = v_sphere - v_cap;
        let rel = (piece.signed_volume() - expect).abs() / expect;
        // Discretization error of the 64×48 sphere dominates.
        assert!(
            rel < 0.01,
            "volume = {}, expect = {expect}",
            piece.signed_volume()
        );
    }
}
