//! Oriented planes in `ax + by + cz + d = 0` form.
//!
//! This matches the rows of the paper's `H` matrix (§III-B): the convex hull
//! `Conv(V)` is the intersection of half-spaces `a·x + b·y + c·z + d ≤ 0`,
//! i.e. the normal `(a, b, c)` points *outward*.

use crate::vec3::Vec3;

/// An oriented plane `n·x + d = 0` with **unit** normal `n`.
///
/// Points with positive [`Plane::signed_distance`] lie on the outside (the
/// side the normal points to). Because the normal is kept normalized, the
/// paper's `ρ_ik = (a x + b y + c z + d)/√(a²+b²+c²)` reduces to a plain dot
/// product plus offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Unit outward normal `(a, b, c)`.
    pub normal: Vec3,
    /// Offset `d` so that the plane satisfies `normal·x + d = 0`.
    pub d: f64,
}

impl Plane {
    /// Creates a plane from raw coefficients `(a, b, c, d)`, normalizing the
    /// normal. Returns `None` for a degenerate (zero) normal.
    pub fn from_coefficients(a: f64, b: f64, c: f64, d: f64) -> Option<Plane> {
        let n = Vec3::new(a, b, c);
        let len = n.norm();
        if len > 0.0 && len.is_finite() && d.is_finite() {
            Some(Plane {
                normal: n / len,
                d: d / len,
            })
        } else {
            None
        }
    }

    /// Plane through `point` with the given (not necessarily unit) `normal`.
    pub fn from_point_normal(point: Vec3, normal: Vec3) -> Option<Plane> {
        let n = normal.normalized()?;
        Some(Plane {
            normal: n,
            d: -n.dot(point),
        })
    }

    /// Plane through three points, normal oriented by right-hand winding
    /// `(b - a) × (c - a)`. Returns `None` for (near-)collinear points.
    pub fn from_triangle(a: Vec3, b: Vec3, c: Vec3) -> Option<Plane> {
        let n = (b - a).cross(c - a);
        Plane::from_point_normal(a, n)
    }

    /// Signed distance from `p` to the plane: positive outside (along the
    /// normal), negative inside.
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p) + self.d
    }

    /// The paper's `ρ̃_ik = ρ_ik + r_i`: signed distance of the *surface* of
    /// a sphere of radius `r` centred at `c`, measured along the outward
    /// normal. Positive means the sphere pokes out through this plane.
    #[inline]
    pub fn sphere_excess(&self, center: Vec3, radius: f64) -> f64 {
        self.signed_distance(center) + radius
    }

    /// Returns the plane with opposite orientation.
    #[inline]
    pub fn flipped(&self) -> Plane {
        Plane {
            normal: -self.normal,
            d: -self.d,
        }
    }

    /// Projects `p` onto the plane.
    #[inline]
    pub fn project(&self, p: Vec3) -> Vec3 {
        p - self.normal * self.signed_distance(p)
    }

    /// Raw `(a, b, c, d)` coefficient row as in the paper's `H` matrix.
    #[inline]
    pub fn coefficients(&self) -> [f64; 4] {
        [self.normal.x, self.normal.y, self.normal.z, self.d]
    }

    /// True when two planes describe the same oriented half-space within
    /// tolerance `eps` (normals within `eps`, offsets within `eps`).
    pub fn approx_eq(&self, other: &Plane, eps: f64) -> bool {
        (self.normal - other.normal).norm() <= eps && (self.d - other.d).abs() <= eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coefficients_normalizes() {
        let p = Plane::from_coefficients(0.0, 0.0, 2.0, -4.0).unwrap();
        assert!((p.normal - Vec3::Z).norm() < 1e-12);
        assert!((p.d - -2.0).abs() < 1e-12);
        // z = 2 plane: signed distance of z=5 point is 3.
        assert!((p.signed_distance(Vec3::new(0.0, 0.0, 5.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_normal_rejected() {
        assert!(Plane::from_coefficients(0.0, 0.0, 0.0, 1.0).is_none());
        assert!(Plane::from_point_normal(Vec3::ZERO, Vec3::ZERO).is_none());
        assert!(Plane::from_coefficients(f64::NAN, 0.0, 1.0, 0.0).is_none());
    }

    #[test]
    fn from_point_normal() {
        let p =
            Plane::from_point_normal(Vec3::new(1.0, 1.0, 1.0), Vec3::new(0.0, 3.0, 0.0)).unwrap();
        assert!(p.signed_distance(Vec3::new(5.0, 1.0, -2.0)).abs() < 1e-12);
        assert!((p.signed_distance(Vec3::new(0.0, 4.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_triangle_winding_sets_normal() {
        // CCW triangle in the xy plane seen from +z => normal along +z.
        let p = Plane::from_triangle(Vec3::ZERO, Vec3::X, Vec3::Y).unwrap();
        assert!((p.normal - Vec3::Z).norm() < 1e-12);
        // Collinear points are rejected.
        assert!(Plane::from_triangle(Vec3::ZERO, Vec3::X, Vec3::X * 2.0).is_none());
    }

    #[test]
    fn sphere_excess_matches_paper_definition() {
        // Plane x = 1, outward +x. A sphere at x = 0.8 with r = 0.3 extends
        // to x = 1.1, i.e. pokes out by 0.1.
        let p = Plane::from_point_normal(Vec3::X, Vec3::X).unwrap();
        let excess = p.sphere_excess(Vec3::new(0.8, 0.0, 0.0), 0.3);
        assert!((excess - 0.1).abs() < 1e-12);
        // Fully inside sphere has negative excess.
        assert!(p.sphere_excess(Vec3::new(0.2, 0.0, 0.0), 0.3) < 0.0);
    }

    #[test]
    fn flip_and_project() {
        let p = Plane::from_point_normal(Vec3::new(0.0, 0.0, 2.0), Vec3::Z).unwrap();
        let f = p.flipped();
        let q = Vec3::new(1.0, 2.0, 5.0);
        assert!((p.signed_distance(q) + f.signed_distance(q)).abs() < 1e-12);
        let proj = p.project(q);
        assert!(p.signed_distance(proj).abs() < 1e-12);
        assert!((proj - Vec3::new(1.0, 2.0, 2.0)).norm() < 1e-12);
    }

    #[test]
    fn coefficients_round_trip() {
        let p = Plane::from_coefficients(1.0, 2.0, 2.0, 6.0).unwrap();
        let [a, b, c, d] = p.coefficients();
        let q = Plane::from_coefficients(a, b, c, d).unwrap();
        assert!(p.approx_eq(&q, 1e-12));
    }

    #[test]
    fn approx_eq_tolerance() {
        let p = Plane::from_coefficients(0.0, 0.0, 1.0, -1.0).unwrap();
        let q = Plane::from_coefficients(0.0, 1e-8, 1.0, -1.0 + 1e-8).unwrap();
        assert!(p.approx_eq(&q, 1e-6));
        assert!(!p.approx_eq(&q.flipped(), 1e-6));
    }
}
