//! Gravity axes.
//!
//! The paper assumes gravity along `z` "however in practice any direction can
//! be used" (§III-B). [`Axis`] captures both the named coordinate axes used in
//! the YAML configuration (`gravity_axis: z`) and arbitrary directions.

use crate::vec3::Vec3;

/// A gravity direction.
///
/// The *direction* points the way gravity pulls, i.e. the altitude term
/// `A^C` of the objective is the sum of particle coordinates along
/// `-direction` — minimizing it pushes particles *along* gravity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Axis {
    /// Gravity pulls towards -x; altitude measured along +x.
    X,
    /// Gravity pulls towards -y; altitude measured along +y.
    Y,
    /// Gravity pulls towards -z; altitude measured along +z (paper default).
    #[default]
    Z,
    /// Arbitrary *up* direction (unit vector); altitude measured along it.
    Custom(Vec3),
}

impl Axis {
    /// The unit "up" vector: the direction along which altitude is measured.
    pub fn up(&self) -> Vec3 {
        match *self {
            Axis::X => Vec3::X,
            Axis::Y => Vec3::Y,
            Axis::Z => Vec3::Z,
            Axis::Custom(v) => v,
        }
    }

    /// Altitude of a point: its coordinate along the up direction.
    #[inline]
    pub fn altitude(&self, p: Vec3) -> f64 {
        match *self {
            // Fast paths avoid a full dot product in the packing hot loop.
            Axis::X => p.x,
            Axis::Y => p.y,
            Axis::Z => p.z,
            Axis::Custom(v) => v.dot(p),
        }
    }

    /// Builds a custom axis from any nonzero vector, normalizing it.
    ///
    /// Returns `None` for the zero vector. Vectors that coincide with a
    /// coordinate axis still produce `Custom`; use [`Axis::canonicalize`] to
    /// fold those back to the named variants.
    pub fn from_vector(v: Vec3) -> Option<Axis> {
        v.normalized().map(Axis::Custom)
    }

    /// Parses the YAML spellings: `x`/`y`/`z` (also `0`/`1`/`2`).
    pub fn parse(s: &str) -> Option<Axis> {
        match s.trim().to_ascii_lowercase().as_str() {
            "x" | "0" => Some(Axis::X),
            "y" | "1" => Some(Axis::Y),
            "z" | "2" => Some(Axis::Z),
            _ => None,
        }
    }

    /// Folds `Custom` axes that coincide with +x/+y/+z back to the named
    /// variants (within `1e-12`).
    pub fn canonicalize(self) -> Axis {
        if let Axis::Custom(v) = self {
            for (unit, axis) in [(Vec3::X, Axis::X), (Vec3::Y, Axis::Y), (Vec3::Z, Axis::Z)] {
                if (v - unit).norm() < 1e-12 {
                    return axis;
                }
            }
        }
        self
    }

    /// Index of the coordinate axis (0/1/2) for named axes, `None` for
    /// `Custom`.
    pub fn index(&self) -> Option<usize> {
        match self {
            Axis::X => Some(0),
            Axis::Y => Some(1),
            Axis::Z => Some(2),
            Axis::Custom(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altitude_matches_dot_product() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Axis::X.altitude(p), 1.0);
        assert_eq!(Axis::Y.altitude(p), 2.0);
        assert_eq!(Axis::Z.altitude(p), 3.0);
        let up = Vec3::new(1.0, 1.0, 0.0).normalized().unwrap();
        let a = Axis::Custom(up);
        assert!((a.altitude(p) - up.dot(p)).abs() < 1e-12);
    }

    #[test]
    fn parse_spellings() {
        assert_eq!(Axis::parse("z"), Some(Axis::Z));
        assert_eq!(Axis::parse(" X "), Some(Axis::X));
        assert_eq!(Axis::parse("1"), Some(Axis::Y));
        assert_eq!(Axis::parse("w"), None);
        assert_eq!(Axis::parse(""), None);
    }

    #[test]
    fn from_vector_normalizes_and_rejects_zero() {
        let a = Axis::from_vector(Vec3::new(0.0, 0.0, 5.0)).unwrap();
        assert!((a.up() - Vec3::Z).norm() < 1e-12);
        assert!(Axis::from_vector(Vec3::ZERO).is_none());
    }

    #[test]
    fn canonicalize_folds_unit_axes() {
        let a = Axis::from_vector(Vec3::new(0.0, 2.0, 0.0))
            .unwrap()
            .canonicalize();
        assert_eq!(a, Axis::Y);
        let skew = Axis::from_vector(Vec3::new(1.0, 1.0, 0.0))
            .unwrap()
            .canonicalize();
        assert!(matches!(skew, Axis::Custom(_)));
    }

    #[test]
    fn index_of_named_axes() {
        assert_eq!(Axis::X.index(), Some(0));
        assert_eq!(Axis::Z.index(), Some(2));
        assert_eq!(Axis::Custom(Vec3::Z).index(), None);
        assert_eq!(Axis::default(), Axis::Z);
    }
}
