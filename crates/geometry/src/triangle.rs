//! Triangle primitives.

use crate::plane::Plane;
use crate::vec3::Vec3;

/// A triangle in ℝ³ given by its three corners.
///
/// Winding is meaningful: the geometric normal follows the right-hand rule
/// over `(b - a) × (c - a)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First corner.
    pub a: Vec3,
    /// Second corner.
    pub b: Vec3,
    /// Third corner.
    pub c: Vec3,
}

impl Triangle {
    /// Creates a triangle.
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// Unnormalized normal `(b - a) × (c - a)`; its norm is twice the area.
    #[inline]
    pub fn scaled_normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Unit normal, `None` for degenerate triangles.
    pub fn normal(&self) -> Option<Vec3> {
        self.scaled_normal().normalized()
    }

    /// Triangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.scaled_normal().norm() * 0.5
    }

    /// Centroid.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Supporting plane, `None` for degenerate triangles.
    pub fn plane(&self) -> Option<Plane> {
        Plane::from_triangle(self.a, self.b, self.c)
    }

    /// Signed volume of the tetrahedron (origin, a, b, c); summing this over
    /// a closed, outward-wound mesh gives the enclosed volume.
    #[inline]
    pub fn signed_volume(&self) -> f64 {
        self.a.dot(self.b.cross(self.c)) / 6.0
    }

    /// Closest point on the (solid) triangle to `p`.
    ///
    /// Standard Voronoi-region case analysis (Ericson, *Real-Time Collision
    /// Detection*, §5.1.5).
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        let (a, b, c) = (self.a, self.b, self.c);
        let ab = b - a;
        let ac = c - a;
        let ap = p - a;
        let d1 = ab.dot(ap);
        let d2 = ac.dot(ap);
        if d1 <= 0.0 && d2 <= 0.0 {
            return a;
        }

        let bp = p - b;
        let d3 = ab.dot(bp);
        let d4 = ac.dot(bp);
        if d3 >= 0.0 && d4 <= d3 {
            return b;
        }

        let vc = d1 * d4 - d3 * d2;
        if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
            let v = d1 / (d1 - d3);
            return a + ab * v;
        }

        let cp = p - c;
        let d5 = ab.dot(cp);
        let d6 = ac.dot(cp);
        if d6 >= 0.0 && d5 <= d6 {
            return c;
        }

        let vb = d5 * d2 - d1 * d6;
        if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
            let w = d2 / (d2 - d6);
            return a + ac * w;
        }

        let va = d3 * d6 - d5 * d4;
        if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
            let w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
            return b + (c - b) * w;
        }

        let denom = 1.0 / (va + vb + vc);
        let v = vb * denom;
        let w = vc * denom;
        a + ab * v + ac * w
    }

    /// Distance from `p` to the solid triangle.
    pub fn distance(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tri() -> Triangle {
        Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)
    }

    #[test]
    fn area_and_normal() {
        let t = unit_tri();
        assert!((t.area() - 0.5).abs() < 1e-12);
        assert!((t.normal().unwrap() - Vec3::Z).norm() < 1e-12);
        let degenerate = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::X * 3.0);
        assert!(degenerate.normal().is_none());
        assert_eq!(degenerate.area(), 0.0);
    }

    #[test]
    fn centroid() {
        let t = Triangle::new(
            Vec3::ZERO,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        assert!((t.centroid() - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn signed_volume_of_unit_tetra_faces() {
        // Tetrahedron (0, e_x, e_y, e_z) has volume 1/6; sum the four
        // outward-wound faces' signed volumes.
        let o = Vec3::ZERO;
        let (x, y, z) = (Vec3::X, Vec3::Y, Vec3::Z);
        let faces = [
            Triangle::new(o, y, x), // bottom (normal -z)
            Triangle::new(o, x, z),
            Triangle::new(o, z, y),
            Triangle::new(x, y, z),
        ];
        let v: f64 = faces.iter().map(Triangle::signed_volume).sum();
        assert!((v - 1.0 / 6.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn closest_point_regions() {
        let t = unit_tri();
        // Interior projection.
        let p = Vec3::new(0.25, 0.25, 5.0);
        assert!((t.closest_point(p) - Vec3::new(0.25, 0.25, 0.0)).norm() < 1e-12);
        // Vertex regions.
        assert!((t.closest_point(Vec3::new(-1.0, -1.0, 0.0)) - Vec3::ZERO).norm() < 1e-12);
        assert!((t.closest_point(Vec3::new(2.0, -1.0, 0.0)) - Vec3::X).norm() < 1e-12);
        assert!((t.closest_point(Vec3::new(-1.0, 2.0, 0.0)) - Vec3::Y).norm() < 1e-12);
        // Edge ab region.
        let q = t.closest_point(Vec3::new(0.5, -1.0, 0.0));
        assert!((q - Vec3::new(0.5, 0.0, 0.0)).norm() < 1e-12);
        // Hypotenuse region: point beyond edge bc projects onto it.
        let q = t.closest_point(Vec3::new(1.0, 1.0, 0.0));
        assert!((q - Vec3::new(0.5, 0.5, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn distance_is_consistent_with_closest_point() {
        let t = unit_tri();
        let p = Vec3::new(0.25, 0.25, 2.0);
        assert!((t.distance(p) - 2.0).abs() < 1e-12);
        assert_eq!(t.distance(Vec3::new(0.1, 0.1, 0.0)), 0.0);
    }
}
