//! 3-D convex hulls via QuickHull (the paper's QHULL substitute).
//!
//! The packing objective's exterior-distance term `E_H^{C,r}` (paper eq. 2)
//! needs the container expressed as a set of half-spaces
//! `a·x + b·y + c·z + d ≤ 0`. The reference implementation obtains these from
//! SciPy's `ConvexHull` (QHULL \[25\]); [`ConvexHull::from_points`] implements
//! the same computation from scratch with the classic QuickHull algorithm
//! (Barber, Dobkin & Huhdanpaa, 1996), including QHULL-style input joggling
//! as a fallback for degenerate configurations.

use std::collections::HashSet;

use crate::aabb::Aabb;
use crate::mesh::TriMesh;
use crate::plane::Plane;
use crate::vec3::Vec3;

/// Errors from hull construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than four input points.
    TooFewPoints(usize),
    /// The input is degenerate (collinear/coplanar) beyond what joggling can
    /// repair.
    Degenerate,
    /// A numerical failure occurred during face construction.
    Numerical,
}

impl std::fmt::Display for HullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HullError::TooFewPoints(n) => write!(f, "convex hull needs >= 4 points, got {n}"),
            HullError::Degenerate => {
                write!(f, "input points are degenerate (collinear or coplanar)")
            }
            HullError::Numerical => write!(f, "numerical failure during hull construction"),
        }
    }
}

impl std::error::Error for HullError {}

/// An intersection of half-spaces — the paper's `H` matrix.
///
/// Each plane's outward normal points away from the interior; a point is
/// inside when every signed distance is `≤ 0`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HalfSpaceSet {
    planes: Vec<Plane>,
}

impl HalfSpaceSet {
    /// Wraps a plane list.
    pub fn new(planes: Vec<Plane>) -> Self {
        HalfSpaceSet { planes }
    }

    /// The planes.
    pub fn planes(&self) -> &[Plane] {
        &self.planes
    }

    /// Number of half-spaces.
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// True when there are no planes (the whole of ℝ³).
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// Adds a half-space constraint (e.g. a zone slice bound).
    pub fn push(&mut self, plane: Plane) {
        self.planes.push(plane);
    }

    /// Returns a copy with an extra half-space.
    pub fn with_plane(&self, plane: Plane) -> HalfSpaceSet {
        let mut s = self.clone();
        s.push(plane);
        s
    }

    /// Largest signed distance of `p` over all planes; `≤ 0` means inside.
    ///
    /// Returns `-inf` for an empty set.
    pub fn max_signed_distance(&self, p: Vec3) -> f64 {
        self.planes
            .iter()
            .map(|pl| pl.signed_distance(p))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True when `p` is inside within tolerance `tol`.
    pub fn contains(&self, p: Vec3, tol: f64) -> bool {
        self.planes.iter().all(|pl| pl.signed_distance(p) <= tol)
    }

    /// Largest sphere-surface excess over all planes (the max over `k` of the
    /// paper's `ρ̃_ik`); `≤ 0` means the sphere is fully inside.
    pub fn sphere_max_excess(&self, center: Vec3, radius: f64) -> f64 {
        self.planes
            .iter()
            .map(|pl| pl.sphere_excess(center, radius))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of positive sphere excesses — one sphere's contribution to the
    /// paper's `E_H^{C,r}` term (eq. 2).
    pub fn sphere_exterior_distance(&self, center: Vec3, radius: f64) -> f64 {
        self.planes
            .iter()
            .map(|pl| pl.sphere_excess(center, radius).max(0.0))
            .sum()
    }

    /// The raw `H` matrix rows `(a, b, c, d)`.
    pub fn coefficient_rows(&self) -> Vec<[f64; 4]> {
        self.planes.iter().map(Plane::coefficients).collect()
    }

    /// Removes planes duplicated within tolerance, keeping first occurrences.
    pub fn deduplicate(&mut self, eps: f64) {
        let mut kept: Vec<Plane> = Vec::with_capacity(self.planes.len());
        for p in &self.planes {
            if !kept.iter().any(|q| q.approx_eq(p, eps)) {
                kept.push(*p);
            }
        }
        self.planes = kept;
    }
}

/// A convex hull: vertices, triangular facets, and the facet planes as a
/// deduplicated [`HalfSpaceSet`].
#[derive(Debug, Clone)]
pub struct ConvexHull {
    /// Hull vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangular facets, indices into `vertices`, wound CCW from outside.
    pub faces: Vec<[usize; 3]>,
    halfspaces: HalfSpaceSet,
    aabb: Aabb,
}

impl ConvexHull {
    /// Computes the convex hull of a point set.
    ///
    /// Needs at least 4 affinely independent points. Degenerate inputs are
    /// retried with QHULL-style joggling before giving up.
    pub fn from_points(points: &[Vec3]) -> Result<ConvexHull, HullError> {
        if points.len() < 4 {
            return Err(HullError::TooFewPoints(points.len()));
        }
        for &p in points {
            if !p.is_finite() {
                return Err(HullError::Numerical);
            }
        }
        match quickhull(points) {
            Ok(h) => Ok(h),
            Err(HullError::Degenerate) | Err(HullError::Numerical) => {
                // Joggle: deterministic pseudo-random perturbation, growing
                // per attempt, as QHULL's QJ option does.
                let diag = Aabb::from_points(points).diagonal().max(1e-12);
                for attempt in 1..=3u32 {
                    let amp = diag * 1e-9 * 10f64.powi(attempt as i32);
                    let joggled: Vec<Vec3> = points
                        .iter()
                        .enumerate()
                        .map(|(i, &p)| p + hash_dir(i as u64, attempt as u64) * amp)
                        .collect();
                    if let Ok(h) = quickhull(&joggled) {
                        return Ok(h);
                    }
                }
                Err(HullError::Degenerate)
            }
            Err(e) => Err(e),
        }
    }

    /// Convex hull of a mesh's vertices (the paper's `Conv(V)` of the
    /// container mesh).
    pub fn from_mesh(mesh: &TriMesh) -> Result<ConvexHull, HullError> {
        ConvexHull::from_points(&mesh.vertices)
    }

    /// The facet planes as half-spaces (deduplicated: a box yields 6 planes,
    /// not 12 triangle planes).
    pub fn halfspaces(&self) -> &HalfSpaceSet {
        &self.halfspaces
    }

    /// Bounding box of the hull.
    pub fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// True when `p` is inside the hull within `tol`.
    pub fn contains(&self, p: Vec3, tol: f64) -> bool {
        self.halfspaces.contains(p, tol)
    }

    /// True when the whole sphere is inside within `tol`.
    pub fn contains_sphere(&self, center: Vec3, radius: f64, tol: f64) -> bool {
        self.halfspaces.sphere_max_excess(center, radius) <= tol
    }

    /// Hull volume.
    pub fn volume(&self) -> f64 {
        self.faces
            .iter()
            .map(|&[a, b, c]| {
                crate::triangle::Triangle::new(self.vertices[a], self.vertices[b], self.vertices[c])
                    .signed_volume()
            })
            .sum()
    }

    /// The hull as a closed triangle mesh.
    pub fn to_mesh(&self) -> TriMesh {
        TriMesh {
            vertices: self.vertices.clone(),
            faces: self.faces.clone(),
        }
    }
}

/// Deterministic unit-ish direction derived from indices, for joggling.
fn hash_dir(i: u64, salt: u64) -> Vec3 {
    // SplitMix64.
    let mix = |mut z: u64| {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let a = mix(i.wrapping_mul(3).wrapping_add(salt));
    let b = mix(i.wrapping_mul(3).wrapping_add(salt).wrapping_add(1));
    let c = mix(i.wrapping_mul(3).wrapping_add(salt).wrapping_add(2));
    let f = |u: u64| (u >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    Vec3::new(f(a), f(b), f(c))
}

struct Face {
    verts: [usize; 3],
    plane: Plane,
    outside: Vec<usize>,
    alive: bool,
}

fn quickhull(points: &[Vec3]) -> Result<ConvexHull, HullError> {
    let bbox = Aabb::from_points(points);
    let eps = bbox.diagonal().max(1.0) * 1e-10;

    let (i0, i1, i2, i3) = initial_simplex(points, eps)?;
    let interior = (points[i0] + points[i1] + points[i2] + points[i3]) / 4.0;

    let mut faces: Vec<Face> = Vec::new();
    let make_face = |a: usize, b: usize, c: usize| -> Result<Face, HullError> {
        let mut plane =
            Plane::from_triangle(points[a], points[b], points[c]).ok_or(HullError::Numerical)?;
        let mut verts = [a, b, c];
        if plane.signed_distance(interior) > 0.0 {
            plane = plane.flipped();
            verts = [a, c, b];
        }
        Ok(Face {
            verts,
            plane,
            outside: Vec::new(),
            alive: true,
        })
    };
    for (a, b, c) in [(i0, i1, i2), (i0, i1, i3), (i0, i2, i3), (i1, i2, i3)] {
        faces.push(make_face(a, b, c)?);
    }

    // Initial conflict assignment: each point goes to the first face it is
    // strictly outside of.
    let simplex = [i0, i1, i2, i3];
    for (pi, &p) in points.iter().enumerate() {
        if simplex.contains(&pi) {
            continue;
        }
        for f in faces.iter_mut() {
            if f.plane.signed_distance(p) > eps {
                f.outside.push(pi);
                break;
            }
        }
    }

    // Main loop: process faces with non-empty outside sets.
    while let Some(fi) = faces.iter().position(|f| f.alive && !f.outside.is_empty()) {
        // Farthest conflict point of this face becomes the new hull vertex.
        let eye = {
            let f = &faces[fi];
            *f.outside
                .iter()
                .max_by(|&&a, &&b| {
                    f.plane
                        .signed_distance(points[a])
                        .total_cmp(&f.plane.signed_distance(points[b]))
                })
                .expect("outside set is non-empty")
        };
        let eye_p = points[eye];

        // Visible set: all alive faces the eye sees.
        let visible: Vec<usize> = faces
            .iter()
            .enumerate()
            .filter(|(_, f)| f.alive && f.plane.signed_distance(eye_p) > eps)
            .map(|(i, _)| i)
            .collect();
        if visible.is_empty() {
            // Numerical disagreement between conflict list and visibility;
            // drop the point rather than looping forever.
            faces[fi].outside.retain(|&p| p != eye);
            continue;
        }

        // Horizon: directed edges of visible faces whose reverse edge is not
        // itself an edge of a visible face.
        let mut visible_edges: HashSet<(usize, usize)> = HashSet::new();
        for &vi in &visible {
            let v = faces[vi].verts;
            for k in 0..3 {
                visible_edges.insert((v[k], v[(k + 1) % 3]));
            }
        }
        let mut horizon: Vec<(usize, usize)> = Vec::new();
        for &vi in &visible {
            let v = faces[vi].verts;
            for k in 0..3 {
                let (a, b) = (v[k], v[(k + 1) % 3]);
                if !visible_edges.contains(&(b, a)) {
                    horizon.push((a, b));
                }
            }
        }
        if horizon.is_empty() {
            return Err(HullError::Numerical);
        }

        // Collect orphaned conflict points and retire visible faces.
        let mut orphans: Vec<usize> = Vec::new();
        for &vi in &visible {
            faces[vi].alive = false;
            orphans.append(&mut faces[vi].outside);
        }
        orphans.sort_unstable();
        orphans.dedup();

        // Build the new cone of faces from the horizon to the eye.
        let mut new_faces: Vec<usize> = Vec::new();
        for (a, b) in horizon {
            let Some(mut plane) = Plane::from_triangle(points[a], points[b], eye_p) else {
                // Collinear horizon edge with the eye: degenerate sliver; the
                // joggle retry path in `from_points` handles this.
                return Err(HullError::Numerical);
            };
            let mut verts = [a, b, eye];
            if plane.signed_distance(interior) > 0.0 {
                plane = plane.flipped();
                verts = [b, a, eye];
            }
            faces.push(Face {
                verts,
                plane,
                outside: Vec::new(),
                alive: true,
            });
            new_faces.push(faces.len() - 1);
        }

        // Redistribute orphans over the new faces.
        for pi in orphans {
            if pi == eye {
                continue;
            }
            let p = points[pi];
            let mut best: Option<(usize, f64)> = None;
            for &nf in &new_faces {
                let d = faces[nf].plane.signed_distance(p);
                if d > eps && best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((nf, d));
                }
            }
            if let Some((nf, _)) = best {
                faces[nf].outside.push(pi);
            }
        }
    }

    // Compact the result: reindex vertices actually used by alive faces.
    let alive: Vec<&Face> = faces.iter().filter(|f| f.alive).collect();
    if alive.len() < 4 {
        return Err(HullError::Degenerate);
    }
    let mut remap: Vec<Option<usize>> = vec![None; points.len()];
    let mut vertices: Vec<Vec3> = Vec::new();
    let mut out_faces: Vec<[usize; 3]> = Vec::with_capacity(alive.len());
    let mut planes: Vec<Plane> = Vec::with_capacity(alive.len());
    for f in &alive {
        let mut tri = [0usize; 3];
        for (slot, &vi) in tri.iter_mut().zip(f.verts.iter()) {
            *slot = *remap[vi].get_or_insert_with(|| {
                vertices.push(points[vi]);
                vertices.len() - 1
            });
        }
        out_faces.push(tri);
        planes.push(f.plane);
    }

    let bbox = Aabb::from_points(&vertices);
    let mut halfspaces = HalfSpaceSet::new(planes);
    halfspaces.deduplicate(1e-7_f64.max(eps));

    Ok(ConvexHull {
        vertices,
        faces: out_faces,
        halfspaces,
        aabb: bbox,
    })
}

/// Finds four affinely independent extreme points to seed QuickHull.
fn initial_simplex(points: &[Vec3], eps: f64) -> Result<(usize, usize, usize, usize), HullError> {
    // Most separated pair among the six axis-extreme points.
    let mut extremes = [0usize; 6];
    for (pi, p) in points.iter().enumerate() {
        for axis in 0..3 {
            if p[axis] < points[extremes[axis * 2]][axis] {
                extremes[axis * 2] = pi;
            }
            if p[axis] > points[extremes[axis * 2 + 1]][axis] {
                extremes[axis * 2 + 1] = pi;
            }
        }
    }
    let (mut i0, mut i1, mut best) = (0, 0, -1.0);
    for &a in &extremes {
        for &b in &extremes {
            let d = points[a].distance_sq(points[b]);
            if d > best {
                best = d;
                i0 = a;
                i1 = b;
            }
        }
    }
    if best.sqrt() <= eps {
        return Err(HullError::Degenerate);
    }

    // Farthest point from the line (i0, i1).
    let dir = (points[i1] - points[i0])
        .normalized()
        .ok_or(HullError::Degenerate)?;
    let (mut i2, mut best) = (usize::MAX, eps);
    for (pi, &p) in points.iter().enumerate() {
        let v = p - points[i0];
        let d = (v - dir * v.dot(dir)).norm();
        if d > best {
            best = d;
            i2 = pi;
        }
    }
    if i2 == usize::MAX {
        return Err(HullError::Degenerate);
    }

    // Farthest point from the plane (i0, i1, i2).
    let plane =
        Plane::from_triangle(points[i0], points[i1], points[i2]).ok_or(HullError::Degenerate)?;
    let (mut i3, mut best) = (usize::MAX, eps);
    for (pi, &p) in points.iter().enumerate() {
        let d = plane.signed_distance(p).abs();
        if d > best {
            best = d;
            i3 = pi;
        }
    }
    if i3 == usize::MAX {
        return Err(HullError::Degenerate);
    }
    Ok((i0, i1, i2, i3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn box_points() -> Vec<Vec3> {
        Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0))
            .corners()
            .to_vec()
    }

    #[test]
    fn too_few_points() {
        assert_eq!(
            ConvexHull::from_points(&[Vec3::ZERO, Vec3::X, Vec3::Y]).unwrap_err(),
            HullError::TooFewPoints(3)
        );
    }

    #[test]
    fn degenerate_inputs_error_or_sliver() {
        // Collinear: either rejected outright or joggled into a sliver hull
        // of negligible volume — never a panic or hang.
        let pts: Vec<Vec3> = (0..8).map(|i| Vec3::X * i as f64).collect();
        match ConvexHull::from_points(&pts) {
            Err(_) => {}
            Ok(h) => assert!(h.volume().abs() < 1e-3, "volume = {}", h.volume()),
        }
    }

    #[test]
    fn coplanar_points_error_or_joggle() {
        // Strictly coplanar grid: true hull is 2-D. Joggling may produce a
        // thin 3-D hull; either an error or a hull with tiny volume is
        // acceptable behaviour — it must not hang or panic.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(Vec3::new(i as f64, j as f64, 0.0));
            }
        }
        match ConvexHull::from_points(&pts) {
            Err(_) => {}
            Ok(h) => assert!(h.volume().abs() < 1e-3),
        }
    }

    #[test]
    fn tetrahedron_hull() {
        let pts = vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z];
        let h = ConvexHull::from_points(&pts).unwrap();
        assert_eq!(h.vertices.len(), 4);
        assert_eq!(h.faces.len(), 4);
        assert!((h.volume() - 1.0 / 6.0).abs() < 1e-12);
        assert!(h.contains(Vec3::splat(0.2), 1e-12));
        assert!(!h.contains(Vec3::splat(0.5), 1e-12));
    }

    #[test]
    fn box_hull_has_six_planes() {
        let h = ConvexHull::from_points(&box_points()).unwrap();
        assert_eq!(h.vertices.len(), 8);
        assert_eq!(h.faces.len(), 12);
        assert_eq!(
            h.halfspaces().len(),
            6,
            "coplanar triangle planes dedupe to box faces"
        );
        assert!((h.volume() - 8.0).abs() < 1e-10);
    }

    #[test]
    fn box_hull_containment_and_excess() {
        let h = ConvexHull::from_points(&box_points()).unwrap();
        assert!(h.contains(Vec3::splat(1.0), 0.0));
        assert!(!h.contains(Vec3::new(2.5, 1.0, 1.0), 1e-9));
        // Sphere of radius 0.5 at center: fully inside.
        assert!(h.contains_sphere(Vec3::splat(1.0), 0.5, 1e-9));
        // Radius 1.2 pokes out of every face by 0.2.
        let hs = h.halfspaces();
        assert!((hs.sphere_max_excess(Vec3::splat(1.0), 1.2) - 0.2).abs() < 1e-9);
        assert!((hs.sphere_exterior_distance(Vec3::splat(1.0), 1.2) - 6.0 * 0.2).abs() < 1e-9);
        assert!(hs.sphere_exterior_distance(Vec3::splat(1.0), 0.5).abs() < 1e-12);
    }

    #[test]
    fn interior_points_do_not_join_hull() {
        let mut pts = box_points();
        // Sprinkle interior points.
        for i in 1..50 {
            let t = i as f64 / 50.0;
            pts.push(Vec3::new(0.3 + t, 1.0, 1.0 - 0.5 * t));
        }
        let h = ConvexHull::from_points(&pts).unwrap();
        assert_eq!(h.vertices.len(), 8);
        assert!((h.volume() - 8.0).abs() < 1e-10);
    }

    #[test]
    fn hull_of_random_cloud_contains_all_points() {
        // Deterministic pseudo-random cloud.
        let mut pts = Vec::new();
        for i in 0..300u64 {
            let d = super::hash_dir(i, 7);
            pts.push(Vec3::new(d.x * 3.0, d.y * 2.0, d.z * 5.0));
        }
        let h = ConvexHull::from_points(&pts).unwrap();
        let tol = 1e-7;
        for &p in &pts {
            assert!(
                h.contains(p, tol),
                "point {p} outside hull by {}",
                h.halfspaces().max_signed_distance(p)
            );
        }
        // Hull mesh is closed and consistently oriented.
        let mesh = h.to_mesh();
        assert!(mesh.is_watertight());
        assert!(mesh.signed_volume() > 0.0);
        assert_eq!(mesh.euler_characteristic(), 2);
    }

    #[test]
    fn hull_of_sphere_mesh_approximates_volume() {
        let m = shapes::uv_sphere(Vec3::ZERO, 1.0, 24, 16);
        let h = ConvexHull::from_mesh(&m).unwrap();
        let v_exact = 4.0 / 3.0 * std::f64::consts::PI;
        // Inscribed polyhedron: volume below but near the sphere volume.
        assert!(h.volume() < v_exact);
        assert!(h.volume() > 0.95 * v_exact, "volume = {}", h.volume());
    }

    #[test]
    fn halfspace_set_operations() {
        let h = ConvexHull::from_points(&box_points()).unwrap();
        let mut hs = h.halfspaces().clone();
        let n = hs.len();
        // Slice off the top half with z <= 1.
        hs.push(Plane::from_point_normal(Vec3::new(0.0, 0.0, 1.0), Vec3::Z).unwrap());
        assert_eq!(hs.len(), n + 1);
        assert!(hs.contains(Vec3::new(1.0, 1.0, 0.5), 1e-12));
        assert!(!hs.contains(Vec3::new(1.0, 1.0, 1.5), 1e-12));
        // with_plane leaves the original untouched.
        let orig = h.halfspaces();
        assert!(orig.contains(Vec3::new(1.0, 1.0, 1.5), 1e-12));
    }

    #[test]
    fn coefficient_rows_match_planes() {
        let h = ConvexHull::from_points(&box_points()).unwrap();
        let rows = h.halfspaces().coefficient_rows();
        assert_eq!(rows.len(), 6);
        for row in rows {
            let n = Vec3::new(row[0], row[1], row[2]);
            assert!((n.norm() - 1.0).abs() < 1e-12, "H rows have unit normals");
            // For the box [0,2]^3, every plane is axis-aligned with d in {0, -2}.
            assert!(row[3].abs() < 1e-9 || (row[3] + 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_signed_distance_empty_set() {
        let hs = HalfSpaceSet::default();
        assert!(hs.is_empty());
        assert_eq!(hs.max_signed_distance(Vec3::ZERO), f64::NEG_INFINITY);
        assert!(hs.contains(Vec3::splat(1e12), 0.0));
    }
}
