//! Procedural container meshes.
//!
//! Generates the watertight convex triangle meshes used across the paper's
//! experiments: boxes (Figs. 1–8), cones (Figs. 9–10), spheres (zone shapes),
//! cylinders, and the §VI-B blast-furnace vessel as a stack of conical
//! frustums (32 m tall, 6.5 m max diameter).

use crate::mesh::TriMesh;
use crate::vec3::Vec3;

/// Axis-aligned box mesh centred at `center` with edge lengths `size`.
pub fn box_mesh(center: Vec3, size: Vec3) -> TriMesh {
    assert!(
        size.x > 0.0 && size.y > 0.0 && size.z > 0.0,
        "box size must be positive, got {size}"
    );
    let h = size * 0.5;
    let v = |sx: f64, sy: f64, sz: f64| center + Vec3::new(sx * h.x, sy * h.y, sz * h.z);
    let vertices = vec![
        v(-1.0, -1.0, -1.0), // 0
        v(1.0, -1.0, -1.0),  // 1
        v(1.0, 1.0, -1.0),   // 2
        v(-1.0, 1.0, -1.0),  // 3
        v(-1.0, -1.0, 1.0),  // 4
        v(1.0, -1.0, 1.0),   // 5
        v(1.0, 1.0, 1.0),    // 6
        v(-1.0, 1.0, 1.0),   // 7
    ];
    // Outward-wound (CCW from outside) quads, split into triangles.
    let faces = vec![
        [0, 2, 1],
        [0, 3, 2], // bottom (-z)
        [4, 5, 6],
        [4, 6, 7], // top (+z)
        [0, 1, 5],
        [0, 5, 4], // -y
        [2, 3, 7],
        [2, 7, 6], // +y
        [1, 2, 6],
        [1, 6, 5], // +x
        [3, 0, 4],
        [3, 4, 7], // -x
    ];
    TriMesh { vertices, faces }
}

/// The paper's tall scaling container (§V-C): square base `base × base`,
/// height `height`, with the base at `z = 0`.
pub fn tall_box(base: f64, height: f64) -> TriMesh {
    box_mesh(
        Vec3::new(0.0, 0.0, height / 2.0),
        Vec3::new(base, base, height),
    )
}

/// UV sphere mesh (poles along +z/-z).
///
/// `segments` ≥ 3 around the equator, `rings` ≥ 2 from pole to pole.
pub fn uv_sphere(center: Vec3, radius: f64, segments: usize, rings: usize) -> TriMesh {
    assert!(radius > 0.0, "sphere radius must be positive");
    assert!(
        segments >= 3 && rings >= 2,
        "need >= 3 segments and >= 2 rings"
    );
    let mut vertices = Vec::with_capacity(segments * (rings - 1) + 2);
    vertices.push(center + Vec3::Z * radius); // north pole: 0
    for ri in 1..rings {
        let phi = std::f64::consts::PI * ri as f64 / rings as f64;
        let (sp, cp) = phi.sin_cos();
        for si in 0..segments {
            let theta = 2.0 * std::f64::consts::PI * si as f64 / segments as f64;
            let (st, ct) = theta.sin_cos();
            vertices.push(center + Vec3::new(radius * sp * ct, radius * sp * st, radius * cp));
        }
    }
    vertices.push(center - Vec3::Z * radius); // south pole: last
    let south = vertices.len() - 1;

    let ring_start = |ri: usize| 1 + (ri - 1) * segments; // ri in 1..rings
    let mut faces = Vec::new();
    // North cap.
    for si in 0..segments {
        let a = ring_start(1) + si;
        let b = ring_start(1) + (si + 1) % segments;
        faces.push([0, a, b]);
    }
    // Belts.
    for ri in 1..(rings - 1) {
        for si in 0..segments {
            let a = ring_start(ri) + si;
            let b = ring_start(ri) + (si + 1) % segments;
            let c = ring_start(ri + 1) + si;
            let d = ring_start(ri + 1) + (si + 1) % segments;
            faces.push([a, c, d]);
            faces.push([a, d, b]);
        }
    }
    // South cap.
    for si in 0..segments {
        let a = ring_start(rings - 1) + si;
        let b = ring_start(rings - 1) + (si + 1) % segments;
        faces.push([a, south, b]);
    }
    TriMesh { vertices, faces }
}

/// Icosphere mesh: a subdivided icosahedron projected onto the sphere.
///
/// Unlike [`uv_sphere`], triangles are nearly uniform in size and shape —
/// preferable for zone shapes whose hull planes should sample the sphere
/// evenly. `subdivisions = 0` gives the raw icosahedron (20 faces); each
/// level quadruples the face count.
pub fn icosphere(center: Vec3, radius: f64, subdivisions: u32) -> TriMesh {
    assert!(radius > 0.0, "sphere radius must be positive");
    assert!(
        subdivisions <= 7,
        "more than 7 subdivisions is > 1.3M faces"
    );
    // Icosahedron from three orthogonal golden rectangles.
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    let verts = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ];
    let mut mesh = TriMesh {
        vertices: verts
            .iter()
            .map(|&(x, y, z)| Vec3::new(x, y, z).normalized().expect("nonzero") * radius)
            .collect(),
        faces: vec![
            [0, 11, 5],
            [0, 5, 1],
            [0, 1, 7],
            [0, 7, 10],
            [0, 10, 11],
            [1, 5, 9],
            [5, 11, 4],
            [11, 10, 2],
            [10, 7, 6],
            [7, 1, 8],
            [3, 9, 4],
            [3, 4, 2],
            [3, 2, 6],
            [3, 6, 8],
            [3, 8, 9],
            [4, 9, 5],
            [2, 4, 11],
            [6, 2, 10],
            [8, 6, 7],
            [9, 8, 1],
        ],
    };
    for _ in 0..subdivisions {
        mesh = subdivide_midpoint(&mesh);
        // Reproject onto the sphere.
        for v in &mut mesh.vertices {
            *v = v.normalized().expect("nonzero") * radius;
        }
    }
    mesh.translate(center);
    mesh
}

/// Midpoint (1→4) subdivision of a triangle mesh, welding the edge
/// midpoints so the result stays watertight for watertight input.
pub fn subdivide_midpoint(mesh: &TriMesh) -> TriMesh {
    use std::collections::HashMap;
    let mut vertices = mesh.vertices.clone();
    let mut midpoint_of: HashMap<(usize, usize), usize> = HashMap::new();
    let mut midpoint = |a: usize, b: usize, vertices: &mut Vec<Vec3>| -> usize {
        let key = (a.min(b), a.max(b));
        *midpoint_of.entry(key).or_insert_with(|| {
            vertices.push((vertices[a] + vertices[b]) * 0.5);
            vertices.len() - 1
        })
    };
    let mut faces = Vec::with_capacity(mesh.faces.len() * 4);
    for &[a, b, c] in &mesh.faces {
        let ab = midpoint(a, b, &mut vertices);
        let bc = midpoint(b, c, &mut vertices);
        let ca = midpoint(c, a, &mut vertices);
        faces.push([a, ab, ca]);
        faces.push([ab, b, bc]);
        faces.push([ca, bc, c]);
        faces.push([ab, bc, ca]);
    }
    TriMesh { vertices, faces }
}

/// A vertical profile of radii at given heights, lathed into a closed solid
/// of revolution around the z axis (a stack of conical frustums).
///
/// `profile` is a list of `(z, radius)` pairs with strictly increasing `z`
/// and positive radii (the first/last radius may be 0 for apexes).
pub fn lathe(profile: &[(f64, f64)], segments: usize) -> TriMesh {
    assert!(
        profile.len() >= 2,
        "lathe needs at least two profile points"
    );
    assert!(segments >= 3, "lathe needs >= 3 segments");
    for w in profile.windows(2) {
        assert!(
            w[1].0 > w[0].0,
            "lathe profile z must be strictly increasing"
        );
    }
    for (i, &(_, r)) in profile.iter().enumerate() {
        let interior = i > 0 && i + 1 < profile.len();
        assert!(
            r > 0.0 || !interior,
            "only the first/last profile radius may be zero"
        );
        assert!(r >= 0.0, "lathe radii must be non-negative");
    }

    let mut vertices: Vec<Vec3> = Vec::new();
    // ring_index[i] = Some(start) if profile point i has a full ring,
    // or None if it is an apex (radius 0) represented by a single vertex.
    let mut ring_index: Vec<Result<usize, usize>> = Vec::new(); // Ok(ring start) | Err(apex vertex)
    for &(z, r) in profile {
        if r == 0.0 {
            vertices.push(Vec3::new(0.0, 0.0, z));
            ring_index.push(Err(vertices.len() - 1));
        } else {
            let start = vertices.len();
            for si in 0..segments {
                let theta = 2.0 * std::f64::consts::PI * si as f64 / segments as f64;
                let (st, ct) = theta.sin_cos();
                vertices.push(Vec3::new(r * ct, r * st, z));
            }
            ring_index.push(Ok(start));
        }
    }

    let mut faces: Vec<[usize; 3]> = Vec::new();
    // Side walls between consecutive profile points.
    for w in 0..(profile.len() - 1) {
        match (ring_index[w], ring_index[w + 1]) {
            (Ok(lo), Ok(hi)) => {
                for si in 0..segments {
                    let sj = (si + 1) % segments;
                    let (a, b) = (lo + si, lo + sj);
                    let (c, d) = (hi + si, hi + sj);
                    faces.push([a, b, d]);
                    faces.push([a, d, c]);
                }
            }
            (Err(apex), Ok(hi)) => {
                // Bottom apex: cone opening upward.
                for si in 0..segments {
                    let sj = (si + 1) % segments;
                    faces.push([apex, hi + sj, hi + si]);
                }
            }
            (Ok(lo), Err(apex)) => {
                // Top apex: cone closing upward.
                for si in 0..segments {
                    let sj = (si + 1) % segments;
                    faces.push([lo + si, lo + sj, apex]);
                }
            }
            (Err(_), Err(_)) => panic!("two consecutive zero radii in lathe profile"),
        }
    }
    // Bottom cap (if the lowest point is a ring).
    if let Ok(lo) = ring_index[0] {
        let z = profile[0].0;
        vertices.push(Vec3::new(0.0, 0.0, z));
        let c = vertices.len() - 1;
        for si in 0..segments {
            let sj = (si + 1) % segments;
            faces.push([c, lo + sj, lo + si]);
        }
    }
    // Top cap.
    if let Ok(hi) = ring_index[profile.len() - 1] {
        let z = profile[profile.len() - 1].0;
        vertices.push(Vec3::new(0.0, 0.0, z));
        let c = vertices.len() - 1;
        for si in 0..segments {
            let sj = (si + 1) % segments;
            faces.push([c, hi + si, hi + sj]);
        }
    }
    TriMesh { vertices, faces }
}

/// Closed cylinder of the given radius/height, base at `z = 0`.
pub fn cylinder(radius: f64, height: f64, segments: usize) -> TriMesh {
    assert!(radius > 0.0 && height > 0.0);
    lathe(&[(0.0, radius), (height, radius)], segments)
}

/// Cone with base radius `radius` at `z = 0` and apex at `z = height`
/// (the Figs. 9–10 container, apex up; pass `apex_up = false` to flip).
pub fn cone(radius: f64, height: f64, segments: usize, apex_up: bool) -> TriMesh {
    assert!(radius > 0.0 && height > 0.0);
    if apex_up {
        lathe(&[(0.0, radius), (height, 0.0)], segments)
    } else {
        lathe(&[(0.0, 0.0), (height, radius)], segments)
    }
}

/// Conical frustum, radius `r_bottom` at `z = 0` to `r_top` at `z = height`.
pub fn frustum(r_bottom: f64, r_top: f64, height: f64, segments: usize) -> TriMesh {
    assert!(r_bottom > 0.0 && r_top > 0.0 && height > 0.0);
    lathe(&[(0.0, r_bottom), (height, r_top)], segments)
}

/// The §VI-B Midrex blast-furnace vessel, procedurally generated.
///
/// The paper's industrial STL is proprietary; this convex stand-in matches
/// the published dimensions — total height 32 m, maximum diameter 6.5 m —
/// with a classic furnace profile: narrow hearth, widening bosh, cylindrical
/// belly at the maximum diameter around mid-height (where the gas inlets
/// sit), and a long converging shaft to a narrower throat. The hull
/// approximation step makes any profile convex anyway (the algorithm only
/// ever sees `Conv(V)`), so the substitution preserves the packing behaviour.
///
/// `scale = 1.0` gives paper dimensions (metres); smaller scales produce
/// laptop-sized replicas of identical shape.
pub fn blast_furnace(scale: f64, segments: usize) -> TriMesh {
    assert!(scale > 0.0);
    let s = scale;
    // (z, radius) profile; max radius 3.25 (6.5 m diameter) at mid-height.
    let profile = [
        (0.0 * s, 1.60 * s),  // hearth floor
        (4.0 * s, 2.20 * s),  // bosh widening
        (12.0 * s, 3.25 * s), // belly start (gas inlets ~ mid-height)
        (20.0 * s, 3.25 * s), // belly end
        (29.0 * s, 2.20 * s), // shaft converging
        (32.0 * s, 1.80 * s), // throat
    ];
    lathe(&profile, segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::ConvexHull;
    use std::f64::consts::PI;

    #[test]
    fn box_is_watertight_with_correct_volume() {
        let m = box_mesh(Vec3::new(0.5, 0.0, -1.0), Vec3::new(1.0, 2.0, 3.0));
        assert!(m.is_watertight());
        assert!((m.signed_volume() - 6.0).abs() < 1e-12);
        assert_eq!(m.euler_characteristic(), 2);
    }

    #[test]
    #[should_panic(expected = "box size must be positive")]
    fn box_rejects_nonpositive_size() {
        let _ = box_mesh(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0));
    }

    #[test]
    fn tall_box_base_at_zero() {
        let m = tall_box(2.0, 10.0);
        let bb = m.aabb();
        assert!((bb.min.z).abs() < 1e-12);
        assert!((bb.max.z - 10.0).abs() < 1e-12);
        assert!((bb.extent().x - 2.0).abs() < 1e-12);
        assert!(m.is_watertight());
    }

    #[test]
    fn uv_sphere_watertight_volume_converges() {
        let m = uv_sphere(Vec3::ZERO, 2.0, 32, 16);
        assert!(m.is_watertight());
        assert_eq!(m.euler_characteristic(), 2);
        let v = m.signed_volume();
        let exact = 4.0 / 3.0 * PI * 8.0;
        assert!(v > 0.0 && v < exact);
        assert!((v - exact).abs() / exact < 0.02, "v = {v}, exact = {exact}");
        // Finer mesh converges closer.
        let v2 = uv_sphere(Vec3::ZERO, 2.0, 64, 32).signed_volume();
        assert!((v2 - exact).abs() < (v - exact).abs());
    }

    #[test]
    fn icosphere_watertight_volume_converges() {
        let exact = 4.0 / 3.0 * PI;
        let mut prev_err = f64::INFINITY;
        for sub in 0..4 {
            let m = icosphere(Vec3::ZERO, 1.0, sub);
            assert!(m.is_watertight(), "subdivision {sub}");
            assert_eq!(m.euler_characteristic(), 2);
            assert_eq!(m.face_count(), 20 * 4usize.pow(sub));
            let v = m.signed_volume();
            let err = (v - exact).abs();
            assert!(v > 0.0 && v < exact, "inscribed: v = {v}");
            assert!(err < prev_err, "volume must converge monotonically");
            prev_err = err;
        }
        // Level 3 (1280 faces): within 1 % of the true sphere.
        assert!(prev_err / exact < 1e-2, "err = {prev_err}");
    }

    #[test]
    fn icosphere_centering() {
        let c = Vec3::new(2.0, -1.0, 0.5);
        let m = icosphere(c, 0.5, 2);
        let centroid = m.volume_centroid().unwrap();
        assert!((centroid - c).norm() < 1e-9);
        for v in &m.vertices {
            assert!(
                (v.distance(c) - 0.5).abs() < 1e-12,
                "all vertices on the sphere"
            );
        }
    }

    #[test]
    fn subdivision_preserves_watertightness_and_area_limit() {
        let m = box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        let s = subdivide_midpoint(&m);
        assert!(s.is_watertight());
        assert_eq!(s.face_count(), m.face_count() * 4);
        // Flat surfaces: area and volume unchanged by midpoint subdivision.
        assert!((s.surface_area() - m.surface_area()).abs() < 1e-9);
        assert!((s.signed_volume() - m.signed_volume()).abs() < 1e-9);
    }

    #[test]
    fn cylinder_volume_and_watertightness() {
        let m = cylinder(1.0, 2.0, 64);
        assert!(m.is_watertight());
        let v = m.signed_volume();
        let exact = PI * 2.0;
        assert!((v - exact).abs() / exact < 0.01, "v = {v}");
    }

    #[test]
    fn cone_volume_both_orientations() {
        let exact = PI / 3.0; // r = 1, h = 1
        for apex_up in [true, false] {
            let m = cone(1.0, 1.0, 64, apex_up);
            assert!(m.is_watertight(), "apex_up = {apex_up}");
            let v = m.signed_volume();
            assert!(
                (v - exact).abs() / exact < 0.01,
                "v = {v} (apex_up = {apex_up})"
            );
        }
    }

    #[test]
    fn frustum_volume() {
        let m = frustum(2.0, 1.0, 3.0, 96);
        assert!(m.is_watertight());
        let exact = PI * 3.0 / 3.0 * (4.0 + 2.0 + 1.0); // πh/3 (R² + Rr + r²)
        let v = m.signed_volume();
        assert!((v - exact).abs() / exact < 0.01, "v = {v}, exact = {exact}");
    }

    #[test]
    fn lathe_validates_profiles() {
        let ok = lathe(&[(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)], 16);
        assert!(ok.is_watertight());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn lathe_rejects_nonmonotone_profile() {
        let _ = lathe(&[(0.0, 1.0), (0.0, 2.0)], 16);
    }

    #[test]
    #[should_panic(expected = "may be zero")]
    fn lathe_rejects_interior_zero_radius() {
        let _ = lathe(&[(0.0, 1.0), (1.0, 0.0), (2.0, 1.0)], 16);
    }

    #[test]
    fn blast_furnace_dimensions() {
        let m = blast_furnace(1.0, 48);
        assert!(m.is_watertight());
        let bb = m.aabb();
        assert!((bb.extent().z - 32.0).abs() < 1e-9, "32 m tall");
        assert!((bb.extent().x - 6.5).abs() < 0.02, "6.5 m max diameter");
        // Scaled replica keeps proportions.
        let small = blast_furnace(0.1, 48);
        let sb = small.aabb();
        assert!((sb.extent().z - 3.2).abs() < 1e-9);
    }

    #[test]
    fn shapes_yield_valid_hulls() {
        for m in [
            box_mesh(Vec3::ZERO, Vec3::splat(2.0)),
            cylinder(1.0, 2.0, 24),
            cone(1.0, 2.0, 24, true),
            blast_furnace(0.05, 24),
            uv_sphere(Vec3::ZERO, 1.0, 16, 8),
        ] {
            let h = ConvexHull::from_mesh(&m).unwrap();
            // All mesh vertices inside the hull.
            for &v in &m.vertices {
                assert!(h.contains(v, 1e-7));
            }
            // Convex shapes: hull volume ≈ mesh volume.
            let (vm, vh) = (m.signed_volume(), h.volume());
            assert!((vm - vh).abs() / vm < 1e-6, "mesh {vm} vs hull {vh}");
        }
    }
}
