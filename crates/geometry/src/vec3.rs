//! Double-precision 3-vectors and 3×3 matrices.
//!
//! The packing kernels are written against plain `f64` structure-of-array
//! buffers for vectorization, but all scalar geometry (hull construction,
//! mesh generation, plane math) uses [`Vec3`].

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A vector (or point) in ℝ³.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Returns the unit vector in the same direction.
    ///
    /// Returns `None` when the norm is not strictly positive (zero vector or
    /// non-finite input), instead of producing NaNs.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Returns true when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Returns any unit vector orthogonal to `self` (which must be nonzero).
    ///
    /// Uses the component of smallest magnitude to avoid degeneracy.
    pub fn any_orthonormal(self) -> Vec3 {
        let a = self.abs();
        let basis = if a.x <= a.y && a.x <= a.z {
            Vec3::X
        } else if a.y <= a.z {
            Vec3::Y
        } else {
            Vec3::Z
        };
        self.cross(basis)
            .normalized()
            .expect("any_orthonormal requires a nonzero vector")
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A row-major 3×3 matrix; used for rotations when orienting gravity axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [Vec3; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [Vec3::X, Vec3::Y, Vec3::Z],
    };

    /// Builds a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Builds a matrix from columns.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(c0.x, c1.x, c2.x),
            Vec3::new(c0.y, c1.y, c2.y),
            Vec3::new(c0.z, c1.z, c2.z),
        )
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_cols(self.rows[0], self.rows[1], self.rows[2])
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.rows[0].dot(self.rows[1].cross(self.rows[2]))
    }

    /// Rotation matrix mapping unit vector `from` onto unit vector `to`.
    ///
    /// Uses the Rodrigues construction; handles the antiparallel case by
    /// rotating π around an arbitrary orthogonal axis.
    pub fn rotation_between(from: Vec3, to: Vec3) -> Mat3 {
        let f = from.normalized().expect("rotation_between: zero `from`");
        let t = to.normalized().expect("rotation_between: zero `to`");
        let c = f.dot(t);
        if c > 1.0 - 1e-12 {
            return Mat3::IDENTITY;
        }
        if c < -1.0 + 1e-12 {
            // 180° turn around any axis orthogonal to f.
            let axis = f.any_orthonormal();
            return Mat3::rotation_axis_angle(axis, std::f64::consts::PI);
        }
        let axis = f.cross(t).normalized().expect("nondegenerate cross");
        Mat3::rotation_axis_angle(axis, c.clamp(-1.0, 1.0).acos())
    }

    /// Rotation by `angle` radians around the given unit `axis`.
    pub fn rotation_axis_angle(axis: Vec3, angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        let (x, y, z) = (axis.x, axis.y, axis.z);
        Mat3::from_rows(
            Vec3::new(t * x * x + c, t * x * y - s * z, t * x * z + s * y),
            Vec3::new(t * x * y + s * z, t * y * y + c, t * y * z - s * x),
            Vec3::new(t * x * z - s * y, t * y * z + s * x, t * z * z + c),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert!((a.dot(b) - (4.0 - 10.0 + 18.0)).abs() < EPS);
        let c = Vec3::X.cross(Vec3::Y);
        assert!((c - Vec3::Z).norm() < EPS);
        // Cross product is orthogonal to both inputs.
        let x = a.cross(b);
        assert!(x.dot(a).abs() < EPS && x.dot(b).abs() < EPS);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.norm() - 13.0).abs() < EPS);
        assert!((v.norm_sq() - 169.0).abs() < EPS);
        assert!((Vec3::ZERO.distance(v) - 13.0).abs() < EPS);
        assert!((Vec3::ZERO.distance_sq(v) - 169.0).abs() < EPS);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < EPS);
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::new(f64::NAN, 0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -6.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -3.0));
        assert_eq!(a.hadamard(b), Vec3::new(2.0, 20.0, 18.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn any_orthonormal_is_orthogonal_unit() {
        for v in [
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-5.0, 0.1, 0.0),
        ] {
            let o = v.any_orthonormal();
            assert!(o.dot(v).abs() < 1e-10);
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mat3_identity_and_det() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec(v), v);
        assert!((Mat3::IDENTITY.det() - 1.0).abs() < EPS);
    }

    #[test]
    fn mat3_rotation_between_maps_vectors() {
        let cases = [
            (Vec3::X, Vec3::Y),
            (Vec3::Z, Vec3::new(1.0, 1.0, 1.0)),
            (Vec3::Y, -Vec3::Y), // antiparallel
            (Vec3::new(0.3, -0.4, 0.5), Vec3::new(-1.0, 2.0, 0.25)),
        ];
        for (from, to) in cases {
            let r = Mat3::rotation_between(from, to);
            let mapped = r.mul_vec(from.normalized().unwrap());
            let expect = to.normalized().unwrap();
            assert!(
                (mapped - expect).norm() < 1e-10,
                "from {from} to {to}: got {mapped}, want {expect}"
            );
            // Proper rotation: determinant +1.
            assert!((r.det() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn mat3_transpose_inverts_rotation() {
        let r = Mat3::rotation_axis_angle(Vec3::new(1.0, 1.0, 0.0).normalized().unwrap(), 0.7);
        let v = Vec3::new(0.2, -0.9, 1.4);
        let back = r.transpose().mul_vec(r.mul_vec(v));
        assert!((back - v).norm() < 1e-12);
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
