//! # adampack-cli
//!
//! The application layer of the paper's §VI-A: a command-line tool that
//! reads a YAML packing configuration (container STL, algorithm, particle
//! sets, zones), runs the selected packing algorithm, reports quality
//! metrics, and writes the particles in CSV / VTK / XYZ.
//!
//! ```text
//! adampack pack config.yaml --out packing.vtk
//! adampack info config.yaml
//! adampack shapes --list
//! ```
//!
//! The library half of the crate holds the driver so it is unit-testable;
//! `main.rs` is a thin argument-parsing shell.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::path::{Path, PathBuf};

use adampack_config::{BatchConfig, ConfigError, ConsoleLevel, LocationConfig, PackingConfig};
use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_core::report::QualityReport;
use adampack_geometry::ConvexHull;
use adampack_telemetry::{info, timeline, warn, JsonlWriter};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Configuration loading/validation failure.
    Config(ConfigError),
    /// Geometry failure (hull construction, container sanity, …).
    Geometry(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Bad command-line usage.
    Usage(String),
    /// The packing run itself failed (divergence budget exhausted, resume
    /// state mismatch).
    Pack(PackError),
    /// Checkpoint files exist but none could be loaded.
    Checkpoint(String),
    /// The job server failed to start or run (`adampack serve`).
    Server(String),
}

impl CliError {
    /// Stable process exit code for scripts: each failure class gets its
    /// own value (success is 0).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Config(_) => 3,
            CliError::Geometry(_) => 4,
            CliError::Io(_) => 5,
            CliError::Pack(PackError::Diverged { .. }) => 6,
            CliError::Pack(PackError::Resume(_)) | CliError::Checkpoint(_) => 7,
            CliError::Pack(PackError::HorizonBreach { .. }) => 8,
            CliError::Server(_) => 9,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Geometry(m) => write!(f, "geometry error: {m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Pack(e) => write!(f, "{e}"),
            CliError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            CliError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<PackError> for CliError {
    fn from(e: PackError) -> Self {
        CliError::Pack(e)
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// A packing run's summary, printed by the CLI and returned for tests.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Particles packed.
    pub packed: usize,
    /// Core density in the shrunken inner box.
    pub core_density: f64,
    /// Mean contact overlap relative to radius.
    pub mean_overlap_ratio: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Output file written, if any.
    pub output: Option<PathBuf>,
}

fn load_zone_hull(p: &Path) -> Result<ConvexHull, ConfigError> {
    let mesh = adampack_io::read_stl_file(p).map_err(|e| ConfigError::Field(e.to_string()))?;
    ConvexHull::from_mesh(&mesh).map_err(|e| ConfigError::Field(e.to_string()))
}

/// Loads and sanity-checks the container mesh, naming the file and the
/// offending facet on failure. Non-convexity is only a warning — the
/// pipeline packs into the convex hull by design — but a sliver facet, an
/// open edge or inverted winding means the file does not describe the
/// container the user thinks it does, so those are hard errors.
fn load_container_mesh(path: &Path) -> Result<adampack_geometry::TriMesh, CliError> {
    let mesh = adampack_io::read_stl_path(path).map_err(|e| CliError::Geometry(e.to_string()))?;
    match adampack_geometry::container_sanity(&mesh, 1e-6) {
        Ok(()) => {}
        Err(adampack_geometry::SanityError::NotConvex {
            mesh_volume,
            hull_volume,
        }) => warn!(
            "container {}: mesh is not convex (volume {mesh_volume:.6e} vs hull \
             {hull_volume:.6e}); packing into its convex hull",
            path.display()
        ),
        Err(e) => {
            return Err(CliError::Geometry(format!("{}: {e}", path.display())));
        }
    }
    Ok(mesh)
}

/// Command-line overrides layered over the configuration's `telemetry:`
/// block (a CLI flag always wins over the YAML value).
#[derive(Debug, Clone, Default)]
pub struct PackOptions {
    /// Particle output file (`--out`, by extension).
    pub out: Option<PathBuf>,
    /// JSONL per-step trace file (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// Prometheus-style metrics snapshot file (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Console log level (`--log-level`).
    pub log_level: Option<ConsoleLevel>,
    /// Worker threads for the parallel phases (`--threads`); 0 defers to
    /// the configuration's `params.threads` (itself 0 = one per hardware
    /// thread). Purely a performance knob: results are bitwise identical
    /// for any value.
    pub threads: usize,
    /// Arithmetic kernel override (`--kernel scalar|simd|simd_mixed`);
    /// `None` defers to the configuration's `params.kernel` (default
    /// `simd`). `scalar` and `simd` produce bitwise identical packings;
    /// `simd_mixed` trades exactness for f32 rejection bandwidth within a
    /// documented relative budget.
    pub kernel: Option<Kernel>,
    /// Gravity-axis tiling override (`--tiles`); `None` defers to the
    /// configuration's `params.tiles` (default 1 = monolithic). Purely a
    /// memory knob: tiled packings are bitwise identical to untiled ones.
    pub tiles: Option<usize>,
    /// Checkpoint file (`--checkpoint`); overrides `checkpoint.path`.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in optimizer steps (`--checkpoint-every`);
    /// overrides `checkpoint.every_steps`.
    pub checkpoint_every: Option<usize>,
    /// Checkpoint files retained (`--checkpoint-keep`); overrides
    /// `checkpoint.keep_last`.
    pub checkpoint_keep: Option<usize>,
    /// Resume from the newest readable checkpoint (`--resume`). Starts
    /// fresh (with a warning) when no checkpoint file exists yet; fails
    /// when checkpoints exist but all are corrupt.
    pub resume: bool,
    /// Sweep-axis override: RNG seeds (`--batch-seeds`). Any `--batch-*`
    /// flag switches the run into the batched multi-system engine, layered
    /// over the configuration's `batch:` block.
    pub batch_seeds: Option<Vec<u64>>,
    /// Sweep-axis override: initial learning rates (`--batch-lrs`).
    pub batch_lrs: Option<Vec<f64>>,
    /// Sweep-axis override: PSD radius multipliers (`--batch-scales`).
    pub batch_scales: Option<Vec<f64>>,
    /// Chrome-trace timeline output (`--trace-timeline`); overrides the
    /// configuration's `telemetry.timeline_out`. Enables the hierarchical
    /// span timeline for the run (off by default — the tracer costs one
    /// atomic load per span when disabled).
    pub trace_timeline: Option<PathBuf>,
    /// Convergence-diagnostics mode (`--diagnostics off|summary|events`);
    /// `None` defers to the configuration's `telemetry.diagnostics`.
    pub diagnostics: Option<DiagMode>,
}

/// The resolved checkpoint settings (CLI flags layered over the YAML
/// `checkpoint:` block).
#[derive(Debug, Clone)]
struct CheckpointSettings {
    path: PathBuf,
    every_steps: usize,
    keep_last: usize,
}

fn resolve_checkpoint(cfg: &PackingConfig, opts: &PackOptions) -> Option<CheckpointSettings> {
    use adampack_config::CheckpointConfig;
    let path = opts
        .checkpoint
        .clone()
        .or_else(|| cfg.checkpoint.as_ref().map(|c| c.path.clone()))?;
    Some(CheckpointSettings {
        path,
        every_steps: opts
            .checkpoint_every
            .or_else(|| cfg.checkpoint.as_ref().map(|c| c.every_steps))
            .unwrap_or(CheckpointConfig::DEFAULT_EVERY_STEPS),
        keep_last: opts
            .checkpoint_keep
            .or_else(|| cfg.checkpoint.as_ref().map(|c| c.keep_last))
            .unwrap_or(CheckpointConfig::DEFAULT_KEEP_LAST),
    })
}

/// Bridges the core packer's checkpoint cadence to the rotating atomic
/// file writer in `adampack-io`.
struct FileCheckpointSink {
    writer: adampack_io::RotatingCheckpointWriter,
}

impl CheckpointSink for FileCheckpointSink {
    fn save(&mut self, state: &RunState) -> Result<(), String> {
        let bytes = adampack_core::checkpoint::encode(state);
        self.writer.save(&bytes).map_err(|e| e.to_string())
    }
}

/// Loads the newest readable checkpoint from the rotation chain.
///
/// `Ok(None)` means no checkpoint file exists yet (fresh start); an error
/// means files exist but every candidate was rejected (corrupt state is
/// never silently discarded).
fn load_latest_checkpoint(
    path: &Path,
    keep_last: usize,
) -> Result<Option<(PathBuf, RunState)>, CliError> {
    let candidates = adampack_io::checkpoint_candidates(path, keep_last);
    if candidates.is_empty() {
        return Ok(None);
    }
    for cand in &candidates {
        match std::fs::read(cand) {
            Err(e) => warn!("checkpoint {} unreadable: {e}", cand.display()),
            Ok(bytes) => match adampack_core::checkpoint::decode(&bytes) {
                Ok(state) => return Ok(Some((cand.clone(), state))),
                Err(e) => warn!("checkpoint {} rejected: {e}", cand.display()),
            },
        }
    }
    Err(CliError::Checkpoint(format!(
        "all {} checkpoint file(s) at {} are corrupt",
        candidates.len(),
        path.display()
    )))
}

/// Bridges the batched engine's checkpoint cadence to the same rotating
/// atomic file writer, with the batched container format.
struct BatchedFileSink {
    writer: adampack_io::RotatingCheckpointWriter,
}

impl BatchedCheckpointSink for BatchedFileSink {
    fn save(&mut self, state: &BatchedRunState) -> Result<(), String> {
        let bytes = adampack_core::checkpoint::encode_batched(state);
        self.writer.save(&bytes).map_err(|e| e.to_string())
    }
}

/// [`load_latest_checkpoint`] for the batched container format.
fn load_latest_batched_checkpoint(
    path: &Path,
    keep_last: usize,
) -> Result<Option<(PathBuf, BatchedRunState)>, CliError> {
    let candidates = adampack_io::checkpoint_candidates(path, keep_last);
    if candidates.is_empty() {
        return Ok(None);
    }
    for cand in &candidates {
        match std::fs::read(cand) {
            Err(e) => warn!("checkpoint {} unreadable: {e}", cand.display()),
            Ok(bytes) => match adampack_core::checkpoint::decode_batched(&bytes) {
                Ok(state) => return Ok(Some((cand.clone(), state))),
                Err(e) => warn!("checkpoint {} rejected: {e}", cand.display()),
            },
        }
    }
    Err(CliError::Checkpoint(format!(
        "all {} checkpoint file(s) at {} are corrupt",
        candidates.len(),
        path.display()
    )))
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The checkpoint fingerprint salt for the run context: the knobs that
/// live outside `PackingParams` (thread count, kernel override, sweep
/// grid) but would make a resumed run diverge from — or mean something
/// different than — the run that wrote the checkpoint. Mixed into every
/// system's params fingerprint so a resume under a different context is
/// rejected with exit 7 instead of silently diverging.
fn context_salt(threads: usize, kernel: Kernel, batch: Option<&BatchConfig>) -> u64 {
    let desc = batch.map_or_else(|| "none".to_string(), BatchConfig::descriptor);
    fnv1a(&format!(
        "threads={threads}|kernel={}|batch={desc}",
        kernel.name()
    ))
}

/// The effective sweep grid: `--batch-*` flags layered over the YAML
/// `batch:` block, axis by axis. `None` means a plain single-system run.
fn effective_batch(cfg: &PackingConfig, opts: &PackOptions) -> Option<BatchConfig> {
    if opts.batch_seeds.is_none() && opts.batch_lrs.is_none() && opts.batch_scales.is_none() {
        return cfg.batch.clone();
    }
    let base = cfg.batch.clone().unwrap_or_default();
    Some(BatchConfig {
        seeds: opts.batch_seeds.clone().unwrap_or(base.seeds),
        lrs: opts.batch_lrs.clone().unwrap_or(base.lrs),
        radius_scales: opts.batch_scales.clone().unwrap_or(base.radius_scales),
    })
}

/// `out.vtk` + label `s7_lr0.01` → `out.s7_lr0.01.vtk` (per-system output
/// files of a batched sweep).
fn labeled_output_path(path: &Path, label: &str) -> PathBuf {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("packing");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) if !ext.is_empty() => format!("{stem}.{label}.{ext}"),
        _ => format!("{stem}.{label}"),
    };
    path.with_file_name(name)
}

/// Runs a packing described by a configuration file and optionally writes
/// the particles (`.csv`, `.vtk` or `.xyz`, by extension).
pub fn run_pack(config_path: &Path, out: Option<&Path>) -> Result<RunSummary, CliError> {
    run_pack_opts(
        config_path,
        &PackOptions {
            out: out.map(Path::to_path_buf),
            ..PackOptions::default()
        },
    )
}

/// [`run_pack`] with explicit telemetry overrides.
pub fn run_pack_opts(config_path: &Path, opts: &PackOptions) -> Result<RunSummary, CliError> {
    let cfg = PackingConfig::from_file(config_path)?;

    // Observability wiring: flags override YAML, YAML overrides the
    // verbosity-derived default.
    let level = opts.log_level.unwrap_or(cfg.telemetry.level);
    adampack_telemetry::set_max_level(level.resolve(cfg.params.verbosity));
    adampack_telemetry::set_enabled(cfg.telemetry.metrics);
    let trace_out = opts
        .trace_out
        .clone()
        .or_else(|| cfg.telemetry.trace_out.clone());
    let metrics_out = opts
        .metrics_out
        .clone()
        .or_else(|| cfg.telemetry.metrics_out.clone());
    let timeline_out = opts
        .trace_timeline
        .clone()
        .or_else(|| cfg.telemetry.timeline_out.clone());
    let diag_mode = opts.diagnostics.unwrap_or(cfg.telemetry.diagnostics);
    // The span timeline is gated on one relaxed atomic load when off;
    // start each run from an empty ring so repeated in-process runs don't
    // bleed events into each other's exports. A full packing emits a few
    // events per optimizer step, so a CLI export gets a much deeper ring
    // than the library default (only threads that record allocate one);
    // runs that still overflow keep the newest events and warn.
    timeline::set_timeline_enabled(timeline_out.is_some());
    if timeline_out.is_some() {
        timeline::set_ring_capacity(1 << 20);
        timeline::reset_timeline();
    }

    // Thread-pool wiring, installed once for the whole run: the CLI flag
    // wins over the YAML `params.threads`, and 0 means one worker per
    // hardware thread. Purely a performance knob — results are bitwise
    // identical for any count.
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        cfg.params.threads
    };
    let mut builder = rayon::ThreadPoolBuilder::new();
    if threads > 0 {
        builder = builder.num_threads(threads);
    }
    let pool = builder
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    pool.install(|| {
        run_pack_configured(&cfg, opts, trace_out, metrics_out, timeline_out, diag_mode)
    })
}

/// Exports the accumulated span timeline as Chrome Trace Format JSON,
/// written atomically so a crash mid-export never leaves a torn file.
fn write_timeline(path: &Path) -> Result<(), CliError> {
    let json = timeline::export_chrome_trace();
    adampack_io::write_atomic(path, json.as_bytes())
        .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
    let dropped = timeline::dropped_events();
    if dropped > 0 {
        warn!("timeline ring overflowed: {dropped} oldest events dropped (ring keeps the newest)");
    }
    info!("timeline trace written to {}", path.display());
    Ok(())
}

/// Writes a [`RunManifest`] atomically next to `output`.
fn write_manifest(output: &Path, manifest: &RunManifest) -> Result<(), CliError> {
    let path = RunManifest::path_for(output);
    adampack_io::write_atomic(&path, manifest.to_json().as_bytes())
        .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
    info!("run manifest written to {}", path.display());
    Ok(())
}

/// The packing driver proper, run inside the installed thread pool.
fn run_pack_configured(
    cfg: &PackingConfig,
    opts: &PackOptions,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    timeline_out: Option<PathBuf>,
    diag_mode: DiagMode,
) -> Result<RunSummary, CliError> {
    let mesh = load_container_mesh(&cfg.container_path)?;
    let container = Container::from_mesh(&mesh).map_err(|e| CliError::Geometry(e.to_string()))?;
    let mut params = cfg.to_packing_params();
    if let Some(kernel) = opts.kernel {
        params.kernel = kernel;
    }
    if let Some(tiles) = opts.tiles {
        params.tiles = tiles;
    }
    if params.tiles > 1 && params.neighbor.strategy == NeighborStrategy::Naive {
        return Err(CliError::Usage(
            "tiles > 1 requires a grid-backed neighbor strategy \
             ('auto', 'grid' or 'verlet'): the naive cross scan reads every \
             bed sphere and defeats slab retirement"
                .into(),
        ));
    }

    let collective = cfg.algorithm.eq_ignore_ascii_case("COLLECTIVE_ARRANGEMENT");

    if let Some(batch) = effective_batch(cfg, opts) {
        // YAML axes were validated at parse time; CLI-supplied axes (and
        // their combination with the YAML block) are checked here.
        batch
            .validate()
            .map_err(|e| CliError::Usage(format!("{e} (from --batch-* flags)")))?;
        if !(collective && cfg.zones.is_empty()) {
            return Err(CliError::Usage(
                "batched sweeps (batch: / --batch-*) require single-zone \
                 COLLECTIVE_ARRANGEMENT"
                    .into(),
            ));
        }
        if trace_out.is_some() {
            warn!("step tracing is not available for batched sweeps; no trace will be written");
        }
        return run_pack_batched(
            cfg,
            opts,
            &batch,
            &container,
            params,
            metrics_out,
            timeline_out,
            diag_mode,
        );
    }

    if trace_out.is_some() && !(collective && cfg.zones.is_empty()) {
        warn!("step tracing is only available for single-zone COLLECTIVE_ARRANGEMENT runs; no trace will be written");
    }
    let checkpoint = resolve_checkpoint(cfg, opts);
    if (checkpoint.is_some() || opts.resume) && !(collective && cfg.zones.is_empty()) {
        warn!("checkpoint/resume is only available for single-zone COLLECTIVE_ARRANGEMENT runs; no checkpoints will be written");
    }

    // Filled in by the collective branch; the manifest falls back to 0 /
    // empty for registry algorithms (they have no checkpoint fingerprint).
    let mut run_fingerprint = 0u64;
    let mut diag_records: Vec<adampack_telemetry::DiagRecord> = Vec::new();
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        cfg.params.threads
    };
    let salt = context_salt(threads, params.kernel, None);
    let (run_seed, run_kernel, run_tiles) = (params.seed, params.kernel, params.tiles);

    let result = if cfg.zones.is_empty() {
        // Single implicit everywhere-zone. The collective path honours the
        // YAML `verbosity` knob with per-batch progress lines; other
        // algorithms run through the registry.
        let psd = cfg
            .psds()
            .into_iter()
            .next()
            .ok_or_else(|| CliError::Usage("configuration has no particle sets".into()))?;
        let n = container.capacity_estimate(psd.mean(), 0.6);
        if collective {
            let mut p = params.clone();
            p.target_count = n;
            let mut packer = CollectivePacker::new(container.clone(), p);
            packer.set_fingerprint_context(salt);
            packer.set_diagnostics(diag_mode);
            // Locate resume state first: the trace file must be appended
            // to (not truncated) when continuing an interrupted run.
            let resume_state = match (&checkpoint, opts.resume) {
                (Some(ck), true) => {
                    let loaded = load_latest_checkpoint(&ck.path, ck.keep_last)?;
                    if loaded.is_none() {
                        warn!(
                            "--resume: no checkpoint at {}, starting fresh",
                            ck.path.display()
                        );
                    }
                    loaded
                }
                (None, true) => {
                    return Err(CliError::Usage(
                        "--resume requires a checkpoint path (--checkpoint or the \
                         configuration's checkpoint: block)"
                            .into(),
                    ));
                }
                _ => None,
            };
            if let Some(path) = &trace_out {
                let file = if resume_state.is_some() {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)?
                } else {
                    std::fs::File::create(path)?
                };
                packer.set_trace_sink(Box::new(JsonlWriter::new(std::io::BufWriter::new(file))));
                info!("streaming step trace to {}", path.display());
            }
            if let Some(ck) = &checkpoint {
                let sink = FileCheckpointSink {
                    writer: adampack_io::RotatingCheckpointWriter::new(&ck.path, ck.keep_last),
                };
                packer.set_checkpoint_sink(Box::new(sink), ck.every_steps);
                info!(
                    "checkpointing to {} every {} steps (keeping {})",
                    ck.path.display(),
                    ck.every_steps,
                    ck.keep_last
                );
            }
            if cfg.params.verbosity > 0 {
                let every = cfg.params.verbosity;
                packer.set_batch_callback(move |b| {
                    if b.index % every == 0 {
                        info!(
                            "batch {:>4}: {} particles, {} steps, fitness {:.3}, {}",
                            b.index,
                            b.requested,
                            b.steps,
                            b.best_fitness,
                            if b.accepted { "accepted" } else { "REJECTED" }
                        );
                    }
                });
            }
            let result = match resume_state {
                Some((from, state)) => {
                    info!(
                        "resuming from {} ({} particles packed, batch {})",
                        from.display(),
                        state.packed,
                        state.batch_index
                    );
                    packer.resume(&psd, state)?
                }
                None => packer.try_pack(&psd)?,
            };
            // Drop the sink so buffered trace lines hit the file.
            drop(packer.take_trace_sink());
            run_fingerprint = packer.fingerprint();
            diag_records = packer.take_diagnostics();
            result
        } else {
            let algo = registry(&cfg.algorithm).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown algorithm '{}'; known: {:?}",
                    cfg.algorithm,
                    adampack_core::runner::algorithm_names()
                ))
            })?;
            algo.pack(&container, &psd, n, &params)
        }
    } else {
        if !collective {
            return Err(CliError::Usage(
                "zoned packings require algorithm COLLECTIVE_ARRANGEMENT".into(),
            ));
        }
        let zones = cfg.zone_specs(load_zone_hull)?;
        ZonedPacker::new(container.clone(), params, cfg.psds()).pack(&zones)
    };

    if let Some(path) = &metrics_out {
        std::fs::write(path, adampack_telemetry::prometheus_snapshot())?;
        info!("metrics snapshot written to {}", path.display());
    }

    // Full quality report against the first particle set's PSD (zone mixes
    // are checked per zone by their own tests; the report's PSD row is only
    // meaningful for single-set configurations).
    let psd_for_report = if cfg.particle_sets.len() == 1 {
        cfg.psds().into_iter().next()
    } else {
        None
    };
    let report = QualityReport::from_result(&result, &container, psd_for_report.as_ref())
        .with_diagnostics(DiagSummary::from_records(&diag_records));
    info!("{report}");
    let density = metrics::core_density(&result.particles, &container.aabb(), 1.0 / 3.0);
    let contact = metrics::contact_stats(&result.particles);

    let output = match &opts.out {
        None => None,
        Some(path) => {
            write_particles(path, &result)?;
            Some(path.clone())
        }
    };

    // Export the timeline before the manifest so the manifest records the
    // trace file's real size.
    if let Some(path) = &timeline_out {
        write_timeline(path)?;
    }
    if let Some(out) = &output {
        let mut manifest = RunManifest {
            label: String::new(),
            fingerprint: run_fingerprint,
            context_salt: salt,
            seed: run_seed,
            threads: rayon::current_num_threads(),
            kernel: run_kernel.name().to_string(),
            backend: wide::backend_name().to_string(),
            isa: wide::detected_isa().to_string(),
            batch_grid: String::new(),
            tiles: run_tiles as u64,
            hot_set_peak_bytes: report.hot_set_peak_bytes,
            packed: result.particles.len() as u64,
            target: result.target as u64,
            wall_seconds: result.duration.as_secs_f64(),
            phase: report.phase,
            artifacts: Vec::new(),
        };
        manifest.add_artifact(out);
        for extra in [&trace_out, &metrics_out, &timeline_out]
            .into_iter()
            .flatten()
        {
            manifest.add_artifact(extra);
        }
        write_manifest(out, &manifest)?;
    }

    Ok(RunSummary {
        packed: result.particles.len(),
        core_density: density,
        mean_overlap_ratio: contact.mean_overlap_ratio,
        seconds: result.duration.as_secs_f64(),
        output,
    })
}

/// The batched multi-system driver: expands the sweep grid into labeled
/// systems, packs them all in one process with the batched engine, writes
/// per-system outputs (`out.<label>.vtk`), and aggregates the summary.
#[allow(clippy::too_many_arguments)]
fn run_pack_batched(
    cfg: &PackingConfig,
    opts: &PackOptions,
    batch: &BatchConfig,
    container: &Container,
    params: PackingParams,
    metrics_out: Option<PathBuf>,
    timeline_out: Option<PathBuf>,
    diag_mode: DiagMode,
) -> Result<RunSummary, CliError> {
    // Per-system labeled series from any previous in-process run would
    // otherwise survive in the registry and leak into this run's snapshot.
    adampack_telemetry::metrics::clear_system_metrics();
    let systems = batch.expand(&cfg.params);
    if systems.len() > BatchConfig::MAX_SYSTEMS {
        return Err(CliError::Usage(format!(
            "batch sweep expands to {} systems (max {})",
            systems.len(),
            BatchConfig::MAX_SYSTEMS
        )));
    }
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        cfg.params.threads
    };
    let salt = context_salt(threads, params.kernel, Some(batch));

    let mut specs = Vec::with_capacity(systems.len());
    for sys in &systems {
        let psd = cfg
            .psds_scaled(sys.radius_scale)
            .into_iter()
            .next()
            .ok_or_else(|| CliError::Usage("configuration has no particle sets".into()))?;
        let mut p = cfg.to_packing_params_for(sys);
        p.kernel = params.kernel;
        p.tiles = params.tiles;
        p.target_count = container.capacity_estimate(psd.mean(), 0.6);
        specs.push(SystemSpec {
            label: sys.label.clone(),
            params: p,
            psd,
        });
    }
    info!(
        "batched sweep: {} systems ({})",
        specs.len(),
        batch.descriptor()
    );
    // (label, seed, target) per system, for the per-system manifests — the
    // specs themselves are consumed by the engine.
    let system_meta: Vec<(String, u64, usize)> = specs
        .iter()
        .map(|s| (s.label.clone(), s.params.seed, s.params.target_count))
        .collect();

    let mut packer = BatchedPacker::new(container, specs);
    packer.set_threads(threads);
    packer.set_fingerprint_context(salt);
    packer.set_diagnostics(diag_mode);

    let checkpoint = resolve_checkpoint(cfg, opts);
    if let Some(ck) = &checkpoint {
        let sink = BatchedFileSink {
            writer: adampack_io::RotatingCheckpointWriter::new(&ck.path, ck.keep_last),
        };
        packer.set_checkpoint_sink(Box::new(sink), ck.every_steps);
        info!(
            "checkpointing batched state to {} every {} steps (keeping {})",
            ck.path.display(),
            ck.every_steps,
            ck.keep_last
        );
    }
    if opts.resume {
        let ck = checkpoint.as_ref().ok_or_else(|| {
            CliError::Usage(
                "--resume requires a checkpoint path (--checkpoint or the configuration's \
                 checkpoint: block)"
                    .into(),
            )
        })?;
        match load_latest_batched_checkpoint(&ck.path, ck.keep_last)? {
            None => warn!(
                "--resume: no checkpoint at {}, starting fresh",
                ck.path.display()
            ),
            Some((from, state)) => {
                info!(
                    "resuming batched sweep from {} (pass {}, {} systems)",
                    from.display(),
                    state.pass,
                    state.systems.len()
                );
                packer.resume(state)?;
            }
        }
    }
    if cfg.params.verbosity > 0 {
        let every = cfg.params.verbosity as u64;
        packer.set_pass_callback(move |p| {
            if p.pass % every == 0 {
                info!(
                    "pass {:>4}: {} systems active, {} particles, {} steps this pass",
                    p.pass, p.active, p.packed, p.steps
                );
            }
        });
    }

    let reports = packer.run();
    let diags = packer.take_diagnostics();
    let fingerprints = packer.fingerprints();

    if let Some(path) = &metrics_out {
        std::fs::write(path, adampack_telemetry::prometheus_snapshot())?;
        info!("metrics snapshot written to {}", path.display());
    }
    if let Some(path) = &timeline_out {
        write_timeline(path)?;
    }

    let mut packed = 0usize;
    let mut density_sum = 0.0;
    let mut overlap_sum = 0.0;
    let mut seconds: f64 = 0.0;
    let mut ok_count = 0usize;
    let mut first_err: Option<PackError> = None;
    for rep in reports {
        match rep.result {
            Ok(result) => {
                let density =
                    metrics::core_density(&result.particles, &container.aabb(), 1.0 / 3.0);
                let contact = metrics::contact_stats(&result.particles);
                info!(
                    "system {}: {} particles, core density {:.4}, mean overlap {:.3}%, {:.2} s",
                    rep.label,
                    result.particles.len(),
                    density,
                    contact.mean_overlap_ratio * 100.0,
                    result.duration.as_secs_f64()
                );
                let diag_summary = diags
                    .iter()
                    .find(|(l, _)| *l == rep.label)
                    .and_then(|(_, recs)| DiagSummary::from_records(recs));
                let sys_report = QualityReport::from_result(&result, container, None)
                    .with_diagnostics(diag_summary);
                adampack_telemetry::debug!("system {} report:\n{sys_report}", rep.label);
                packed += result.particles.len();
                density_sum += density;
                overlap_sum += contact.mean_overlap_ratio;
                seconds = seconds.max(result.duration.as_secs_f64());
                ok_count += 1;
                if let Some(out) = &opts.out {
                    let path = labeled_output_path(out, &rep.label);
                    write_particles(&path, &result)?;
                    info!("system {}: wrote {}", rep.label, path.display());
                    let (seed, target) = system_meta
                        .iter()
                        .find(|(l, _, _)| *l == rep.label)
                        .map(|&(_, s, t)| (s, t))
                        .unwrap_or((0, 0));
                    let fingerprint = fingerprints
                        .iter()
                        .find(|(l, _)| *l == rep.label)
                        .map(|&(_, f)| f)
                        .unwrap_or(0);
                    let mut manifest = RunManifest {
                        label: rep.label.clone(),
                        fingerprint,
                        context_salt: salt,
                        seed,
                        threads: rayon::current_num_threads(),
                        kernel: params.kernel.name().to_string(),
                        backend: wide::backend_name().to_string(),
                        isa: wide::detected_isa().to_string(),
                        batch_grid: batch.descriptor(),
                        tiles: params.tiles as u64,
                        hot_set_peak_bytes: sys_report.hot_set_peak_bytes,
                        packed: result.particles.len() as u64,
                        target: target as u64,
                        wall_seconds: result.duration.as_secs_f64(),
                        phase: sys_report.phase,
                        artifacts: Vec::new(),
                    };
                    manifest.add_artifact(&path);
                    for extra in [&metrics_out, &timeline_out].into_iter().flatten() {
                        manifest.add_artifact(extra);
                    }
                    write_manifest(&path, &manifest)?;
                }
            }
            Err(e) => {
                warn!("system {} failed: {e}", rep.label);
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e.into());
    }
    Ok(RunSummary {
        packed,
        core_density: density_sum / ok_count.max(1) as f64,
        mean_overlap_ratio: overlap_sum / ok_count.max(1) as f64,
        seconds,
        output: opts.out.clone(),
    })
}

/// Writes particles in the format selected by the output extension.
pub fn write_particles(path: &Path, result: &PackResult) -> Result<(), CliError> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    match ext.as_str() {
        "csv" => adampack_io::write_particles_csv(
            &mut w,
            result
                .particles
                .iter()
                .map(|p| (p.center, p.radius, p.batch, p.set)),
        )?,
        "vtk" => {
            let triples: Vec<_> = result
                .particles
                .iter()
                .map(|p| (p.center, p.radius, p.batch))
                .collect();
            adampack_io::write_particles_vtk(&mut w, &triples, "adampack packing")?;
        }
        "xyz" => {
            let spheres: Vec<_> = result.spheres();
            adampack_io::write_xyz(&mut w, &spheres, "adampack packing")?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown output extension '.{other}' (use .csv, .vtk or .xyz)"
            )))
        }
    }
    Ok(())
}

/// `adampack info`: prints (and returns) a configuration overview without
/// running the packing.
pub fn run_info(config_path: &Path) -> Result<String, CliError> {
    let cfg = PackingConfig::from_file(config_path)?;
    let mesh = load_container_mesh(&cfg.container_path)?;
    let container = Container::from_mesh(&mesh).map_err(|e| CliError::Geometry(e.to_string()))?;
    let mut s = String::new();
    use std::fmt::Write;
    writeln!(s, "configuration: {}", config_path.display()).ok();
    writeln!(s, "  algorithm:   {}", cfg.algorithm).ok();
    writeln!(
        s,
        "  container:   {} (volume {:.3}, {} hull planes)",
        cfg.container_path.display(),
        container.volume(),
        container.halfspaces().len()
    )
    .ok();
    writeln!(s, "  gravity:     {:?}", cfg.gravity_axis).ok();
    writeln!(
        s,
        "  lr {}  max_steps {}  patience {}  batch {}",
        cfg.params.lr, cfg.params.n_epoch, cfg.params.patience, cfg.params.batch_size
    )
    .ok();
    if let Some(batch) = &cfg.batch {
        let systems = batch.expand(&cfg.params);
        writeln!(s, "  batch sweep: {} systems ({})", systems.len(), {
            let labels: Vec<&str> = systems.iter().map(|y| y.label.as_str()).collect();
            labels.join(", ")
        })
        .ok();
    }
    writeln!(s, "  particle sets: {}", cfg.particle_sets.len()).ok();
    for (i, ps) in cfg.particle_sets.iter().enumerate() {
        writeln!(s, "    [{i}] {ps:?} (mean r = {:.4})", ps.to_psd().mean()).ok();
    }
    writeln!(s, "  zones: {}", cfg.zones.len()).ok();
    for (i, z) in cfg.zones.iter().enumerate() {
        let loc = match &z.location {
            LocationConfig::Slice { axis, min, max } => format!("slice {axis:?} [{min}, {max}]"),
            LocationConfig::Shape { path } => format!("shape {}", path.display()),
            LocationConfig::Everywhere => "everywhere".to_string(),
        };
        writeln!(
            s,
            "    [{i}] {} particles, {loc}, proportions {:?}",
            z.n_particles, z.set_proportions
        )
        .ok();
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adampack_geometry::{shapes, Vec3};
    use adampack_io::write_stl_ascii;

    fn setup_config(dir: &Path, algorithm: &str, with_zones: bool) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let boxm = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        let f = std::fs::File::create(dir.join("box.stl")).unwrap();
        write_stl_ascii(std::io::BufWriter::new(f), &boxm, "box").unwrap();
        let zones = if with_zones {
            "\nzones:\n    - n_particles: 30\n      location:\n          slice:\n              axis: z\n              min_bound: -1.0\n              max_bound: 0.0\n      set_proportions: [1.0]\n"
        } else {
            ""
        };
        let yaml = format!(
            "container:\n    path: \"box.stl\"\nalgorithm: \"{algorithm}\"\nparams:\n    lr: 0.01\n    n_epoch: 300\n    patience: 40\n    batch_size: 25\n    seed: 3\nparticle_sets:\n    - radius_distribution: \"constant\"\n      radius_value: 0.15\n{zones}"
        );
        let p = dir.join("pack.yaml");
        std::fs::write(&p, yaml).unwrap();
        p
    }

    #[test]
    fn pack_without_zones_uses_registry_algorithm() {
        let dir = std::env::temp_dir().join("adampack_cli_rsa");
        let cfg = setup_config(&dir, "RSA", false);
        let summary = run_pack(&cfg, None).unwrap();
        assert!(summary.packed > 20);
        assert_eq!(summary.mean_overlap_ratio, 0.0, "RSA never overlaps");
        assert!(summary.output.is_none());
    }

    #[test]
    fn pack_with_zones_and_vtk_output() {
        let dir = std::env::temp_dir().join("adampack_cli_zones");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", true);
        let out = dir.join("out.vtk");
        let summary = run_pack(&cfg, Some(&out)).unwrap();
        assert!(summary.packed > 10, "packed {}", summary.packed);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("# vtk DataFile"));
    }

    #[test]
    fn csv_and_xyz_outputs() {
        let dir = std::env::temp_dir().join("adampack_cli_formats");
        let cfg = setup_config(&dir, "DROP_AND_ROLL", false);
        for ext in ["csv", "xyz"] {
            let out = dir.join(format!("out.{ext}"));
            let summary = run_pack(&cfg, Some(&out)).unwrap();
            assert!(summary.packed > 10);
            assert!(out.exists());
        }
        // Unknown extension errors.
        let bad = dir.join("out.unknown");
        assert!(matches!(
            run_pack(&cfg, Some(&bad)),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn pack_with_trace_and_metrics_outputs() {
        let dir = std::env::temp_dir().join("adampack_cli_trace");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let trace = dir.join("run.jsonl");
        let metrics_snapshot = dir.join("metrics.prom");
        let opts = PackOptions {
            trace_out: Some(trace.clone()),
            metrics_out: Some(metrics_snapshot.clone()),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(summary.packed > 10);
        let text = std::fs::read_to_string(&trace).unwrap();
        let mut lines = 0;
        for line in text.lines() {
            adampack_telemetry::StepRecord::parse(line).expect("every trace line parses");
            lines += 1;
        }
        assert!(lines > 0, "trace must contain step records");
        let prom = std::fs::read_to_string(&metrics_snapshot).unwrap();
        assert!(prom.contains("adampack_optimizer_steps_total"));
        assert!(prom.contains("adampack_phase_spawn_nanoseconds"));
    }

    #[test]
    fn kernel_override_produces_identical_packing() {
        let dir = std::env::temp_dir().join("adampack_cli_kernel");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let mut summaries = Vec::new();
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let opts = PackOptions {
                kernel: Some(kernel),
                log_level: Some(ConsoleLevel::Off),
                ..PackOptions::default()
            };
            summaries.push(run_pack_opts(&cfg, &opts).unwrap());
        }
        assert_eq!(summaries[0].packed, summaries[1].packed);
        assert_eq!(
            summaries[0].core_density.to_bits(),
            summaries[1].core_density.to_bits(),
            "scalar and simd kernels must pack bitwise identically"
        );
        assert_eq!(
            summaries[0].mean_overlap_ratio.to_bits(),
            summaries[1].mean_overlap_ratio.to_bits()
        );
    }

    #[test]
    fn zoned_non_collective_rejected() {
        let dir = std::env::temp_dir().join("adampack_cli_zoned_rsa");
        let cfg = setup_config(&dir, "RSA", true);
        assert!(matches!(run_pack(&cfg, None), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let dir = std::env::temp_dir().join("adampack_cli_unknown");
        let cfg = setup_config(&dir, "SIMULATED_ANNEALING", false);
        let err = run_pack(&cfg, None).unwrap_err();
        assert!(err.to_string().contains("SIMULATED_ANNEALING"));
    }

    #[test]
    fn info_reports_configuration() {
        let dir = std::env::temp_dir().join("adampack_cli_info");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", true);
        let info = run_info(&cfg).unwrap();
        assert!(info.contains("COLLECTIVE_ARRANGEMENT"));
        assert!(info.contains("particle sets: 1"));
        assert!(info.contains("zones: 1"));
        assert!(info.contains("hull planes"));
    }

    #[test]
    fn missing_config_is_io_error() {
        let err = run_pack(Path::new("/definitely/not/here.yaml"), None).unwrap_err();
        assert!(matches!(err, CliError::Config(_)));
    }

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            CliError::Usage("u".into()).exit_code(),
            CliError::Config(ConfigError::Field("f".into())).exit_code(),
            CliError::Geometry("g".into()).exit_code(),
            CliError::Io(std::io::Error::other("io")).exit_code(),
            CliError::Pack(PackError::Diverged {
                batch: 0,
                step: 1,
                recoveries: 2,
            })
            .exit_code(),
            CliError::Checkpoint("c".into()).exit_code(),
            CliError::Pack(PackError::HorizonBreach {
                batch: 3,
                misses: 4,
            })
            .exit_code(),
            CliError::Server("s".into()).exit_code(),
        ];
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes collide: {codes:?}");
        assert!(codes.iter().all(|&c| c != 0), "0 is reserved for success");
    }

    #[test]
    fn checkpoint_flag_writes_a_resumable_file() {
        let dir = std::env::temp_dir().join("adampack_cli_ckpt");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let ckpt = dir.join("run.ckpt");
        let opts = PackOptions {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: Some(40),
            checkpoint_keep: Some(2),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(summary.packed > 10);
        let bytes = std::fs::read(&ckpt).expect("checkpoint written");
        let state = adampack_core::checkpoint::decode(&bytes).expect("checkpoint decodes");
        assert_eq!(state.seed, 3, "seed from setup_config");
        assert!(!state.particles.is_empty() || state.batch.is_some());
    }

    #[test]
    fn resume_without_checkpoint_path_is_usage_error() {
        let dir = std::env::temp_dir().join("adampack_cli_resume_nopath");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let opts = PackOptions {
            resume: true,
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let err = run_pack_opts(&cfg, &opts).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn resume_without_existing_checkpoint_starts_fresh() {
        let dir = std::env::temp_dir().join("adampack_cli_resume_fresh");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let ckpt = dir.join("never_written.ckpt");
        // Clear the whole rotation chain: a stale `.1` from an earlier test
        // run would otherwise be picked up as a resume candidate.
        for stale in adampack_io::checkpoint_candidates(&ckpt, 8) {
            std::fs::remove_file(stale).ok();
        }
        let opts = PackOptions {
            checkpoint: Some(ckpt),
            resume: true,
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(summary.packed > 10);
    }

    #[test]
    fn corrupt_checkpoint_without_fallback_is_checkpoint_error() {
        let dir = std::env::temp_dir().join("adampack_cli_resume_corrupt");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let ckpt = dir.join("run.ckpt");
        std::fs::write(&ckpt, b"definitely not a checkpoint").unwrap();
        let opts = PackOptions {
            checkpoint: Some(ckpt),
            resume: true,
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let err = run_pack_opts(&cfg, &opts).unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err:?}");
        assert_eq!(err.exit_code(), 7);
    }

    #[test]
    fn batched_pack_writes_per_system_outputs() {
        let dir = std::env::temp_dir().join("adampack_cli_batched");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let out = dir.join("sweep.csv");
        let opts = PackOptions {
            out: Some(out.clone()),
            batch_seeds: Some(vec![3, 4]),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(summary.packed > 20, "two systems packed {}", summary.packed);
        for label in ["s3_lr0.01", "s4_lr0.01"] {
            let p = dir.join(format!("sweep.{label}.csv"));
            assert!(p.exists(), "missing per-system output {}", p.display());
        }
    }

    #[test]
    fn duplicate_batch_flag_values_are_a_usage_error() {
        let dir = std::env::temp_dir().join("adampack_cli_batched_dup");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let opts = PackOptions {
            batch_seeds: Some(vec![5, 5]),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let err = run_pack_opts(&cfg, &opts).unwrap_err();
        match err {
            CliError::Usage(msg) => {
                assert!(msg.contains("duplicate seed 5"), "{msg}");
                assert!(msg.contains("--batch-*"), "{msg}");
            }
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn batched_system_matches_single_run_bitwise() {
        let dir = std::env::temp_dir().join("adampack_cli_batched_parity");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let single = run_pack_opts(
            &cfg,
            &PackOptions {
                log_level: Some(ConsoleLevel::Off),
                ..PackOptions::default()
            },
        )
        .unwrap();
        // A one-system sweep over the same seed must reproduce the single
        // run bitwise (batching is a throughput knob, not a semantic one).
        let batched = run_pack_opts(
            &cfg,
            &PackOptions {
                batch_seeds: Some(vec![3]),
                log_level: Some(ConsoleLevel::Off),
                ..PackOptions::default()
            },
        )
        .unwrap();
        assert_eq!(single.packed, batched.packed);
        assert_eq!(
            single.core_density.to_bits(),
            batched.core_density.to_bits()
        );
        assert_eq!(
            single.mean_overlap_ratio.to_bits(),
            batched.mean_overlap_ratio.to_bits()
        );
    }

    #[test]
    fn batched_resume_under_different_sweep_is_exit_7() {
        let dir = std::env::temp_dir().join("adampack_cli_batched_resume");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let ckpt = dir.join("sweep.ckpt");
        for stale in adampack_io::checkpoint_candidates(&ckpt, 8) {
            std::fs::remove_file(stale).ok();
        }
        let opts = PackOptions {
            batch_seeds: Some(vec![3, 4]),
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: Some(40),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        run_pack_opts(&cfg, &opts).unwrap();
        assert!(ckpt.exists(), "batched checkpoint written");
        // Same grid resumes cleanly (run is already complete — fresh-ish
        // no-op resume still has to accept the state).
        let resume_same = PackOptions {
            resume: true,
            ..opts.clone()
        };
        run_pack_opts(&cfg, &resume_same).unwrap();
        // A different sweep grid must be rejected with exit code 7.
        let resume_other = PackOptions {
            batch_seeds: Some(vec![5, 6]),
            resume: true,
            ..opts.clone()
        };
        let err = run_pack_opts(&cfg, &resume_other).unwrap_err();
        assert!(
            matches!(err, CliError::Pack(PackError::Resume(_))),
            "{err:?}"
        );
        assert_eq!(err.exit_code(), 7);
    }

    #[test]
    fn resume_under_different_threads_or_kernel_is_exit_7() {
        let dir = std::env::temp_dir().join("adampack_cli_ctx_fingerprint");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let ckpt = dir.join("run.ckpt");
        for stale in adampack_io::checkpoint_candidates(&ckpt, 8) {
            std::fs::remove_file(stale).ok();
        }
        let opts = PackOptions {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: Some(40),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        run_pack_opts(&cfg, &opts).unwrap();
        assert!(ckpt.exists());
        for other in [
            PackOptions {
                threads: 2,
                resume: true,
                ..opts.clone()
            },
            PackOptions {
                kernel: Some(Kernel::Scalar),
                resume: true,
                ..opts.clone()
            },
        ] {
            let err = run_pack_opts(&cfg, &other).unwrap_err();
            assert!(
                matches!(err, CliError::Pack(PackError::Resume(_))),
                "{err:?}"
            );
            assert_eq!(err.exit_code(), 7);
        }
    }

    #[test]
    fn timeline_manifest_and_diagnostics_for_single_run() {
        let dir = std::env::temp_dir().join("adampack_cli_timeline");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let out = dir.join("out.csv");
        let trace = dir.join("trace.json");
        let ckpt = dir.join("run.ckpt");
        for stale in adampack_io::checkpoint_candidates(&ckpt, 8) {
            std::fs::remove_file(stale).ok();
        }
        let opts = PackOptions {
            out: Some(out.clone()),
            trace_timeline: Some(trace.clone()),
            diagnostics: Some(DiagMode::Events),
            checkpoint: Some(ckpt.clone()),
            checkpoint_every: Some(40),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(summary.packed > 10);
        // The timeline is valid Chrome Trace Format with the hierarchy's
        // span names and diagnostic instants.
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        for needle in [
            "\"name\":\"batch\"",
            "\"name\":\"optimize\"",
            "\"name\":\"gradient\"",
            "\"name\":\"diag.loss_slope\"",
            "\"selfTime\"",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        // The manifest sits next to the output and its fingerprint matches
        // the checkpoint's, so provenance can be cross-checked.
        let manifest = std::fs::read_to_string(RunManifest::path_for(&out)).unwrap();
        assert!(manifest.contains("\"schema\": \"adampack.manifest/v1\""));
        assert!(manifest.contains("out.csv"));
        assert!(manifest.contains("trace.json"));
        let state = adampack_core::checkpoint::decode(&std::fs::read(&ckpt).unwrap()).unwrap();
        assert!(
            manifest.contains(&format!("\"{:016x}\"", state.params_fingerprint)),
            "manifest fingerprint must match the checkpoint fingerprint:\n{manifest}"
        );
    }

    #[test]
    fn batched_run_labels_metrics_manifests_and_timeline_per_system() {
        let dir = std::env::temp_dir().join("adampack_cli_batched_obs");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let out = dir.join("sweep.csv");
        let trace = dir.join("sweep.trace.json");
        let prom = dir.join("sweep.prom");
        let opts = PackOptions {
            out: Some(out.clone()),
            trace_timeline: Some(trace.clone()),
            metrics_out: Some(prom.clone()),
            diagnostics: Some(DiagMode::Summary),
            batch_seeds: Some(vec![3, 4]),
            batch_lrs: Some(vec![0.01, 0.02]),
            log_level: Some(ConsoleLevel::Off),
            ..PackOptions::default()
        };
        let summary = run_pack_opts(&cfg, &opts).unwrap();
        assert!(
            summary.packed > 40,
            "four systems packed {}",
            summary.packed
        );
        let labels = ["s3_lr0.01", "s3_lr0.02", "s4_lr0.01", "s4_lr0.02"];
        // One labeled Prometheus series and one manifest per system.
        let snapshot = std::fs::read_to_string(&prom).unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        for label in labels {
            assert!(
                snapshot.contains(&format!(
                    "adampack_system_steps_total{{system=\"{label}\"}}"
                )),
                "missing labeled series for {label}"
            );
            assert!(
                json.contains(&format!("\"system\":\"{label}\"")),
                "timeline missing system label {label}"
            );
            let mpath = RunManifest::path_for(&labeled_output_path(&out, label));
            let manifest = std::fs::read_to_string(&mpath).unwrap();
            assert!(manifest.contains(&format!("\"label\": \"{label}\"")));
            assert!(manifest.contains("\"batch_grid\": "));
        }
    }

    #[test]
    fn observability_never_steers_the_packing() {
        let dir = std::env::temp_dir().join("adampack_cli_obs_inert");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        let plain = run_pack_opts(
            &cfg,
            &PackOptions {
                log_level: Some(ConsoleLevel::Off),
                ..PackOptions::default()
            },
        )
        .unwrap();
        let observed = run_pack_opts(
            &cfg,
            &PackOptions {
                trace_timeline: Some(dir.join("trace.json")),
                diagnostics: Some(DiagMode::Events),
                log_level: Some(ConsoleLevel::Off),
                ..PackOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.packed, observed.packed);
        assert_eq!(
            plain.core_density.to_bits(),
            observed.core_density.to_bits(),
            "tracing and diagnostics must not perturb the trajectory"
        );
        assert_eq!(
            plain.mean_overlap_ratio.to_bits(),
            observed.mean_overlap_ratio.to_bits()
        );
    }

    #[test]
    fn labeled_output_paths() {
        assert_eq!(
            labeled_output_path(Path::new("/a/out.vtk"), "s1_lr0.01"),
            PathBuf::from("/a/out.s1_lr0.01.vtk")
        );
        assert_eq!(
            labeled_output_path(Path::new("out"), "s1_lr0.01"),
            PathBuf::from("out.s1_lr0.01")
        );
    }

    #[test]
    fn open_container_mesh_rejected_naming_the_facet() {
        let dir = std::env::temp_dir().join("adampack_cli_badmesh");
        let cfg = setup_config(&dir, "COLLECTIVE_ARRANGEMENT", false);
        // Overwrite the container with an open box (one facet removed).
        let mut boxm = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
        boxm.faces.pop();
        let f = std::fs::File::create(dir.join("box.stl")).unwrap();
        write_stl_ascii(std::io::BufWriter::new(f), &boxm, "open box").unwrap();
        let err = run_pack(&cfg, None).unwrap_err();
        assert!(matches!(err, CliError::Geometry(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("facet"), "{msg}");
        assert!(msg.contains("box.stl"), "{msg}");
    }
}
