//! `adampack` — YAML-driven sphere packing from the command line.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adampack_cli::{run_info, run_pack_opts, CliError, PackOptions};
use adampack_config::ConsoleLevel;
use adampack_core::Kernel;
use adampack_telemetry::{DiagMode, Level};

const USAGE: &str = "\
adampack — rapid random packing of poly-disperse spheres (Adam/AMSGrad)

USAGE:
    adampack pack <config.yaml> [--out <file.{csv,vtk,xyz}>]
                  [--trace-out <run.jsonl>] [--metrics-out <metrics.prom>]
                  [--log-level <error|warn|info|debug|trace|off>]
                  [--threads <n>] [--kernel <scalar|simd|simd_mixed>]
                  [--tiles <n>]
                  [--checkpoint <run.ckpt>] [--checkpoint-every <steps>]
                  [--checkpoint-keep <n>] [--resume]
                  [--batch-seeds <s1,s2,…>] [--batch-lrs <lr1,lr2,…>]
                  [--batch-scales <x1,x2,…>]
                  [--trace-timeline <trace.json>]
                  [--diagnostics <off|summary|events>]
    adampack info <config.yaml>
    adampack serve [--addr <host:port>] [--workers <n>] [--http-threads <n>]
                   [--data-dir <dir>] [--config-base <dir>]
                   [--slice-ms <ms>] [--checkpoint-every <steps>]
                   [--checkpoint-keep <n>] [--queue-shards <n>]
                   [--config <limits.yaml>] [--max-body-bytes <n>]
                   [--read-timeout-ms <ms>] [--queue-depth <n>]
                   [--memory-budget-bytes <n>] [--cache-cap-bytes <n>]
                   [--job-deadline-s <s>] [--job-step-ceiling <n>]
    adampack help

COMMANDS:
    pack    run the packing described by the configuration and report
            particle count, core density, overlap stats and timing
    info    print the parsed configuration without running it
    serve   run the packing job server: POST a YAML config to /jobs,
            poll GET /jobs/{id}, fetch GET /jobs/{id}/artifact, cancel
            with POST /jobs/{id}/cancel, scrape GET /metrics. Jobs are
            content-addressed (semantically equal configs coalesce and
            completed results are served byte-identical from the cache
            in <data-dir>/artifacts), scheduled fair-share with
            checkpoint-shaped preemption, and crash-recoverable from
            the rotating checkpoints in <data-dir>/jobs.
            Production hardening: oversized jobs are refused at
            admission (413, from a pre-admission cost estimate), full
            queues or an exhausted memory budget shed load (429 with
            Retry-After), GET /readyz reports load-aware readiness
            separately from GET /healthz liveness, the artifact and
            checkpoint store is LRU-capped at --cache-cap-bytes, jobs
            exceeding --job-deadline-s or --job-step-ceiling end in
            status 'expired' with their newest checkpoint kept (resubmit
            to resume), and SIGTERM drains gracefully: admission stops,
            running jobs finish or checkpoint, the process exits 0.
            --config reads the same limits from a `server:` YAML block;
            explicit flags override it

Flags override the configuration's `telemetry:` block: --trace-out
streams a per-step JSONL record (loss terms, gradient norm, lr, max
displacement), --metrics-out writes a Prometheus-style counter and
histogram snapshot after the run.

--threads overrides the configuration's `params.threads` worker count
for the parallel phases (0 = one per hardware thread). Results are
bitwise identical for any value.

--kernel overrides the configuration's `params.kernel` arithmetic
kernel for the hot loops (default simd). scalar and simd produce
bitwise identical packings; scalar survives as the correctness oracle.
simd_mixed rejects pair candidates in f32 (accumulating in f64) for
extra bandwidth; it is bitwise self-reproducible and matches the exact
kernels within a documented relative budget (1e-5 on the objective).

--tiles overrides the configuration's `params.tiles` gravity-axis
tiling (default 1 = monolithic). With N > 1 tiles the container's
altitude range is split into N slabs and settled slabs more than one
slab below the bed surface are retired from the resident hot set, so
memory tracks the active surface instead of the particle total. Purely
a memory knob: tiled packings are bitwise identical to untiled ones,
and a guard makes any sub-horizon query a hard error (exit 8) instead
of silent drift. Requires a grid-backed neighbor strategy (auto, grid
or verlet).

--checkpoint writes a crash-resume checkpoint (atomic temp+rename,
rotated history) every --checkpoint-every optimizer steps (default 500),
keeping --checkpoint-keep files (default 2); these flags override the
configuration's `checkpoint:` block. --resume continues from the newest
readable checkpoint — the resumed run finishes bitwise identical to an
uninterrupted one — falling back to older rotated files when the newest
is torn or corrupt.

--batch-seeds / --batch-lrs / --batch-scales sweep the full cartesian
grid seeds × learning rates × PSD radius scales as independent systems
packed by one batched engine pass (comma-separated values; these flags
override the configuration's `batch:` block axis by axis). Each system
is bitwise identical to the equivalent single run; with --out, per-
system files are written as `out.<label>.vtk` for labels like
`s7_lr0.01`. Batched checkpoints carry one section per system and
resume bitwise; resuming under a different grid, thread count or
kernel is rejected with exit 7.

--trace-timeline records the run's hierarchical spans (passes, batches,
spawn/gradient/optimizer/acceptance, grid builds, kernels) in Chrome
Trace Format — open the file in chrome://tracing or Perfetto. Events
are labeled by thread and, in batched sweeps, by system. The tracer is
off unless this flag (or `telemetry.timeline_out`) is given and costs
one atomic load per span when off. Every run with --out also writes a
provenance manifest `out.manifest.json` (one per system when batched)
recording the parameter fingerprint, context salt, kernel/ISA, seed,
threads, per-phase wall-clock and artifact list.

--diagnostics enables per-batch convergence diagnostics (loss slope
over a sliding window, gradient-norm trend, acceptance rate,
oscillation rate, stall/divergence classification): `summary` adds a
convergence row to the quality report, `events` additionally emits
per-batch instant events on the timeline. Diagnostics read the
trajectory but never steer it — packings are bitwise identical with
diagnostics on or off.

EXIT CODES:
    0 success   2 usage   3 configuration   4 geometry   5 i/o
    6 divergence budget exhausted   7 checkpoint/resume failure
    8 tiled retirement horizon breached   9 job server failure
";

fn parse_num_list<T: std::str::FromStr>(flag: &str, v: &str) -> Result<Vec<T>, CliError> {
    let xs: Vec<T> = v
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<T>()
                .map_err(|_| CliError::Usage(format!("{flag}: bad value '{s}' in '{v}'")))
        })
        .collect::<Result<_, _>>()?;
    if xs.is_empty() {
        return Err(CliError::Usage(format!(
            "{flag} requires a comma-separated list of values"
        )));
    }
    Ok(xs)
}

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            adampack_telemetry::error!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<(), CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("pack") => {
            let config = it
                .next()
                .ok_or_else(|| CliError::Usage("pack requires a configuration path".into()))?;
            let mut opts = PackOptions::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .map(PathBuf::from)
                        .ok_or_else(|| CliError::Usage(format!("{name} requires a path")))
                };
                match flag.as_str() {
                    "--out" => opts.out = Some(value("--out")?),
                    "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
                    "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
                    "--checkpoint" => opts.checkpoint = Some(value("--checkpoint")?),
                    "--checkpoint-every" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--checkpoint-every requires a step count".into())
                        })?;
                        let steps: usize = v.parse().ok().filter(|&s| s > 0).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--checkpoint-every expects a positive integer, got '{v}'"
                            ))
                        })?;
                        opts.checkpoint_every = Some(steps);
                    }
                    "--checkpoint-keep" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--checkpoint-keep requires a count".into())
                        })?;
                        let keep: usize = v.parse().ok().filter(|&k| k > 0).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--checkpoint-keep expects a positive integer, got '{v}'"
                            ))
                        })?;
                        opts.checkpoint_keep = Some(keep);
                    }
                    "--resume" => opts.resume = true,
                    "--trace-timeline" => opts.trace_timeline = Some(value("--trace-timeline")?),
                    "--diagnostics" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage(format!(
                                "--diagnostics requires a mode (accepted: {})",
                                DiagMode::ACCEPTED
                            ))
                        })?;
                        opts.diagnostics = Some(DiagMode::parse(v).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--diagnostics: unknown mode '{v}' (accepted: {})",
                                DiagMode::ACCEPTED
                            ))
                        })?);
                    }
                    "--batch-seeds" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--batch-seeds requires a seed list".into())
                        })?;
                        opts.batch_seeds = Some(parse_num_list::<u64>("--batch-seeds", v)?);
                    }
                    "--batch-lrs" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--batch-lrs requires a learning-rate list".into())
                        })?;
                        let lrs = parse_num_list::<f64>("--batch-lrs", v)?;
                        if lrs.iter().any(|&x| !(x > 0.0 && x.is_finite())) {
                            return Err(CliError::Usage(format!(
                                "--batch-lrs: learning rates must be positive and finite, got '{v}'"
                            )));
                        }
                        opts.batch_lrs = Some(lrs);
                    }
                    "--batch-scales" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--batch-scales requires a scale list".into())
                        })?;
                        let scales = parse_num_list::<f64>("--batch-scales", v)?;
                        if scales.iter().any(|&x| !(x > 0.0 && x.is_finite())) {
                            return Err(CliError::Usage(format!(
                                "--batch-scales: scales must be positive and finite, got '{v}'"
                            )));
                        }
                        opts.batch_scales = Some(scales);
                    }
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--threads requires a count".into()))?;
                        opts.threads = v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "--threads expects a non-negative integer, got '{v}'"
                            ))
                        })?;
                    }
                    "--kernel" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--kernel requires a name".into()))?;
                        opts.kernel = Some(Kernel::parse(v).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--kernel expects 'scalar', 'simd' or 'simd_mixed', got '{v}'"
                            ))
                        })?);
                    }
                    "--tiles" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage(
                                "--tiles requires a tile count (a positive integer)".into(),
                            )
                        })?;
                        let tiles: usize = v.parse().ok().filter(|&t| t >= 1).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--tiles expects a positive integer (1 = untiled), got '{v}'"
                            ))
                        })?;
                        opts.tiles = Some(tiles);
                    }
                    "--log-level" => {
                        let v = it.next().ok_or_else(|| {
                            CliError::Usage("--log-level requires a level".into())
                        })?;
                        opts.log_level = Some(match Level::parse(v) {
                            Ok(Some(level)) => ConsoleLevel::Fixed(level),
                            Ok(None) => ConsoleLevel::Off,
                            Err(e) => return Err(CliError::Usage(e)),
                        });
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag '{other}'")));
                    }
                }
            }
            let summary = run_pack_opts(Path::new(config), &opts)?;
            println!("packed:        {}", summary.packed);
            println!("core density:  {:.4}", summary.core_density);
            println!(
                "mean overlap:  {:.3}% of radius",
                summary.mean_overlap_ratio * 100.0
            );
            println!("time:          {:.2} s", summary.seconds);
            if let Some(p) = summary.output {
                println!("output:        {}", p.display());
            }
            Ok(())
        }
        Some("serve") => {
            let mut opts = adampack_server::ServeOptions::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{name} requires a value")))
                };
                fn positive(name: &str, v: &str) -> Result<usize, CliError> {
                    v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        CliError::Usage(format!("{name} expects a positive integer, got '{v}'"))
                    })
                }
                fn nonneg(name: &str, v: &str) -> Result<u64, CliError> {
                    v.parse().map_err(|_| {
                        CliError::Usage(format!(
                            "{name} expects a non-negative integer (0 = unlimited), got '{v}'"
                        ))
                    })
                }
                match flag.as_str() {
                    "--addr" => opts.addr = value("--addr")?,
                    "--workers" => opts.workers = positive("--workers", &value("--workers")?)?,
                    "--http-threads" => {
                        opts.http_threads = positive("--http-threads", &value("--http-threads")?)?
                    }
                    "--queue-shards" => {
                        opts.queue_shards = positive("--queue-shards", &value("--queue-shards")?)?
                    }
                    "--data-dir" => opts.data_dir = PathBuf::from(value("--data-dir")?),
                    "--config-base" => opts.config_base = PathBuf::from(value("--config-base")?),
                    "--slice-ms" => {
                        opts.slice_ms = positive("--slice-ms", &value("--slice-ms")?)? as u64
                    }
                    "--checkpoint-every" => {
                        opts.checkpoint_every =
                            positive("--checkpoint-every", &value("--checkpoint-every")?)?
                    }
                    "--checkpoint-keep" => {
                        opts.keep_last =
                            positive("--checkpoint-keep", &value("--checkpoint-keep")?)?
                    }
                    "--config" => {
                        let path = PathBuf::from(value("--config")?);
                        opts.limits =
                            adampack_config::ServerConfig::from_file(&path).map_err(|e| {
                                CliError::Usage(format!("--config {}: {e}", path.display()))
                            })?;
                    }
                    "--max-body-bytes" => {
                        opts.limits.max_body_bytes =
                            positive("--max-body-bytes", &value("--max-body-bytes")?)?
                    }
                    "--read-timeout-ms" => {
                        opts.limits.read_timeout_ms =
                            positive("--read-timeout-ms", &value("--read-timeout-ms")?)? as u64
                    }
                    "--queue-depth" => {
                        opts.limits.queue_depth =
                            positive("--queue-depth", &value("--queue-depth")?)?
                    }
                    "--memory-budget-bytes" => {
                        opts.limits.memory_budget_bytes =
                            nonneg("--memory-budget-bytes", &value("--memory-budget-bytes")?)?
                    }
                    "--cache-cap-bytes" => {
                        opts.limits.cache_cap_bytes =
                            nonneg("--cache-cap-bytes", &value("--cache-cap-bytes")?)?
                    }
                    "--job-deadline-s" => {
                        opts.limits.job_deadline_s =
                            nonneg("--job-deadline-s", &value("--job-deadline-s")?)?
                    }
                    "--job-step-ceiling" => {
                        opts.limits.job_step_ceiling =
                            nonneg("--job-step-ceiling", &value("--job-step-ceiling")?)?
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag '{other}'")));
                    }
                }
            }
            // SIGTERM/SIGINT trigger a graceful drain: stop admitting,
            // finish or checkpoint running jobs at the next boundary,
            // flush telemetry, exit 0.
            adampack_server::signal::install();
            let handle = adampack_server::Server::start(opts)
                .map_err(|e| CliError::Server(e.to_string()))?;
            println!("listening on http://{}", handle.addr());
            loop {
                if adampack_server::signal::termination_requested() {
                    handle.drain();
                    return Ok(());
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        }
        Some("info") => {
            let config = it
                .next()
                .ok_or_else(|| CliError::Usage("info requires a configuration path".into()))?;
            print!("{}", run_info(Path::new(config))?);
            Ok(())
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'adampack help')"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_diagnostics_mode_is_usage_error_naming_accepted_values() {
        let err = dispatch(args(&["pack", "cfg.yaml", "--diagnostics", "verbose"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("verbose"), "{msg}");
        assert!(msg.contains("'off', 'summary' or 'events'"), "{msg}");
    }

    #[test]
    fn missing_diagnostics_value_is_usage_error_naming_accepted_values() {
        let err = dispatch(args(&["pack", "cfg.yaml", "--diagnostics"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("'off', 'summary' or 'events'"));
    }

    #[test]
    fn missing_trace_timeline_path_is_usage_error() {
        let err = dispatch(args(&["pack", "cfg.yaml", "--trace-timeline"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--trace-timeline"));
    }

    #[test]
    fn unknown_kernel_still_names_accepted_values() {
        let err = dispatch(args(&["pack", "cfg.yaml", "--kernel", "avx512"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("'scalar', 'simd' or 'simd_mixed'"), "{msg}");
        assert!(msg.contains("avx512"), "{msg}");
    }

    #[test]
    fn bad_tiles_is_usage_error_naming_accepted_values() {
        for bad in ["0", "-3", "two", "1.5"] {
            let err = dispatch(args(&["pack", "cfg.yaml", "--tiles", bad])).unwrap_err();
            assert_eq!(err.exit_code(), 2, "--tiles {bad}");
            let msg = err.to_string();
            assert!(msg.contains("positive integer"), "{msg}");
            assert!(msg.contains(bad), "{msg}");
        }
    }

    #[test]
    fn missing_tiles_value_is_usage_error() {
        let err = dispatch(args(&["pack", "cfg.yaml", "--tiles"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--tiles"));
    }

    #[test]
    fn serve_limit_flags_reject_bad_values_with_exit_2() {
        for (flag, bad) in [
            ("--max-body-bytes", "0"),
            ("--max-body-bytes", "lots"),
            ("--read-timeout-ms", "0"),
            ("--queue-depth", "-1"),
            ("--memory-budget-bytes", "2GiB"),
            ("--cache-cap-bytes", "-5"),
            ("--job-deadline-s", "soon"),
            ("--job-step-ceiling", "1.5"),
        ] {
            let err = dispatch(args(&["serve", flag, bad])).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{flag} {bad}");
            let msg = err.to_string();
            assert!(msg.contains(flag), "{msg}");
            assert!(msg.contains(bad), "{msg}");
        }
    }

    #[test]
    fn serve_limit_flags_require_values() {
        for flag in [
            "--max-body-bytes",
            "--read-timeout-ms",
            "--queue-depth",
            "--memory-budget-bytes",
            "--cache-cap-bytes",
            "--job-deadline-s",
            "--job-step-ceiling",
            "--config",
        ] {
            let err = dispatch(args(&["serve", flag])).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{flag}");
            assert!(err.to_string().contains(flag), "{flag}");
        }
    }

    #[test]
    fn serve_config_with_missing_file_is_usage_error() {
        let err = dispatch(args(&["serve", "--config", "/nonexistent/limits.yaml"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("limits.yaml"));
    }
}
