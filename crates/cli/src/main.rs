//! `adampack` — YAML-driven sphere packing from the command line.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adampack_cli::{run_info, run_pack, CliError};

const USAGE: &str = "\
adampack — rapid random packing of poly-disperse spheres (Adam/AMSGrad)

USAGE:
    adampack pack <config.yaml> [--out <file.{csv,vtk,xyz}>]
    adampack info <config.yaml>
    adampack help

COMMANDS:
    pack    run the packing described by the configuration and report
            particle count, core density, overlap stats and timing
    info    print the parsed configuration without running it
";

fn main() -> ExitCode {
    match dispatch(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: Vec<String>) -> Result<(), CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("pack") => {
            let config = it
                .next()
                .ok_or_else(|| CliError::Usage("pack requires a configuration path".into()))?;
            let mut out: Option<PathBuf> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError::Usage("--out requires a path".into()))?;
                        out = Some(PathBuf::from(v));
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag '{other}'")));
                    }
                }
            }
            let summary = run_pack(Path::new(config), out.as_deref())?;
            println!("packed:        {}", summary.packed);
            println!("core density:  {:.4}", summary.core_density);
            println!(
                "mean overlap:  {:.3}% of radius",
                summary.mean_overlap_ratio * 100.0
            );
            println!("time:          {:.2} s", summary.seconds);
            if let Some(p) = summary.output {
                println!("output:        {}", p.display());
            }
            Ok(())
        }
        Some("info") => {
            let config = it
                .next()
                .ok_or_else(|| CliError::Usage("info requires a configuration path".into()))?;
            print!("{}", run_info(Path::new(config))?);
            Ok(())
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command '{other}' (try 'adampack help')"
        ))),
    }
}
