//! `gen-assets` — generates the STL containers the sample configurations
//! in `configs/` reference (box, cone + sphere zone, blast furnace).

use std::path::PathBuf;
use std::process::ExitCode;

use adampack_geometry::{shapes, Vec3};
use adampack_io::write_stl_ascii;

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("configs"));
    if let Err(e) = run(&dir) {
        adampack_telemetry::error!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let assets: Vec<(&str, adampack_geometry::TriMesh)> = vec![
        ("box.stl", shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))),
        ("cone.stl", shapes::cone(1.2, 2.2, 48, false)),
        (
            "sphere.stl",
            shapes::uv_sphere(Vec3::new(0.0, 0.0, 0.55), 0.45, 24, 12),
        ),
        ("furnace.stl", shapes::blast_furnace(0.1, 48)),
    ];
    for (name, mesh) in assets {
        let path = dir.join(name);
        let f = std::fs::File::create(&path)?;
        write_stl_ascii(std::io::BufWriter::new(f), &mesh, name)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
