//! A YAML-subset parser.
//!
//! Supports the constructs the paper's configuration files (Fig. 9) use:
//!
//! * block mappings (`key: value` / `key:` + indented block),
//! * block sequences (`- item`, including compact `- key: value` items),
//! * inline sequences (`[a, b, c]`, trailing comma tolerated),
//! * scalars: double/single-quoted strings, booleans, integers, floats,
//!   `null`/`~`, plain strings,
//! * `#` comments (outside quotes) and blank lines,
//! * indentation-based nesting (spaces only; tabs are rejected).
//!
//! Not supported (and rejected or treated as plain text): anchors, aliases,
//! multi-document streams, block scalars (`|`/`>`), flow mappings.

use std::collections::VecDeque;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `~` / empty value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Mapping with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in a mapping.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a sequence slice.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The mapping entries.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based source line (0 when not line-specific).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for YamlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "yaml error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

fn err(line: usize, message: impl Into<String>) -> YamlError {
    YamlError {
        line,
        message: message.into(),
    }
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    number: usize,
}

/// Parses a YAML document into a [`Value`].
pub fn parse_yaml(source: &str) -> Result<Value, YamlError> {
    let mut lines: VecDeque<Line> = VecDeque::new();
    for (i, raw) in source.lines().enumerate() {
        if raw.contains('\t') {
            return Err(err(i + 1, "tabs are not allowed for indentation"));
        }
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        lines.push_back(Line {
            indent,
            text: trimmed.trim_start().to_string(),
            number: i + 1,
        });
    }
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let indent = lines[0].indent;
    let value = parse_node(&mut lines, indent)?;
    if let Some(extra) = lines.front() {
        return Err(err(extra.number, "unexpected content after document"));
    }
    Ok(value)
}

/// Removes a `#` comment that is not inside quotes.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_single = false;
    let mut in_double = false;
    for ch in line.chars() {
        match ch {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => break,
            _ => {}
        }
        out.push(ch);
    }
    out
}

fn parse_node(lines: &mut VecDeque<Line>, indent: usize) -> Result<Value, YamlError> {
    let Some(first) = lines.front() else {
        return Ok(Value::Null);
    };
    if first.indent != indent {
        return Err(err(
            first.number,
            format!("expected indentation {indent}, found {}", first.indent),
        ));
    }
    if first.text.starts_with("- ") || first.text == "-" {
        parse_seq(lines, indent)
    } else if split_key(&first.text).is_some() {
        parse_map(lines, indent)
    } else {
        // A bare scalar document/nested scalar.
        let line = lines.pop_front().expect("peeked");
        Ok(parse_scalar(&line.text, line.number)?)
    }
}

fn parse_map(lines: &mut VecDeque<Line>, indent: usize) -> Result<Value, YamlError> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    while let Some(front) = lines.front() {
        if front.indent < indent {
            break;
        }
        if front.indent > indent {
            return Err(err(front.number, "unexpected deeper indentation"));
        }
        if front.text.starts_with("- ") || front.text == "-" {
            break; // sibling sequence: belongs to the caller
        }
        let Some((key, rest)) = split_key(&front.text) else {
            return Err(err(
                front.number,
                format!("expected 'key: value', got '{}'", front.text),
            ));
        };
        let number = front.number;
        let key = key.to_string();
        let rest = rest.to_string();
        lines.pop_front();
        if entries.iter().any(|(k, _)| *k == key) {
            return Err(err(number, format!("duplicate key '{key}'")));
        }
        let value = if rest.is_empty() {
            match lines.front() {
                Some(next) if next.indent > indent => {
                    let child_indent = next.indent;
                    parse_node(lines, child_indent)?
                }
                // Common style: sequence dashes at the key's own column
                // still belong to the key (YAML semantics).
                Some(next)
                    if next.indent == indent
                        && (next.text.starts_with("- ") || next.text == "-") =>
                {
                    parse_seq(lines, indent)?
                }
                _ => Value::Null,
            }
        } else {
            parse_scalar(&rest, number)?
        };
        entries.push((key, value));
    }
    Ok(Value::Map(entries))
}

fn parse_seq(lines: &mut VecDeque<Line>, indent: usize) -> Result<Value, YamlError> {
    let mut items = Vec::new();
    while let Some(front) = lines.front() {
        if front.indent != indent || !(front.text.starts_with("- ") || front.text == "-") {
            if front.indent > indent {
                return Err(err(
                    front.number,
                    "unexpected deeper indentation in sequence",
                ));
            }
            break;
        }
        let line = lines.pop_front().expect("peeked");
        let rest = line.text[1..].trim_start().to_string();
        // Column where the item's content starts (YAML compact notation).
        let content_col = line.indent + (line.text.len() - rest.len());
        if rest.is_empty() {
            // Item is a nested block (or null).
            match lines.front() {
                Some(next) if next.indent > indent => {
                    let child_indent = next.indent;
                    items.push(parse_node(lines, child_indent)?);
                }
                _ => items.push(Value::Null),
            }
        } else if split_key(&rest).is_some() {
            // Compact map item: re-inject the content as a synthetic line at
            // its true column, then parse the map at that indentation.
            lines.push_front(Line {
                indent: content_col,
                text: rest,
                number: line.number,
            });
            items.push(parse_map(lines, content_col)?);
        } else {
            items.push(parse_scalar(&rest, line.number)?);
        }
    }
    Ok(Value::Seq(items))
}

/// Splits `key: rest` at the first top-level colon; `None` when the line is
/// not a mapping entry.
fn split_key(text: &str) -> Option<(&str, &str)> {
    let mut in_single = false;
    let mut in_double = false;
    for (i, ch) in text.char_indices() {
        match ch {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let rest = &text[i + 1..];
                // A mapping colon must be followed by space/end (so plain
                // scalars like `12:30:00` are not split).
                if rest.is_empty() || rest.starts_with(' ') {
                    let key = text[..i].trim();
                    if key.is_empty() {
                        return None;
                    }
                    return Some((key, rest.trim()));
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, YamlError> {
    let t = text.trim();
    if t.is_empty() || t == "~" || t.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    // Quoted strings.
    if (t.starts_with('"') && t.ends_with('"') && t.len() >= 2)
        || (t.starts_with('\'') && t.ends_with('\'') && t.len() >= 2)
    {
        return Ok(Value::Str(t[1..t.len() - 1].to_string()));
    }
    if t.starts_with('[') {
        if !t.ends_with(']') {
            return Err(err(line, "unterminated inline sequence"));
        }
        let inner = &t[1..t.len() - 1];
        let mut items = Vec::new();
        for piece in split_inline(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_scalar(piece, line)?);
        }
        return Ok(Value::Seq(items));
    }
    match t {
        "true" | "True" | "TRUE" => return Ok(Value::Bool(true)),
        "false" | "False" | "FALSE" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = t.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Ok(Value::Str(t.to_string()))
}

/// Splits inline-sequence content on top-level commas (quotes respected).
fn split_inline(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_single = false;
    let mut in_double = false;
    for (i, ch) in inner.char_indices() {
        match ch {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ',' if !in_single && !in_double => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_yaml("42").unwrap(), Value::Int(42));
        assert_eq!(parse_yaml("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_yaml("0.01").unwrap(), Value::Float(0.01));
        assert_eq!(parse_yaml("1e-3").unwrap(), Value::Float(1e-3));
        assert_eq!(parse_yaml("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_yaml("False").unwrap(), Value::Bool(false));
        assert_eq!(parse_yaml("~").unwrap(), Value::Null);
        assert_eq!(parse_yaml("").unwrap(), Value::Null);
        assert_eq!(
            parse_yaml("hello world").unwrap(),
            Value::Str("hello world".into())
        );
        assert_eq!(
            parse_yaml("\"quoted: text\"").unwrap(),
            Value::Str("quoted: text".into())
        );
        assert_eq!(parse_yaml("'single'").unwrap(), Value::Str("single".into()));
    }

    #[test]
    fn simple_map() {
        let v = parse_yaml("lr: 0.01\nn_epoch: 1000\nname: \"test\"").unwrap();
        assert_eq!(v.get("lr").unwrap().as_f64(), Some(0.01));
        assert_eq!(v.get("n_epoch").unwrap().as_i64(), Some(1000));
        assert_eq!(v.get("name").unwrap().as_str(), Some("test"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn nested_maps() {
        let src = "container:\n    path: \"cone.stl\"\nparams:\n    lr: 0.01\n    patience: 50\n";
        let v = parse_yaml(src).unwrap();
        let container = v.get("container").unwrap();
        assert_eq!(container.get("path").unwrap().as_str(), Some("cone.stl"));
        assert_eq!(
            v.get("params").unwrap().get("patience").unwrap().as_i64(),
            Some(50)
        );
    }

    #[test]
    fn block_sequence_of_scalars() {
        let v = parse_yaml("items:\n  - 1\n  - 2\n  - three\n").unwrap();
        let seq = v.get("items").unwrap().as_seq().unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[2].as_str(), Some("three"));
    }

    #[test]
    fn compact_sequence_of_maps() {
        let src = "sets:\n  - radius_distribution: \"uniform\"\n    radius_min: 0.05\n    radius_max: 0.08\n  - radius_distribution: \"normal\"\n    radius_mean: 0.04\n";
        let v = parse_yaml(src).unwrap();
        let sets = v.get("sets").unwrap().as_seq().unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].get("radius_min").unwrap().as_f64(), Some(0.05));
        assert_eq!(
            sets[1].get("radius_distribution").unwrap().as_str(),
            Some("normal")
        );
    }

    #[test]
    fn inline_sequences_with_trailing_comma() {
        let v = parse_yaml("props: [0.0, 1.0,]").unwrap();
        assert_eq!(
            v.get("props").unwrap(),
            &Value::Seq(vec![Value::Float(0.0), Value::Float(1.0)])
        );
        let v = parse_yaml("mix: [1, \"two\", 3.5]").unwrap();
        let seq = v.get("mix").unwrap().as_seq().unwrap();
        assert_eq!(seq[1].as_str(), Some("two"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# header comment\nlr: 0.01  # trailing comment\n\n  \npatience: 50\nname: \"has # inside\"\n";
        let v = parse_yaml(src).unwrap();
        assert_eq!(v.get("lr").unwrap().as_f64(), Some(0.01));
        assert_eq!(v.get("patience").unwrap().as_i64(), Some(50));
        assert_eq!(v.get("name").unwrap().as_str(), Some("has # inside"));
    }

    #[test]
    fn null_values_for_empty_keys() {
        let v = parse_yaml("a:\nb: 1").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Null));
    }

    #[test]
    fn paper_figure9_configuration_parses() {
        let src = r#"
container:
    path: "cone.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 1000
    patience: 50
    verbosity: 10
gravity_axis: z
particle_sets:
    - radius_distribution: "uniform"
      radius_min: 0.05
      radius_max: 0.08
    - radius_distribution: "normal"
      radius_mean: 0.04
      radius_std_dev: 0.005
zones:
    - n_particles: 200
      location:
          shape:
              path: "sphere.stl"
      set_proportions: [0.0, 1.0,]
    - n_particles: 300
      location:
          slice:
              axis: 2
              min_bound: 0.8
              max_bound: 1.5
      set_proportions: [1.0, 0.0]
"#;
        let v = parse_yaml(src).unwrap();
        assert_eq!(
            v.get("algorithm").unwrap().as_str(),
            Some("COLLECTIVE_ARRANGEMENT")
        );
        assert_eq!(v.get("gravity_axis").unwrap().as_str(), Some("z"));
        let zones = v.get("zones").unwrap().as_seq().unwrap();
        assert_eq!(zones.len(), 2);
        assert_eq!(zones[0].get("n_particles").unwrap().as_i64(), Some(200));
        let slice = zones[1].get("location").unwrap().get("slice").unwrap();
        assert_eq!(slice.get("axis").unwrap().as_i64(), Some(2));
        assert_eq!(slice.get("min_bound").unwrap().as_f64(), Some(0.8));
        let props = zones[0].get("set_proportions").unwrap().as_seq().unwrap();
        assert_eq!(props.len(), 2);
    }

    #[test]
    fn plain_scalar_with_colons_not_split() {
        let v = parse_yaml("time: 12:30:00").unwrap();
        assert_eq!(v.get("time").unwrap().as_str(), Some("12:30:00"));
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = parse_yaml("a: 1\n\tb: 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("tab"));

        let e = parse_yaml("a: [1, 2").unwrap_err();
        assert!(e.message.contains("unterminated"));

        let e = parse_yaml("a: 1\na: 2").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn never_panics_on_adversarial_inputs() {
        for src in [
            ":",
            ": :",
            "- - -",
            "-",
            "a:\n      b: 1\n  c: 2",
            "[[[",
            "]]]",
            "a: ]",
            "'unterminated",
            "- a: 1\n- b:\n  - c\n",
            "x:\n- 1\n- 2", // sequence at same indent as key
        ] {
            let _ = parse_yaml(src); // must return, not panic
        }
    }

    #[test]
    fn sequence_at_parent_indent_belongs_to_key() {
        // Common YAML style: the sequence dash at the same column as the key.
        let v = parse_yaml("x:\n- 1\n- 2\ny: 3\n").unwrap();
        assert_eq!(
            v.get("x").unwrap(),
            &Value::Seq(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(v.get("y").unwrap().as_i64(), Some(3));
    }
}
