//! Serializing configurations back to YAML.
//!
//! Useful for generating configuration files programmatically (the bench
//! harness and examples build scenarios in code and persist them) and for
//! verifying the parser by round-trip.

use std::fmt::Write;

use crate::schema::{
    AlgoParams, ConsoleLevel, LocationConfig, NeighborConfig, PackingConfig, ParticleSetConfig,
    ServerConfig, TelemetryConfig,
};

fn yaml_list<T: std::fmt::Display>(xs: &[T]) -> String {
    let rendered: Vec<String> = xs.iter().map(T::to_string).collect();
    format!("[{}]", rendered.join(", "))
}

/// Renders a configuration as YAML accepted by [`crate::PackingConfig::from_str`].
pub fn to_yaml(cfg: &PackingConfig) -> String {
    let mut s = String::new();
    writeln!(s, "container:").unwrap();
    writeln!(s, "    path: \"{}\"", cfg.container_path.display()).unwrap();
    writeln!(s, "algorithm: \"{}\"", cfg.algorithm).unwrap();
    let AlgoParams {
        lr,
        n_epoch,
        patience,
        verbosity,
        batch_size,
        seed,
        threads,
        kernel,
        tiles,
    } = cfg.params;
    writeln!(s, "params:").unwrap();
    writeln!(s, "    lr: {lr}").unwrap();
    writeln!(s, "    n_epoch: {n_epoch}").unwrap();
    writeln!(s, "    patience: {patience}").unwrap();
    writeln!(s, "    verbosity: {verbosity}").unwrap();
    writeln!(s, "    batch_size: {batch_size}").unwrap();
    writeln!(s, "    seed: {seed}").unwrap();
    writeln!(s, "    threads: {threads}").unwrap();
    writeln!(s, "    kernel: \"{}\"", kernel.name()).unwrap();
    writeln!(s, "    tiles: {tiles}").unwrap();
    let axis = match cfg.gravity_axis {
        adampack_geometry::Axis::X => "x",
        adampack_geometry::Axis::Y => "y",
        _ => "z",
    };
    writeln!(s, "gravity_axis: {axis}").unwrap();
    if cfg.neighbor != NeighborConfig::default() {
        let strategy = match cfg.neighbor.strategy {
            adampack_core::NeighborStrategy::Auto => "auto",
            adampack_core::NeighborStrategy::Verlet => "verlet",
            adampack_core::NeighborStrategy::Grid => "grid",
            adampack_core::NeighborStrategy::Naive => "naive",
        };
        writeln!(s, "neighbor:").unwrap();
        writeln!(s, "    strategy: \"{strategy}\"").unwrap();
        writeln!(s, "    skin_factor: {}", cfg.neighbor.skin_factor).unwrap();
        writeln!(s, "    order: \"{}\"", cfg.neighbor.order.name()).unwrap();
    }
    if cfg.telemetry != TelemetryConfig::default() {
        writeln!(s, "telemetry:").unwrap();
        match cfg.telemetry.level {
            ConsoleLevel::Auto => {}
            ConsoleLevel::Off => writeln!(s, "    level: \"off\"").unwrap(),
            ConsoleLevel::Fixed(level) => writeln!(s, "    level: \"{}\"", level.name()).unwrap(),
        }
        if let Some(path) = &cfg.telemetry.trace_out {
            writeln!(s, "    trace_out: \"{}\"", path.display()).unwrap();
        }
        if let Some(path) = &cfg.telemetry.metrics_out {
            writeln!(s, "    metrics_out: \"{}\"", path.display()).unwrap();
        }
        if !cfg.telemetry.metrics {
            writeln!(s, "    metrics: false").unwrap();
        }
        if let Some(path) = &cfg.telemetry.timeline_out {
            writeln!(s, "    timeline_out: \"{}\"", path.display()).unwrap();
        }
        if cfg.telemetry.diagnostics.enabled() {
            writeln!(
                s,
                "    diagnostics: \"{}\"",
                cfg.telemetry.diagnostics.name()
            )
            .unwrap();
        }
    }
    if let Some(ck) = &cfg.checkpoint {
        writeln!(s, "checkpoint:").unwrap();
        writeln!(s, "    path: \"{}\"", ck.path.display()).unwrap();
        writeln!(s, "    every_steps: {}", ck.every_steps).unwrap();
        writeln!(s, "    keep_last: {}", ck.keep_last).unwrap();
    }
    if let Some(b) = &cfg.batch {
        writeln!(s, "batch:").unwrap();
        if !b.seeds.is_empty() {
            writeln!(s, "    seeds: {}", yaml_list(&b.seeds)).unwrap();
        }
        if !b.lrs.is_empty() {
            writeln!(s, "    lrs: {}", yaml_list(&b.lrs)).unwrap();
        }
        if !b.radius_scales.is_empty() {
            writeln!(s, "    radius_scales: {}", yaml_list(&b.radius_scales)).unwrap();
        }
    }
    writeln!(s, "particle_sets:").unwrap();
    for set in &cfg.particle_sets {
        match set {
            ParticleSetConfig::Constant { value } => {
                writeln!(s, "    - radius_distribution: \"constant\"").unwrap();
                writeln!(s, "      radius_value: {value}").unwrap();
            }
            ParticleSetConfig::Uniform { min, max } => {
                writeln!(s, "    - radius_distribution: \"uniform\"").unwrap();
                writeln!(s, "      radius_min: {min}").unwrap();
                writeln!(s, "      radius_max: {max}").unwrap();
            }
            ParticleSetConfig::Normal { mean, std_dev } => {
                writeln!(s, "    - radius_distribution: \"normal\"").unwrap();
                writeln!(s, "      radius_mean: {mean}").unwrap();
                writeln!(s, "      radius_std_dev: {std_dev}").unwrap();
            }
        }
    }
    if !cfg.zones.is_empty() {
        writeln!(s, "zones:").unwrap();
        for z in &cfg.zones {
            writeln!(s, "    - n_particles: {}", z.n_particles).unwrap();
            match &z.location {
                LocationConfig::Slice { axis, min, max } => {
                    let a = match axis {
                        adampack_geometry::Axis::X => "x",
                        adampack_geometry::Axis::Y => "y",
                        _ => "z",
                    };
                    writeln!(s, "      location:").unwrap();
                    writeln!(s, "          slice:").unwrap();
                    writeln!(s, "              axis: {a}").unwrap();
                    writeln!(s, "              min_bound: {min}").unwrap();
                    writeln!(s, "              max_bound: {max}").unwrap();
                }
                LocationConfig::Shape { path } => {
                    writeln!(s, "      location:").unwrap();
                    writeln!(s, "          shape:").unwrap();
                    writeln!(s, "              path: \"{}\"", path.display()).unwrap();
                }
                LocationConfig::Everywhere => {}
            }
            let props: Vec<String> = z.set_proportions.iter().map(f64::to_string).collect();
            writeln!(s, "      set_proportions: [{}]", props.join(", ")).unwrap();
        }
    }
    s
}

/// Renders a `server:` limits block as YAML accepted by
/// [`ServerConfig::from_yaml`] (every field spelled out, so a written file
/// documents the effective limits).
pub fn server_to_yaml(cfg: &ServerConfig) -> String {
    let ServerConfig {
        max_body_bytes,
        read_timeout_ms,
        queue_depth,
        memory_budget_bytes,
        cache_cap_bytes,
        job_deadline_s,
        job_step_ceiling,
    } = *cfg;
    let mut s = String::new();
    writeln!(s, "server:").unwrap();
    writeln!(s, "    max_body_bytes: {max_body_bytes}").unwrap();
    writeln!(s, "    read_timeout_ms: {read_timeout_ms}").unwrap();
    writeln!(s, "    queue_depth: {queue_depth}").unwrap();
    writeln!(s, "    memory_budget_bytes: {memory_budget_bytes}").unwrap();
    writeln!(s, "    cache_cap_bytes: {cache_cap_bytes}").unwrap();
    writeln!(s, "    job_deadline_s: {job_deadline_s}").unwrap();
    writeln!(s, "    job_step_ceiling: {job_step_ceiling}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{BatchConfig, CheckpointConfig, ZoneConfig};
    use adampack_geometry::Axis;
    use std::path::PathBuf;

    fn sample() -> PackingConfig {
        PackingConfig {
            container_path: PathBuf::from("cone.stl"),
            algorithm: "COLLECTIVE_ARRANGEMENT".into(),
            params: AlgoParams {
                lr: 0.01,
                n_epoch: 1000,
                patience: 50,
                verbosity: 10,
                batch_size: 500,
                seed: 7,
                threads: 4,
                kernel: adampack_core::Kernel::Scalar,
                tiles: 6,
            },
            gravity_axis: Axis::Z,
            neighbor: NeighborConfig {
                strategy: adampack_core::NeighborStrategy::Verlet,
                skin_factor: 0.25,
                order: adampack_core::SweepOrder::Strided,
            },
            telemetry: TelemetryConfig {
                level: ConsoleLevel::Fixed(adampack_telemetry::Level::Debug),
                trace_out: Some(PathBuf::from("trace.jsonl")),
                metrics_out: Some(PathBuf::from("metrics.prom")),
                metrics: false,
                timeline_out: Some(PathBuf::from("timeline.json")),
                diagnostics: adampack_telemetry::DiagMode::Events,
            },
            checkpoint: Some(CheckpointConfig {
                path: PathBuf::from("run.ckpt"),
                every_steps: 250,
                keep_last: 3,
            }),
            batch: Some(BatchConfig {
                seeds: vec![7, 11],
                lrs: vec![0.01, 0.02],
                radius_scales: vec![],
            }),
            particle_sets: vec![
                ParticleSetConfig::Uniform {
                    min: 0.05,
                    max: 0.08,
                },
                ParticleSetConfig::Normal {
                    mean: 0.04,
                    std_dev: 0.005,
                },
                ParticleSetConfig::Constant { value: 0.1 },
            ],
            zones: vec![
                ZoneConfig {
                    n_particles: 200,
                    location: LocationConfig::Shape {
                        path: PathBuf::from("sphere.stl"),
                    },
                    set_proportions: vec![0.0, 1.0, 0.0],
                },
                ZoneConfig {
                    n_particles: 300,
                    location: LocationConfig::Slice {
                        axis: Axis::Z,
                        min: 0.8,
                        max: 1.5,
                    },
                    set_proportions: vec![1.0, 0.0, 0.0],
                },
            ],
        }
    }

    #[test]
    fn round_trip_through_yaml() {
        let cfg = sample();
        let yaml = to_yaml(&cfg);
        let back = PackingConfig::from_str(&yaml).expect("serialized config must parse");
        assert_eq!(back, cfg);
    }

    #[test]
    fn round_trip_without_zones() {
        let mut cfg = sample();
        cfg.zones.clear();
        let yaml = to_yaml(&cfg);
        assert!(!yaml.contains("zones:"));
        let back = PackingConfig::from_str(&yaml).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn default_telemetry_is_omitted() {
        let mut cfg = sample();
        cfg.telemetry = TelemetryConfig::default();
        let yaml = to_yaml(&cfg);
        assert!(!yaml.contains("telemetry:"));
        let back = PackingConfig::from_str(&yaml).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn batch_block_round_trips_and_is_omitted_when_absent() {
        let cfg = sample();
        let yaml = to_yaml(&cfg);
        assert!(yaml.contains("batch:"));
        assert!(yaml.contains("seeds: [7, 11]"));
        assert!(yaml.contains("lrs: [0.01, 0.02]"));
        assert!(!yaml.contains("radius_scales:"));
        let back = PackingConfig::from_str(&yaml).unwrap();
        assert_eq!(back.batch, cfg.batch);

        let mut cfg = cfg;
        cfg.batch = None;
        let yaml = to_yaml(&cfg);
        assert!(!yaml.contains("batch:"));
        assert_eq!(PackingConfig::from_str(&yaml).unwrap(), cfg);
    }

    #[test]
    fn off_level_round_trips() {
        let mut cfg = sample();
        cfg.telemetry = TelemetryConfig {
            level: ConsoleLevel::Off,
            ..TelemetryConfig::default()
        };
        let yaml = to_yaml(&cfg);
        let back = PackingConfig::from_str(&yaml).unwrap();
        assert_eq!(back.telemetry.level, ConsoleLevel::Off);
    }

    #[test]
    fn server_block_round_trips() {
        let cfg = ServerConfig {
            max_body_bytes: 123_456,
            read_timeout_ms: 2_500,
            queue_depth: 7,
            memory_budget_bytes: 9_000_000,
            cache_cap_bytes: 4_096,
            job_deadline_s: 300,
            job_step_ceiling: 50_000,
        };
        let yaml = server_to_yaml(&cfg);
        assert_eq!(ServerConfig::from_yaml(&yaml).unwrap(), cfg);
    }

    #[test]
    fn server_defaults_round_trip_and_absent_block_is_default() {
        let cfg = ServerConfig::default();
        assert_eq!(
            ServerConfig::from_yaml(&server_to_yaml(&cfg)).unwrap(),
            cfg,
            "spelled-out defaults must parse back to the defaults"
        );
        assert_eq!(
            ServerConfig::from_yaml("container:\n    path: \"box.stl\"\n").unwrap(),
            cfg,
            "a document without a server: block means defaults"
        );
    }

    #[test]
    fn server_bad_values_are_config_errors() {
        for (key, bad) in [
            ("max_body_bytes", "0"),
            ("max_body_bytes", "-1"),
            ("read_timeout_ms", "0"),
            ("queue_depth", "0"),
            ("memory_budget_bytes", "-5"),
            ("cache_cap_bytes", "-1"),
            ("job_deadline_s", "-2"),
            ("job_step_ceiling", "-9"),
            ("queue_depth", "\"many\""),
        ] {
            let yaml = format!("server:\n    {key}: {bad}\n");
            let err = ServerConfig::from_yaml(&yaml).expect_err(&yaml);
            assert!(err.to_string().contains(key), "{key}: {err}");
        }
        // A scalar block (e.g. unsupported flow-style `{…}`) must error,
        // not silently fall back to defaults.
        let err = ServerConfig::from_yaml("server: {queue_depth: 1}\n").expect_err("scalar block");
        assert!(err.to_string().contains("mapping"), "{err}");
    }

    #[test]
    fn axes_serialize_by_letter() {
        let mut cfg = sample();
        cfg.gravity_axis = Axis::X;
        let yaml = to_yaml(&cfg);
        assert!(yaml.contains("gravity_axis: x"));
        assert_eq!(
            PackingConfig::from_str(&yaml).unwrap().gravity_axis,
            Axis::X
        );
    }
}
