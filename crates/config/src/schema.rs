//! The typed packing configuration (the paper's Fig. 9 format).

use std::path::{Path, PathBuf};

use adampack_core::{
    Kernel, LrPolicy, NeighborParams, NeighborStrategy, PackingParams, Psd, SweepOrder, ZoneRegion,
    ZoneSpec,
};
use adampack_geometry::{Axis, ConvexHull};
use adampack_telemetry::{DiagMode, Level};

use crate::yaml::{parse_yaml, Value, YamlError};

/// Configuration-level errors.
#[derive(Debug)]
pub enum ConfigError {
    /// The YAML itself failed to parse.
    Yaml(YamlError),
    /// A field is missing or has the wrong type/value.
    Field(String),
    /// Underlying I/O failure (file loading).
    Io(std::io::Error),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Yaml(e) => write!(f, "{e}"),
            ConfigError::Field(m) => write!(f, "config error: {m}"),
            ConfigError::Io(e) => write!(f, "config i/o error: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<YamlError> for ConfigError {
    fn from(e: YamlError) -> Self {
        ConfigError::Yaml(e)
    }
}

impl From<std::io::Error> for ConfigError {
    fn from(e: std::io::Error) -> Self {
        ConfigError::Io(e)
    }
}

fn field(msg: impl Into<String>) -> ConfigError {
    ConfigError::Field(msg.into())
}

/// The `params:` block (optimizer settings).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgoParams {
    /// Initial learning rate (`lr`), default 0.01.
    pub lr: f64,
    /// Maximum optimizer steps per batch (`n_epoch`), default 2000.
    pub n_epoch: usize,
    /// Patience (`patience`), default 50.
    pub patience: usize,
    /// Progress-print period (`verbosity`), default 0 = silent.
    pub verbosity: usize,
    /// Batch size (`batch_size`), default 500.
    pub batch_size: usize,
    /// RNG seed (`seed`), default 0.
    pub seed: u64,
    /// Worker threads for the parallel phases (`threads`), default 0 =
    /// one per hardware thread. Results are bitwise identical for any
    /// value; this is purely a performance knob.
    pub threads: usize,
    /// Arithmetic kernel for the hot loops (`kernel`): `simd` (default),
    /// `scalar` or `simd_mixed`. `simd` and `scalar` produce bitwise
    /// identical packings; `simd_mixed` rejects pairs in f32 and is only
    /// reproducible against itself (within the documented budget of the
    /// exact kernels).
    pub kernel: Kernel,
    /// Gravity-axis tiling (`tiles`), default 1 = monolithic. With `tiles:
    /// T > 1` the container's altitude range is split into T slabs and
    /// settled slabs more than one slab below the bed surface are retired
    /// from the resident hot set. Purely a memory knob: the packing is
    /// bitwise identical to the untiled run.
    pub tiles: usize,
}

impl Default for AlgoParams {
    fn default() -> Self {
        AlgoParams {
            lr: 0.01,
            n_epoch: 2000,
            patience: 50,
            verbosity: 0,
            batch_size: 500,
            seed: 0,
            threads: 0,
            kernel: Kernel::default(),
            tiles: 1,
        }
    }
}

/// The `neighbor:` block (pair-search pipeline knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborConfig {
    /// `strategy:` — `auto` (default), `verlet`, `grid` or `naive`.
    pub strategy: NeighborStrategy,
    /// `skin_factor:` — Verlet skin as a fraction of the largest batch
    /// radius, default 0.4.
    pub skin_factor: f64,
    /// `order:` — pair-sweep traversal order, `auto` (default, measures
    /// each batch), `morton` or `strided`. Bitwise identical results;
    /// purely a cache-locality knob.
    pub order: SweepOrder,
}

impl Default for NeighborConfig {
    fn default() -> Self {
        let p = NeighborParams::default();
        NeighborConfig {
            strategy: p.strategy,
            skin_factor: p.skin_factor,
            order: p.order,
        }
    }
}

impl NeighborConfig {
    /// The runtime neighbor parameters.
    pub fn to_params(self) -> NeighborParams {
        NeighborParams {
            strategy: self.strategy,
            skin_factor: self.skin_factor,
            order: self.order,
        }
    }
}

/// Console log-level selection (`telemetry: level:`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsoleLevel {
    /// Derive the level from `params.verbosity`: `info` normally, `debug`
    /// when the verbosity period is positive.
    #[default]
    Auto,
    /// Suppress all console logging (`level: off`).
    Off,
    /// A fixed explicit level.
    Fixed(Level),
}

impl ConsoleLevel {
    /// The effective maximum level given the configured progress-print
    /// period (`params.verbosity`).
    pub fn resolve(self, verbosity: usize) -> Option<Level> {
        match self {
            ConsoleLevel::Auto => Some(if verbosity > 0 {
                Level::Debug
            } else {
                Level::Info
            }),
            ConsoleLevel::Off => None,
            ConsoleLevel::Fixed(level) => Some(level),
        }
    }
}

/// The `telemetry:` block (observability sinks and console level).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// `level:` — console log level (`error|warn|info|debug|trace|off`);
    /// absent means [`ConsoleLevel::Auto`].
    pub level: ConsoleLevel,
    /// `trace_out:` — when set, a JSONL per-step trace is streamed to this
    /// file (not resolved against the config directory: output paths are
    /// relative to the working directory).
    pub trace_out: Option<PathBuf>,
    /// `metrics_out:` — when set, a Prometheus-style text snapshot of all
    /// counters and histograms is written here after the run.
    pub metrics_out: Option<PathBuf>,
    /// `metrics:` — record counters/histograms/spans (default `true`;
    /// disable to benchmark the telemetry-off configuration).
    pub metrics: bool,
    /// `timeline_out:` — when set, a Chrome-trace timeline of the run's
    /// hierarchical spans is written here (load in `chrome://tracing` or
    /// Perfetto). Enables the span timeline for the run.
    pub timeline_out: Option<PathBuf>,
    /// `diagnostics:` — convergence diagnostics (`off|summary|events`),
    /// default `off`. `summary` adds a convergence row to the quality
    /// report; `events` additionally emits per-batch instant events on the
    /// timeline.
    pub diagnostics: DiagMode,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            level: ConsoleLevel::Auto,
            trace_out: None,
            metrics_out: None,
            metrics: true,
            timeline_out: None,
            diagnostics: DiagMode::Off,
        }
    }
}

/// The `checkpoint:` block (crash-resume knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// `path:` — checkpoint file. Like the telemetry outputs this is *not*
    /// resolved against the config directory: output paths are relative to
    /// the working directory.
    pub path: PathBuf,
    /// `every_steps:` — optimizer steps between checkpoints, default 500.
    pub every_steps: usize,
    /// `keep_last:` — checkpoint files retained (current + rotated
    /// history), default 2.
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// Default cadence when the block gives only a path.
    pub const DEFAULT_EVERY_STEPS: usize = 500;
    /// Default retention when the block gives only a path.
    pub const DEFAULT_KEEP_LAST: usize = 2;
}

/// The `batch:` block (multi-system sweep grids).
///
/// Each axis lists values to sweep; the batched engine packs the full
/// cartesian product `seeds × lrs × radius_scales` as independent systems
/// in one process. An empty axis means "use the base value" (`params.seed`,
/// `params.lr`, or an unscaled PSD respectively), so any subset of axes can
/// be swept.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchConfig {
    /// `seeds:` — RNG seeds to sweep; empty means the base `params.seed`.
    pub seeds: Vec<u64>,
    /// `lrs:` — initial learning rates to sweep; empty means `params.lr`.
    pub lrs: Vec<f64>,
    /// `radius_scales:` — PSD radius multipliers; empty means no scaling.
    pub radius_scales: Vec<f64>,
}

/// One expanded system of a batched sweep (a point of the cartesian grid).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSystem {
    /// Stable system label (`s{seed}_lr{lr}` plus `_x{scale}` when the
    /// sweep has a radius-scale axis) — used for output file stems,
    /// checkpoint sections and report lines.
    pub label: String,
    /// RNG seed for this system.
    pub seed: u64,
    /// Initial learning rate for this system.
    pub lr: f64,
    /// PSD radius multiplier for this system (1.0 = unscaled).
    pub radius_scale: f64,
}

impl BatchConfig {
    /// Hard cap on the expanded system count: a sweep larger than this is a
    /// config error (it almost certainly means a typo in a grid axis).
    pub const MAX_SYSTEMS: usize = 1024;

    /// Expands the grid into the labeled system list (cartesian product,
    /// seeds outermost, radius scales innermost — a deterministic order).
    pub fn expand(&self, base: &AlgoParams) -> Vec<BatchSystem> {
        let seeds: Vec<u64> = if self.seeds.is_empty() {
            vec![base.seed]
        } else {
            self.seeds.clone()
        };
        let lrs: Vec<f64> = if self.lrs.is_empty() {
            vec![base.lr]
        } else {
            self.lrs.clone()
        };
        let scaled = !self.radius_scales.is_empty();
        let scales: Vec<f64> = if scaled {
            self.radius_scales.clone()
        } else {
            vec![1.0]
        };
        let mut systems = Vec::with_capacity(seeds.len() * lrs.len() * scales.len());
        for &seed in &seeds {
            for &lr in &lrs {
                for &scale in &scales {
                    let mut label = format!("s{seed}_lr{lr}");
                    if scaled {
                        label.push_str(&format!("_x{scale}"));
                    }
                    systems.push(BatchSystem {
                        label,
                        seed,
                        lr,
                        radius_scale: scale,
                    });
                }
            }
        }
        systems
    }

    /// Checks the axis invariants shared by the YAML parser and the CLI
    /// sweep flags: positive finite rates/scales, no duplicate values per
    /// axis, expanded grid within [`BatchConfig::MAX_SYSTEMS`]. The YAML
    /// parser enforces these per element as it reads; CLI-supplied axes
    /// arrive pre-built and go through this instead.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.seeds.iter().enumerate() {
            if self.seeds[..i].contains(s) {
                return Err(format!("batch seeds: duplicate seed {s}"));
            }
        }
        for (key, axis) in [("lrs", &self.lrs), ("radius_scales", &self.radius_scales)] {
            for (i, &f) in axis.iter().enumerate() {
                if !(f > 0.0 && f.is_finite()) {
                    return Err(format!(
                        "batch {key}: value {f} must be positive and finite"
                    ));
                }
                if axis[..i].iter().any(|o| o.to_bits() == f.to_bits()) {
                    return Err(format!("batch {key}: duplicate value {f}"));
                }
            }
        }
        let count =
            self.seeds.len().max(1) * self.lrs.len().max(1) * self.radius_scales.len().max(1);
        if count > BatchConfig::MAX_SYSTEMS {
            return Err(format!(
                "batch sweep expands to {count} systems (max {})",
                BatchConfig::MAX_SYSTEMS
            ));
        }
        Ok(())
    }

    /// A stable one-line description of the sweep grid, mixed into the
    /// checkpoint fingerprint so a resume under a different sweep is
    /// rejected instead of silently diverging.
    pub fn descriptor(&self) -> String {
        fn join<T: std::fmt::Display>(xs: &[T]) -> String {
            xs.iter().map(T::to_string).collect::<Vec<_>>().join(",")
        }
        format!(
            "seeds=[{}]|lrs=[{}]|scales=[{}]",
            join(&self.seeds),
            join(&self.lrs),
            join(&self.radius_scales)
        )
    }
}

/// The `server:` block: resource limits for `adampack serve`.
///
/// Every limit that used to be a hard-coded constant in the HTTP layer is
/// a knob here, so operators can size the service to the box it runs on.
/// The block lives in its own YAML file (or alongside a packing config —
/// other top-level keys are ignored) and is loaded with `adampack serve
/// --config <file>`; individual CLI flags override field by field.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// `max_body_bytes:` — largest accepted request body (YAML configs);
    /// larger uploads are rejected with 413. Default 8 MiB.
    pub max_body_bytes: usize,
    /// `read_timeout_ms:` — socket read/write timeout per connection, the
    /// slow-loris bound. Default 10 000 ms.
    pub read_timeout_ms: u64,
    /// `queue_depth:` — bounded depth of each work-queue shard; a
    /// submission landing in a full shard is shed with 429. Default 64.
    pub queue_depth: usize,
    /// `memory_budget_bytes:` — global admission budget over the predicted
    /// peak bytes of queued + running jobs. A job predicted to exceed the
    /// whole budget alone is rejected with 413; one that merely does not
    /// fit *right now* is shed with 429 + Retry-After. 0 = unlimited.
    /// Default 2 GiB.
    pub memory_budget_bytes: u64,
    /// `cache_cap_bytes:` — size cap on the on-disk artifact/checkpoint
    /// store; least-recently-used evictable files are removed to stay
    /// under it. 0 = unlimited. Default 1 GiB.
    pub cache_cap_bytes: u64,
    /// `job_deadline_s:` — wall-clock budget per job, measured from the
    /// moment it is (re)scheduled and enforced at batch boundaries; an
    /// over-deadline job ends `expired` with its newest checkpoint kept.
    /// 0 = no deadline (the default).
    pub job_deadline_s: u64,
    /// `job_step_ceiling:` — optimizer-step budget per job, enforced at
    /// the same boundaries as the deadline. 0 = no ceiling (the default).
    pub job_step_ceiling: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout_ms: 10_000,
            queue_depth: 64,
            memory_budget_bytes: 2 * 1024 * 1024 * 1024,
            cache_cap_bytes: 1024 * 1024 * 1024,
            job_deadline_s: 0,
            job_step_ceiling: 0,
        }
    }
}

impl ServerConfig {
    /// Parses the `server:` block out of a YAML document. A document
    /// without the block yields the defaults (so `--config` accepts a
    /// plain packing config too); a malformed block is a config error.
    pub fn from_yaml(source: &str) -> Result<ServerConfig, ConfigError> {
        let root = parse_yaml(source)?;
        match root.get("server") {
            None => Ok(ServerConfig::default()),
            Some(block) => ServerConfig::from_value(block),
        }
    }

    /// Loads [`ServerConfig::from_yaml`] from a file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ServerConfig, ConfigError> {
        let text = std::fs::read_to_string(path.as_ref())?;
        ServerConfig::from_yaml(&text)
    }

    /// Parses one `server:` mapping.
    pub fn from_value(block: &Value) -> Result<ServerConfig, ConfigError> {
        // A scalar here is a malformed block (e.g. flow-style `{…}`, which
        // this parser does not speak); silently falling back to defaults
        // would mask the operator's intended limits.
        if !matches!(block, Value::Map(_)) {
            return Err(field(format!(
                "server: must be a mapping of limit keys, got {block:?}"
            )));
        }
        let mut cfg = ServerConfig::default();
        // Limits that must be positive: a zero body cap or queue depth
        // would refuse every request, a zero timeout every read.
        for (key, slot) in [
            ("max_body_bytes", &mut cfg.max_body_bytes),
            ("queue_depth", &mut cfg.queue_depth),
        ] {
            if let Some(v) = block.get(key) {
                let n = v.as_i64().filter(|&n| n > 0).ok_or_else(|| {
                    field(format!(
                        "server.{key} must be a positive integer, got {v:?}"
                    ))
                })?;
                *slot = n as usize;
            }
        }
        if let Some(v) = block.get("read_timeout_ms") {
            cfg.read_timeout_ms =
                v.as_i64()
                    .filter(|&n| n > 0)
                    .map(|n| n as u64)
                    .ok_or_else(|| {
                        field(format!(
                            "server.read_timeout_ms must be a positive integer, got {v:?}"
                        ))
                    })?;
        }
        // Budgets where 0 means "unlimited" / "disabled".
        for (key, slot) in [
            ("memory_budget_bytes", &mut cfg.memory_budget_bytes),
            ("cache_cap_bytes", &mut cfg.cache_cap_bytes),
            ("job_deadline_s", &mut cfg.job_deadline_s),
            ("job_step_ceiling", &mut cfg.job_step_ceiling),
        ] {
            if let Some(v) = block.get(key) {
                let n = v.as_i64().filter(|&n| n >= 0).ok_or_else(|| {
                    field(format!(
                        "server.{key} must be a non-negative integer, got {v:?}"
                    ))
                })?;
                *slot = n as u64;
            }
        }
        Ok(cfg)
    }
}

/// A `particle_sets:` entry.
#[derive(Debug, Clone, PartialEq)]
pub enum ParticleSetConfig {
    /// `radius_distribution: "constant"` with `radius_value`.
    Constant {
        /// The fixed radius.
        value: f64,
    },
    /// `radius_distribution: "uniform"` with `radius_min`/`radius_max`.
    Uniform {
        /// Smallest radius.
        min: f64,
        /// Largest radius.
        max: f64,
    },
    /// `radius_distribution: "normal"` with `radius_mean`/`radius_std_dev`.
    Normal {
        /// Mean radius.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
}

impl ParticleSetConfig {
    /// Converts to a runtime PSD (validates ranges).
    pub fn to_psd(&self) -> Psd {
        self.to_psd_scaled(1.0)
    }

    /// Converts to a runtime PSD with every radius parameter multiplied by
    /// `scale` (used by the `batch:` radius-scale sweep axis).
    pub fn to_psd_scaled(&self, scale: f64) -> Psd {
        match *self {
            ParticleSetConfig::Constant { value } => Psd::constant(value * scale),
            ParticleSetConfig::Uniform { min, max } => Psd::uniform(min * scale, max * scale),
            ParticleSetConfig::Normal { mean, std_dev } => {
                Psd::normal(mean * scale, std_dev * scale)
            }
        }
    }
}

/// A zone's `location:` block.
#[derive(Debug, Clone, PartialEq)]
pub enum LocationConfig {
    /// `slice:` with `axis` / `min_bound` / `max_bound`.
    Slice {
        /// Slicing axis.
        axis: Axis,
        /// Lower altitude bound.
        min: f64,
        /// Upper altitude bound.
        max: f64,
    },
    /// `shape:` with an STL `path`.
    Shape {
        /// Path to the zone's STL file (resolved relative to the config).
        path: PathBuf,
    },
    /// The whole container (no `location:` key).
    Everywhere,
}

/// A `zones:` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneConfig {
    /// Particle budget.
    pub n_particles: usize,
    /// Where to pack.
    pub location: LocationConfig,
    /// Relative weights over `particle_sets`.
    pub set_proportions: Vec<f64>,
}

/// A full packing configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingConfig {
    /// Container STL path (`container: path:`).
    pub container_path: PathBuf,
    /// Algorithm key (`algorithm:`), e.g. `COLLECTIVE_ARRANGEMENT`.
    pub algorithm: String,
    /// Optimizer parameters.
    pub params: AlgoParams,
    /// Gravity axis (`gravity_axis:`), default `z`.
    pub gravity_axis: Axis,
    /// Neighbor-search pipeline settings (`neighbor:`), defaulted.
    pub neighbor: NeighborConfig,
    /// Observability settings (`telemetry:`), defaulted.
    pub telemetry: TelemetryConfig,
    /// Crash-resume settings (`checkpoint:`); absent means no checkpoints.
    pub checkpoint: Option<CheckpointConfig>,
    /// Multi-system sweep grids (`batch:`); absent means a single system.
    pub batch: Option<BatchConfig>,
    /// Particle sets.
    pub particle_sets: Vec<ParticleSetConfig>,
    /// Zones (empty means: one implicit everywhere-zone must be provided by
    /// the caller).
    pub zones: Vec<ZoneConfig>,
}

impl std::str::FromStr for PackingConfig {
    type Err = ConfigError;

    fn from_str(source: &str) -> Result<PackingConfig, ConfigError> {
        PackingConfig::from_str(source)
    }
}

impl PackingConfig {
    /// Parses a configuration from YAML text (also available through the
    /// standard [`std::str::FromStr`] / `str::parse` interface).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(source: &str) -> Result<PackingConfig, ConfigError> {
        let root = parse_yaml(source)?;

        let container_path = root
            .get("container")
            .and_then(|c| c.get("path"))
            .and_then(Value::as_str)
            .ok_or_else(|| field("container.path is required"))?;

        let algorithm = root
            .get("algorithm")
            .and_then(Value::as_str)
            .unwrap_or("COLLECTIVE_ARRANGEMENT")
            .to_string();

        let mut params = AlgoParams::default();
        if let Some(p) = root.get("params") {
            if let Some(v) = p.get("lr").and_then(Value::as_f64) {
                if v <= 0.0 {
                    return Err(field(format!("params.lr must be positive, got {v}")));
                }
                params.lr = v;
            }
            if let Some(v) = p.get("n_epoch").and_then(Value::as_i64) {
                if v <= 0 {
                    return Err(field("params.n_epoch must be positive"));
                }
                params.n_epoch = v as usize;
            }
            if let Some(v) = p.get("patience").and_then(Value::as_i64) {
                if v <= 0 {
                    return Err(field("params.patience must be positive"));
                }
                params.patience = v as usize;
            }
            if let Some(v) = p.get("verbosity").and_then(Value::as_i64) {
                params.verbosity = v.max(0) as usize;
            }
            if let Some(v) = p.get("batch_size").and_then(Value::as_i64) {
                if v <= 0 {
                    return Err(field("params.batch_size must be positive"));
                }
                params.batch_size = v as usize;
            }
            if let Some(v) = p.get("seed").and_then(Value::as_i64) {
                params.seed = v as u64;
            }
            if let Some(v) = p.get("threads").and_then(Value::as_i64) {
                if v < 0 {
                    return Err(field("params.threads must be non-negative"));
                }
                params.threads = v as usize;
            }
            if let Some(v) = p.get("kernel").and_then(Value::as_str) {
                params.kernel = Kernel::parse(v).ok_or_else(|| {
                    field(format!(
                        "params.kernel: unknown kernel '{v}' \
                         (expected 'scalar', 'simd' or 'simd_mixed')"
                    ))
                })?;
            }
            if let Some(v) = p.get("tiles").and_then(Value::as_i64) {
                if v < 1 {
                    return Err(field(format!("params.tiles must be >= 1, got {v}")));
                }
                params.tiles = v as usize;
            }
        }

        let gravity_axis = match root.get("gravity_axis") {
            None => Axis::Z,
            Some(v) => match v {
                Value::Str(s) => Axis::parse(s)
                    .ok_or_else(|| field(format!("gravity_axis: unknown axis '{s}'")))?,
                Value::Int(i) => Axis::parse(&i.to_string())
                    .ok_or_else(|| field(format!("gravity_axis: unknown axis '{i}'")))?,
                // The paper: "in practice any direction can be used" —
                // accept an explicit up-vector `gravity_axis: [x, y, z]`.
                Value::Seq(seq) if seq.len() == 3 => {
                    let mut c = [0.0f64; 3];
                    for (slot, item) in c.iter_mut().zip(seq) {
                        *slot = item
                            .as_f64()
                            .ok_or_else(|| field("gravity_axis: vector entries must be numeric"))?;
                    }
                    Axis::from_vector(adampack_geometry::Vec3::new(c[0], c[1], c[2]))
                        .ok_or_else(|| field("gravity_axis: vector must be nonzero"))?
                        .canonicalize()
                }
                other => return Err(field(format!("gravity_axis: unexpected value {other:?}"))),
            },
        };

        let mut neighbor = NeighborConfig::default();
        if let Some(nb) = root.get("neighbor") {
            if let Some(v) = nb.get("strategy").and_then(Value::as_str) {
                neighbor.strategy = match v.to_ascii_lowercase().as_str() {
                    "auto" => NeighborStrategy::Auto,
                    "verlet" => NeighborStrategy::Verlet,
                    "grid" => NeighborStrategy::Grid,
                    "naive" => NeighborStrategy::Naive,
                    other => {
                        return Err(field(format!(
                            "neighbor.strategy: unknown strategy '{other}'"
                        )))
                    }
                };
            }
            if let Some(v) = nb.get("skin_factor").and_then(Value::as_f64) {
                if !(v > 0.0 && v.is_finite()) {
                    return Err(field(format!(
                        "neighbor.skin_factor must be positive and finite, got {v}"
                    )));
                }
                neighbor.skin_factor = v;
            }
            if let Some(v) = nb.get("order").and_then(Value::as_str) {
                neighbor.order = SweepOrder::parse(v).ok_or_else(|| {
                    field(format!(
                        "neighbor.order: unknown order '{v}' \
                         (expected 'auto', 'morton' or 'strided')"
                    ))
                })?;
            }
        }

        let mut telemetry = TelemetryConfig::default();
        if let Some(t) = root.get("telemetry") {
            if let Some(v) = t.get("level").and_then(Value::as_str) {
                telemetry.level = match Level::parse(v) {
                    Ok(Some(level)) => ConsoleLevel::Fixed(level),
                    Ok(None) => ConsoleLevel::Off,
                    Err(e) => return Err(field(format!("telemetry.level: {e}"))),
                };
            }
            if let Some(v) = t.get("trace_out").and_then(Value::as_str) {
                telemetry.trace_out = Some(PathBuf::from(v));
            }
            if let Some(v) = t.get("metrics_out").and_then(Value::as_str) {
                telemetry.metrics_out = Some(PathBuf::from(v));
            }
            if let Some(v) = t.get("metrics").and_then(Value::as_bool) {
                telemetry.metrics = v;
            }
            if let Some(v) = t.get("timeline_out").and_then(Value::as_str) {
                telemetry.timeline_out = Some(PathBuf::from(v));
            }
            if let Some(v) = t.get("diagnostics").and_then(Value::as_str) {
                telemetry.diagnostics = DiagMode::parse(v).ok_or_else(|| {
                    field(format!(
                        "telemetry.diagnostics: unknown mode '{v}' (accepted: {})",
                        DiagMode::ACCEPTED
                    ))
                })?;
            }
        }

        let checkpoint = match root.get("checkpoint") {
            None => None,
            Some(c) => {
                let path = c
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| field("checkpoint.path is required"))?;
                let every_steps = match c.get("every_steps").and_then(Value::as_i64) {
                    None => CheckpointConfig::DEFAULT_EVERY_STEPS,
                    Some(v) if v > 0 => v as usize,
                    Some(v) => {
                        return Err(field(format!(
                            "checkpoint.every_steps must be positive, got {v}"
                        )))
                    }
                };
                let keep_last = match c.get("keep_last").and_then(Value::as_i64) {
                    None => CheckpointConfig::DEFAULT_KEEP_LAST,
                    Some(v) if v > 0 => v as usize,
                    Some(v) => {
                        return Err(field(format!(
                            "checkpoint.keep_last must be positive, got {v}"
                        )))
                    }
                };
                Some(CheckpointConfig {
                    path: PathBuf::from(path),
                    every_steps,
                    keep_last,
                })
            }
        };

        let batch = match root.get("batch") {
            None => None,
            Some(b) => Some(parse_batch(b)?),
        };

        let particle_sets = match root.get("particle_sets") {
            None => return Err(field("particle_sets is required")),
            Some(v) => {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| field("particle_sets must be a sequence"))?;
                if seq.is_empty() {
                    return Err(field("particle_sets must not be empty"));
                }
                seq.iter()
                    .enumerate()
                    .map(|(i, s)| parse_particle_set(i, s))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let zones = match root.get("zones") {
            None => Vec::new(),
            Some(v) => {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| field("zones must be a sequence"))?;
                seq.iter()
                    .enumerate()
                    .map(|(i, z)| parse_zone(i, z, particle_sets.len()))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        Ok(PackingConfig {
            container_path: PathBuf::from(container_path),
            algorithm,
            params,
            gravity_axis,
            neighbor,
            telemetry,
            checkpoint,
            batch,
            particle_sets,
            zones,
        })
    }

    /// Loads and parses a configuration file; relative STL paths are
    /// resolved against the file's directory.
    pub fn from_file(path: impl AsRef<Path>) -> Result<PackingConfig, ConfigError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let mut cfg = PackingConfig::from_str(&text)?;
        if let Some(dir) = path.parent() {
            cfg.resolve_paths(dir);
        }
        Ok(cfg)
    }

    /// Resolves relative STL paths against `base`.
    pub fn resolve_paths(&mut self, base: &Path) {
        if self.container_path.is_relative() {
            self.container_path = base.join(&self.container_path);
        }
        for z in &mut self.zones {
            if let LocationConfig::Shape { path } = &mut z.location {
                if path.is_relative() {
                    *path = base.join(&path);
                }
            }
        }
    }

    /// The runtime `PackingParams` corresponding to this configuration
    /// (plateau LR scheduling from `params.lr`, paper defaults elsewhere).
    pub fn to_packing_params(&self) -> PackingParams {
        PackingParams {
            batch_size: self.params.batch_size,
            max_steps: self.params.n_epoch,
            patience: self.params.patience,
            gravity: self.gravity_axis,
            seed: self.params.seed,
            lr: LrPolicy::Plateau {
                initial: self.params.lr,
                factor: 0.5,
                patience: 20,
                min_lr: 1e-5,
            },
            neighbor: self.neighbor.to_params(),
            kernel: self.params.kernel,
            tiles: self.params.tiles,
            ..PackingParams::default()
        }
    }

    /// The runtime `PackingParams` for one system of a batched sweep: the
    /// base parameters with the system's seed and learning rate swapped in.
    pub fn to_packing_params_for(&self, sys: &BatchSystem) -> PackingParams {
        let mut params = self.to_packing_params();
        params.seed = sys.seed;
        params.lr = LrPolicy::Plateau {
            initial: sys.lr,
            factor: 0.5,
            patience: 20,
            min_lr: 1e-5,
        };
        params
    }

    /// Runtime PSDs for all particle sets.
    pub fn psds(&self) -> Vec<Psd> {
        self.psds_scaled(1.0)
    }

    /// Runtime PSDs with every radius parameter multiplied by `scale`.
    pub fn psds_scaled(&self, scale: f64) -> Vec<Psd> {
        self.particle_sets
            .iter()
            .map(|s| s.to_psd_scaled(scale))
            .collect()
    }

    /// Converts the zones into runtime `ZoneSpec`s.
    ///
    /// `load_shape` resolves a zone's STL path into a convex hull; config
    /// stays decoupled from any particular mesh loader (pass a closure over
    /// `adampack_io::read_stl_file` in applications).
    pub fn zone_specs<F>(&self, mut load_shape: F) -> Result<Vec<ZoneSpec>, ConfigError>
    where
        F: FnMut(&Path) -> Result<ConvexHull, ConfigError>,
    {
        self.zones
            .iter()
            .map(|z| {
                let region = match &z.location {
                    LocationConfig::Slice { axis, min, max } => ZoneRegion::Slice {
                        axis: *axis,
                        min: *min,
                        max: *max,
                    },
                    LocationConfig::Shape { path } => ZoneRegion::Mesh(load_shape(path)?),
                    LocationConfig::Everywhere => ZoneRegion::Slice {
                        axis: self.gravity_axis,
                        min: f64::NEG_INFINITY,
                        max: f64::INFINITY,
                    },
                };
                Ok(ZoneSpec {
                    region,
                    n_particles: z.n_particles,
                    set_proportions: z.set_proportions.clone(),
                })
            })
            .collect()
    }
}

fn parse_batch(v: &Value) -> Result<BatchConfig, ConfigError> {
    let mut batch = BatchConfig::default();

    if let Some(list) = v.get("seeds") {
        let seq = list
            .as_seq()
            .ok_or_else(|| field("batch.seeds must be a list"))?;
        for (i, x) in seq.iter().enumerate() {
            let s = x
                .as_i64()
                .ok_or_else(|| field(format!("batch.seeds[{i}] must be an integer")))?;
            if s < 0 {
                return Err(field(format!(
                    "batch.seeds[{i}] must be non-negative, got {s}"
                )));
            }
            let s = s as u64;
            if batch.seeds.contains(&s) {
                return Err(field(format!("batch.seeds: duplicate seed {s}")));
            }
            batch.seeds.push(s);
        }
    }

    let float_axis = |key: &'static str, out: &mut Vec<f64>| -> Result<(), ConfigError> {
        if let Some(list) = v.get(key) {
            let seq = list
                .as_seq()
                .ok_or_else(|| field(format!("batch.{key} must be a list")))?;
            for (i, x) in seq.iter().enumerate() {
                let f = x
                    .as_f64()
                    .ok_or_else(|| field(format!("batch.{key}[{i}] must be numeric")))?;
                if !(f > 0.0 && f.is_finite()) {
                    return Err(field(format!(
                        "batch.{key}[{i}] must be positive and finite, got {f}"
                    )));
                }
                if out.iter().any(|&o| o.to_bits() == f.to_bits()) {
                    return Err(field(format!("batch.{key}: duplicate value {f}")));
                }
                out.push(f);
            }
        }
        Ok(())
    };
    let mut lrs = Vec::new();
    float_axis("lrs", &mut lrs)?;
    let mut radius_scales = Vec::new();
    float_axis("radius_scales", &mut radius_scales)?;
    batch.lrs = lrs;
    batch.radius_scales = radius_scales;

    let count =
        batch.seeds.len().max(1) * batch.lrs.len().max(1) * batch.radius_scales.len().max(1);
    if count > BatchConfig::MAX_SYSTEMS {
        return Err(field(format!(
            "batch: sweep expands to {count} systems (max {})",
            BatchConfig::MAX_SYSTEMS
        )));
    }
    Ok(batch)
}

fn parse_particle_set(i: usize, v: &Value) -> Result<ParticleSetConfig, ConfigError> {
    let dist = v
        .get("radius_distribution")
        .and_then(Value::as_str)
        .ok_or_else(|| {
            field(format!(
                "particle_sets[{i}].radius_distribution is required"
            ))
        })?;
    let num = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| field(format!("particle_sets[{i}].{key} is required and numeric")))
    };
    match dist.to_ascii_lowercase().as_str() {
        "constant" => Ok(ParticleSetConfig::Constant {
            value: num("radius_value")?,
        }),
        "uniform" => Ok(ParticleSetConfig::Uniform {
            min: num("radius_min")?,
            max: num("radius_max")?,
        }),
        "normal" => Ok(ParticleSetConfig::Normal {
            mean: num("radius_mean")?,
            std_dev: num("radius_std_dev")?,
        }),
        other => Err(field(format!(
            "particle_sets[{i}]: unknown radius_distribution '{other}'"
        ))),
    }
}

fn parse_zone(i: usize, v: &Value, n_sets: usize) -> Result<ZoneConfig, ConfigError> {
    let n_particles = v
        .get("n_particles")
        .and_then(Value::as_i64)
        .ok_or_else(|| field(format!("zones[{i}].n_particles is required")))?;
    if n_particles <= 0 {
        return Err(field(format!("zones[{i}].n_particles must be positive")));
    }

    let location = match v.get("location") {
        None => LocationConfig::Everywhere,
        Some(loc) => {
            if let Some(slice) = loc.get("slice") {
                let axis_v = slice
                    .get("axis")
                    .ok_or_else(|| field(format!("zones[{i}].location.slice.axis is required")))?;
                let axis_s = match axis_v {
                    Value::Str(s) => s.clone(),
                    Value::Int(k) => k.to_string(),
                    other => return Err(field(format!("zones[{i}]: bad axis {other:?}"))),
                };
                let axis = Axis::parse(&axis_s)
                    .ok_or_else(|| field(format!("zones[{i}]: unknown axis '{axis_s}'")))?;
                let min = slice
                    .get("min_bound")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| {
                        field(format!("zones[{i}].location.slice.min_bound required"))
                    })?;
                let max = slice
                    .get("max_bound")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| {
                        field(format!("zones[{i}].location.slice.max_bound required"))
                    })?;
                if max <= min {
                    return Err(field(format!(
                        "zones[{i}]: slice bounds must satisfy min < max ({min} >= {max})"
                    )));
                }
                LocationConfig::Slice { axis, min, max }
            } else if let Some(shape) = loc.get("shape") {
                let path = shape
                    .get("path")
                    .and_then(Value::as_str)
                    .ok_or_else(|| field(format!("zones[{i}].location.shape.path required")))?;
                LocationConfig::Shape {
                    path: PathBuf::from(path),
                }
            } else {
                return Err(field(format!(
                    "zones[{i}].location must contain 'slice' or 'shape'"
                )));
            }
        }
    };

    let props: Vec<f64> = match v.get("set_proportions") {
        None => vec![1.0; n_sets],
        Some(p) => {
            let seq = p
                .as_seq()
                .ok_or_else(|| field(format!("zones[{i}].set_proportions must be a list")))?;
            seq.iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| field(format!("zones[{i}].set_proportions: numeric values")))
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    if props.len() != n_sets {
        return Err(field(format!(
            "zones[{i}].set_proportions has {} entries for {n_sets} particle sets",
            props.len()
        )));
    }
    if props.iter().any(|&w| w < 0.0) || !props.iter().any(|&w| w > 0.0) {
        return Err(field(format!(
            "zones[{i}].set_proportions must be non-negative with at least one positive"
        )));
    }

    Ok(ZoneConfig {
        n_particles: n_particles as usize,
        location,
        set_proportions: props,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG9: &str = r#"
container:
    path: "cone.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 1000
    patience: 50
    verbosity: 10
gravity_axis: z
neighbor:
    strategy: "verlet"
    skin_factor: 0.3
particle_sets:
    - radius_distribution: "uniform"
      radius_min: 0.05
      radius_max: 0.08
    - radius_distribution: "normal"
      radius_mean: 0.04
      radius_std_dev: 0.005
zones:
    - n_particles: 200
      location:
          shape:
              path: "sphere.stl"
      set_proportions: [0.0, 1.0,]
    - n_particles: 300
      location:
          slice:
              axis: 2
              min_bound: 0.8
              max_bound: 1.5
      set_proportions: [1.0, 0.0]
"#;

    #[test]
    fn parses_the_paper_example() {
        let cfg = PackingConfig::from_str(FIG9).unwrap();
        assert_eq!(cfg.container_path, PathBuf::from("cone.stl"));
        assert_eq!(cfg.algorithm, "COLLECTIVE_ARRANGEMENT");
        assert_eq!(cfg.params.lr, 0.01);
        assert_eq!(cfg.params.n_epoch, 1000);
        assert_eq!(cfg.params.patience, 50);
        assert_eq!(cfg.params.verbosity, 10);
        assert_eq!(cfg.gravity_axis, Axis::Z);
        assert_eq!(cfg.neighbor.strategy, NeighborStrategy::Verlet);
        assert!((cfg.neighbor.skin_factor - 0.3).abs() < 1e-12);
        assert_eq!(cfg.particle_sets.len(), 2);
        assert_eq!(
            cfg.particle_sets[0],
            ParticleSetConfig::Uniform {
                min: 0.05,
                max: 0.08
            }
        );
        assert_eq!(
            cfg.particle_sets[1],
            ParticleSetConfig::Normal {
                mean: 0.04,
                std_dev: 0.005
            }
        );
        assert_eq!(cfg.zones.len(), 2);
        assert_eq!(cfg.zones[0].n_particles, 200);
        assert_eq!(
            cfg.zones[0].location,
            LocationConfig::Shape {
                path: PathBuf::from("sphere.stl")
            }
        );
        assert_eq!(cfg.zones[0].set_proportions, vec![0.0, 1.0]);
        match cfg.zones[1].location {
            LocationConfig::Slice { axis, min, max } => {
                assert_eq!(axis, Axis::Z);
                assert_eq!(min, 0.8);
                assert_eq!(max, 1.5);
            }
            ref other => panic!("expected slice, got {other:?}"),
        }
    }

    #[test]
    fn conversion_to_runtime_types() {
        let cfg = PackingConfig::from_str(FIG9).unwrap();
        let params = cfg.to_packing_params();
        assert_eq!(params.neighbor.strategy, NeighborStrategy::Verlet);
        assert!((params.neighbor.skin_factor - 0.3).abs() < 1e-12);
        assert_eq!(params.max_steps, 1000);
        assert_eq!(params.patience, 50);
        assert_eq!(params.lr.initial_lr(), 0.01);
        let psds = cfg.psds();
        assert_eq!(psds.len(), 2);
        assert!((psds[0].mean() - 0.065).abs() < 1e-12);
        // Zone specs without shape loading (slice only).
        let specs = cfg
            .zone_specs(|p| {
                // Fake loader: a tiny tetra hull for the sphere.stl zone.
                assert!(p.ends_with("sphere.stl"));
                use adampack_geometry::Vec3;
                Ok(
                    ConvexHull::from_points(&[Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z])
                        .expect("tetra"),
                )
            })
            .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].n_particles, 200);
    }

    #[test]
    fn defaults_for_optional_fields() {
        let minimal = "container:\n  path: box.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let cfg = PackingConfig::from_str(minimal).unwrap();
        assert_eq!(cfg.algorithm, "COLLECTIVE_ARRANGEMENT");
        assert_eq!(cfg.params, AlgoParams::default());
        assert_eq!(cfg.gravity_axis, Axis::Z);
        assert_eq!(cfg.neighbor, NeighborConfig::default());
        assert_eq!(cfg.telemetry, TelemetryConfig::default());
        assert_eq!(cfg.checkpoint, None);
        assert_eq!(cfg.batch, None);
        assert!(cfg.zones.is_empty());
    }

    #[test]
    fn batch_block_parses_and_expands() {
        let base = "container:\n  path: a.stl\nparams:\n  seed: 3\n  lr: 0.05\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let src = format!("{base}batch:\n  seeds: [1, 2]\n  lrs: [0.01, 0.02]\n");
        let cfg = PackingConfig::from_str(&src).unwrap();
        let batch = cfg.batch.clone().expect("batch block");
        assert_eq!(batch.seeds, vec![1, 2]);
        assert_eq!(batch.lrs, vec![0.01, 0.02]);
        assert!(batch.radius_scales.is_empty());

        let systems = batch.expand(&cfg.params);
        assert_eq!(systems.len(), 4);
        let labels: Vec<&str> = systems.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["s1_lr0.01", "s1_lr0.02", "s2_lr0.01", "s2_lr0.02"]);
        assert!(systems.iter().all(|s| s.radius_scale == 1.0));

        // Empty axes fall back to the base params.
        let only_seeds = format!("{base}batch:\n  seeds: [9]\n");
        let cfg = PackingConfig::from_str(&only_seeds).unwrap();
        let systems = cfg.batch.clone().unwrap().expand(&cfg.params);
        assert_eq!(systems.len(), 1);
        assert_eq!(systems[0].label, "s9_lr0.05");
        assert_eq!(systems[0].seed, 9);
        assert_eq!(systems[0].lr, 0.05);

        // Radius scales show up in the label only when that axis is swept.
        let with_scales = format!("{base}batch:\n  seeds: [1]\n  radius_scales: [1, 1.5]\n");
        let cfg = PackingConfig::from_str(&with_scales).unwrap();
        let systems = cfg.batch.clone().unwrap().expand(&cfg.params);
        assert_eq!(systems.len(), 2);
        assert_eq!(systems[0].label, "s1_lr0.05_x1");
        assert_eq!(systems[1].label, "s1_lr0.05_x1.5");
    }

    #[test]
    fn batch_system_overrides_runtime_params_and_psd() {
        let src = "container:\n  path: a.stl\nparams:\n  seed: 3\nbatch:\n  seeds: [5]\n  lrs: [0.04]\n  radius_scales: [2]\nparticle_sets:\n  - radius_distribution: uniform\n    radius_min: 0.05\n    radius_max: 0.07\n";
        let cfg = PackingConfig::from_str(src).unwrap();
        let systems = cfg.batch.clone().unwrap().expand(&cfg.params);
        assert_eq!(systems.len(), 1);
        let params = cfg.to_packing_params_for(&systems[0]);
        assert_eq!(params.seed, 5);
        assert_eq!(params.lr.initial_lr(), 0.04);
        let psds = cfg.psds_scaled(systems[0].radius_scale);
        assert!((psds[0].mean() - 0.12).abs() < 1e-12, "scaled uniform mean");
    }

    #[test]
    fn batch_descriptor_is_stable_and_distinguishes_grids() {
        let a = BatchConfig {
            seeds: vec![1, 2],
            lrs: vec![0.01],
            radius_scales: vec![],
        };
        assert_eq!(a.descriptor(), "seeds=[1,2]|lrs=[0.01]|scales=[]");
        let b = BatchConfig {
            seeds: vec![1],
            lrs: vec![0.01],
            radius_scales: vec![2.0],
        };
        assert_ne!(a.descriptor(), b.descriptor());
    }

    #[test]
    fn bad_batch_block_rejected() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        for (snippet, needle) in [
            ("batch:\n  seeds: [-1]\n", "non-negative"),
            ("batch:\n  seeds: [1, 1]\n", "duplicate"),
            ("batch:\n  lrs: [0]\n", "positive"),
            ("batch:\n  lrs: [0.01, 0.01]\n", "duplicate"),
            ("batch:\n  radius_scales: [-2]\n", "positive"),
            ("batch:\n  seeds: 5\n", "must be a list"),
        ] {
            let e = PackingConfig::from_str(&format!("{base}{snippet}")).unwrap_err();
            assert!(e.to_string().contains(needle), "{snippet}: {e}");
        }
    }

    #[test]
    fn batch_validate_catches_axes_assembled_outside_yaml() {
        // CLI `--batch-*` flags build a BatchConfig directly, bypassing
        // parse_batch; validate() is the shared gate.
        let ok = BatchConfig {
            seeds: vec![1, 2],
            lrs: vec![0.01, 0.02],
            radius_scales: vec![],
        };
        assert_eq!(ok.validate(), Ok(()));
        for (cfg, needle) in [
            (
                BatchConfig {
                    seeds: vec![1, 1],
                    lrs: vec![],
                    radius_scales: vec![],
                },
                "duplicate seed 1",
            ),
            (
                BatchConfig {
                    seeds: vec![],
                    lrs: vec![0.01, 0.01],
                    radius_scales: vec![],
                },
                "lrs: duplicate",
            ),
            (
                BatchConfig {
                    seeds: vec![],
                    lrs: vec![],
                    radius_scales: vec![0.0],
                },
                "positive and finite",
            ),
            (
                BatchConfig {
                    seeds: (0..40).collect(),
                    lrs: (1..=40).map(|i| i as f64 * 0.001).collect(),
                    radius_scales: vec![],
                },
                "max 1024",
            ),
        ] {
            let e = cfg.validate().unwrap_err();
            assert!(e.contains(needle), "{e}");
        }
    }

    #[test]
    fn checkpoint_block_parses_with_defaults() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let src = format!("{base}checkpoint:\n  path: \"run.ckpt\"\n");
        let cfg = PackingConfig::from_str(&src).unwrap();
        assert_eq!(
            cfg.checkpoint,
            Some(CheckpointConfig {
                path: PathBuf::from("run.ckpt"),
                every_steps: CheckpointConfig::DEFAULT_EVERY_STEPS,
                keep_last: CheckpointConfig::DEFAULT_KEEP_LAST,
            })
        );

        let src =
            format!("{base}checkpoint:\n  path: run.ckpt\n  every_steps: 100\n  keep_last: 4\n");
        let cfg = PackingConfig::from_str(&src).unwrap();
        let ck = cfg.checkpoint.unwrap();
        assert_eq!(ck.every_steps, 100);
        assert_eq!(ck.keep_last, 4);
    }

    #[test]
    fn bad_checkpoint_block_rejected() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let no_path = format!("{base}checkpoint:\n  every_steps: 100\n");
        let e = PackingConfig::from_str(&no_path).unwrap_err();
        assert!(e.to_string().contains("checkpoint.path"), "{e}");
        let bad_cadence = format!("{base}checkpoint:\n  path: run.ckpt\n  every_steps: 0\n");
        let e = PackingConfig::from_str(&bad_cadence).unwrap_err();
        assert!(e.to_string().contains("every_steps"), "{e}");
        let bad_keep = format!("{base}checkpoint:\n  path: run.ckpt\n  keep_last: -1\n");
        let e = PackingConfig::from_str(&bad_keep).unwrap_err();
        assert!(e.to_string().contains("keep_last"), "{e}");
    }

    #[test]
    fn telemetry_block_parses() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let src = format!(
            "{base}telemetry:\n  level: debug\n  trace_out: \"run.jsonl\"\n  metrics_out: metrics.prom\n  metrics: false\n  timeline_out: \"trace.json\"\n  diagnostics: summary\n"
        );
        let cfg = PackingConfig::from_str(&src).unwrap();
        assert_eq!(cfg.telemetry.level, ConsoleLevel::Fixed(Level::Debug));
        assert_eq!(cfg.telemetry.trace_out, Some(PathBuf::from("run.jsonl")));
        assert_eq!(
            cfg.telemetry.metrics_out,
            Some(PathBuf::from("metrics.prom"))
        );
        assert!(!cfg.telemetry.metrics);
        assert_eq!(
            cfg.telemetry.timeline_out,
            Some(PathBuf::from("trace.json"))
        );
        assert_eq!(cfg.telemetry.diagnostics, DiagMode::Summary);

        let off = format!("{base}telemetry:\n  level: \"off\"\n");
        let cfg = PackingConfig::from_str(&off).unwrap();
        assert_eq!(cfg.telemetry.level, ConsoleLevel::Off);
        assert_eq!(cfg.telemetry.trace_out, None);
        assert!(cfg.telemetry.metrics);
        assert_eq!(cfg.telemetry.timeline_out, None);
        assert_eq!(cfg.telemetry.diagnostics, DiagMode::Off);
    }

    #[test]
    fn bad_diagnostics_mode_rejected_naming_accepted_values() {
        let src = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\ntelemetry:\n  diagnostics: verbose\n";
        let e = PackingConfig::from_str(src).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("verbose"), "{msg}");
        assert!(msg.contains("'off', 'summary' or 'events'"), "{msg}");
    }

    #[test]
    fn bad_telemetry_level_rejected() {
        let src = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\ntelemetry:\n  level: verbose\n";
        let e = PackingConfig::from_str(src).unwrap_err();
        assert!(e.to_string().contains("verbose"), "{e}");
    }

    #[test]
    fn kernel_knob_parses_and_defaults_to_simd() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let cfg = PackingConfig::from_str(base).unwrap();
        assert_eq!(cfg.params.kernel, Kernel::Simd);
        assert_eq!(cfg.to_packing_params().kernel, Kernel::Simd);

        let scalar = format!("{base}params:\n  kernel: \"scalar\"\n");
        let cfg = PackingConfig::from_str(&scalar).unwrap();
        assert_eq!(cfg.params.kernel, Kernel::Scalar);
        assert_eq!(cfg.to_packing_params().kernel, Kernel::Scalar);

        // Case-insensitive.
        let simd = format!("{base}params:\n  kernel: SIMD\n");
        let cfg = PackingConfig::from_str(&simd).unwrap();
        assert_eq!(cfg.params.kernel, Kernel::Simd);
    }

    #[test]
    fn unknown_kernel_rejected() {
        let src = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\nparams:\n  kernel: avx512\n";
        let e = PackingConfig::from_str(src).unwrap_err();
        assert!(e.to_string().contains("avx512"), "{e}");
        // Usage errors must name every accepted value.
        for accepted in ["'scalar'", "'simd'", "'simd_mixed'"] {
            assert!(e.to_string().contains(accepted), "{e} missing {accepted}");
        }
    }

    #[test]
    fn mixed_kernel_knob_parses() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let src = format!("{base}params:\n  kernel: \"simd_mixed\"\n");
        let cfg = PackingConfig::from_str(&src).unwrap();
        assert_eq!(cfg.params.kernel, Kernel::SimdMixed);
        assert_eq!(cfg.to_packing_params().kernel, Kernel::SimdMixed);
    }

    #[test]
    fn tiles_knob_parses_and_rejects_nonpositive() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let cfg = PackingConfig::from_str(base).unwrap();
        assert_eq!(cfg.params.tiles, 1, "default must be monolithic");
        assert_eq!(cfg.to_packing_params().tiles, 1);

        let tiled = format!("{base}params:\n  tiles: 8\n");
        let cfg = PackingConfig::from_str(&tiled).unwrap();
        assert_eq!(cfg.params.tiles, 8);
        assert_eq!(cfg.to_packing_params().tiles, 8);

        let bad = format!("{base}params:\n  tiles: 0\n");
        let e = PackingConfig::from_str(&bad).unwrap_err();
        assert!(e.to_string().contains("tiles"), "{e}");
    }

    #[test]
    fn sweep_order_knob_parses_and_rejects_unknown() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let cfg = PackingConfig::from_str(base).unwrap();
        assert_eq!(cfg.neighbor.order, SweepOrder::Auto, "default is auto");
        assert_eq!(cfg.to_packing_params().neighbor.order, SweepOrder::Auto);

        let morton = format!("{base}neighbor:\n  order: \"morton\"\n");
        let cfg = PackingConfig::from_str(&morton).unwrap();
        assert_eq!(cfg.neighbor.order, SweepOrder::Morton);

        let strided = format!("{base}neighbor:\n  order: \"strided\"\n");
        let cfg = PackingConfig::from_str(&strided).unwrap();
        assert_eq!(cfg.neighbor.order, SweepOrder::Strided);
        assert_eq!(cfg.to_packing_params().neighbor.order, SweepOrder::Strided);

        let bad = format!("{base}neighbor:\n  order: hilbert\n");
        let e = PackingConfig::from_str(&bad).unwrap_err();
        assert!(e.to_string().contains("hilbert"), "{e}");
        assert!(e.to_string().contains("'auto'"), "{e}");
        assert!(e.to_string().contains("'morton'"), "{e}");
        assert!(e.to_string().contains("'strided'"), "{e}");
    }

    #[test]
    fn console_level_resolution() {
        assert_eq!(ConsoleLevel::Auto.resolve(0), Some(Level::Info));
        assert_eq!(ConsoleLevel::Auto.resolve(10), Some(Level::Debug));
        assert_eq!(ConsoleLevel::Off.resolve(10), None);
        assert_eq!(
            ConsoleLevel::Fixed(Level::Trace).resolve(0),
            Some(Level::Trace)
        );
    }

    #[test]
    fn bad_neighbor_settings_rejected() {
        let base = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let bad_strategy = format!("{base}neighbor:\n  strategy: quadtree\n");
        let e = PackingConfig::from_str(&bad_strategy).unwrap_err();
        assert!(e.to_string().contains("quadtree"));
        let bad_skin = format!("{base}neighbor:\n  skin_factor: -0.5\n");
        let e = PackingConfig::from_str(&bad_skin).unwrap_err();
        assert!(e.to_string().contains("skin_factor"));
    }

    #[test]
    fn missing_required_fields_error() {
        assert!(PackingConfig::from_str("algorithm: RSA").is_err());
        let no_sets = "container:\n  path: a.stl\n";
        assert!(matches!(
            PackingConfig::from_str(no_sets),
            Err(ConfigError::Field(_))
        ));
        let bad_dist = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: zipf\n";
        let e = PackingConfig::from_str(bad_dist).unwrap_err();
        assert!(e.to_string().contains("zipf"));
    }

    #[test]
    fn invalid_values_rejected() {
        let bad_lr = "container:\n  path: a.stl\nparams:\n  lr: -1\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        assert!(PackingConfig::from_str(bad_lr).is_err());

        let bad_bounds = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\nzones:\n  - n_particles: 5\n    location:\n      slice:\n        axis: z\n        min_bound: 2.0\n        max_bound: 1.0\n";
        let e = PackingConfig::from_str(bad_bounds).unwrap_err();
        assert!(e.to_string().contains("min < max"));

        let bad_props = "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\nzones:\n  - n_particles: 5\n    set_proportions: [0.5, 0.5]\n";
        let e = PackingConfig::from_str(bad_props).unwrap_err();
        assert!(e.to_string().contains("set_proportions"));
    }

    #[test]
    fn relative_paths_resolved() {
        let mut cfg = PackingConfig::from_str(FIG9).unwrap();
        cfg.resolve_paths(Path::new("/configs"));
        assert_eq!(cfg.container_path, PathBuf::from("/configs/cone.stl"));
        match &cfg.zones[0].location {
            LocationConfig::Shape { path } => {
                assert_eq!(path, &PathBuf::from("/configs/sphere.stl"));
            }
            other => panic!("expected shape, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("adampack_config_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pack.yaml");
        std::fs::write(&path, FIG9).unwrap();
        let cfg = PackingConfig::from_file(&path).unwrap();
        assert!(cfg.container_path.ends_with("cone.stl"));
        assert!(cfg.container_path.is_absolute() || cfg.container_path.starts_with(&dir));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gravity_axis_spellings() {
        for (spelling, expect) in [("x", Axis::X), ("Y", Axis::Y), ("2", Axis::Z)] {
            let src = format!(
                "container:\n  path: a.stl\ngravity_axis: {spelling}\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n"
            );
            let cfg = PackingConfig::from_str(&src).unwrap();
            assert_eq!(cfg.gravity_axis, expect, "spelling {spelling}");
        }
    }

    #[test]
    fn gravity_axis_as_vector() {
        let src = "container:\n  path: a.stl\ngravity_axis: [1, 1, 0]\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        let cfg = PackingConfig::from_str(src).unwrap();
        match cfg.gravity_axis {
            Axis::Custom(v) => {
                assert!((v.x - v.y).abs() < 1e-12 && v.z == 0.0);
                assert!((v.norm() - 1.0).abs() < 1e-12, "normalized");
            }
            other => panic!("expected custom axis, got {other:?}"),
        }
        // A unit coordinate vector folds back to the named axis.
        let src = "container:\n  path: a.stl\ngravity_axis: [0, 0, 2]\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        assert_eq!(PackingConfig::from_str(src).unwrap().gravity_axis, Axis::Z);
        // Zero vector rejected.
        let src = "container:\n  path: a.stl\ngravity_axis: [0, 0, 0]\nparticle_sets:\n  - radius_distribution: constant\n    radius_value: 0.1\n";
        assert!(PackingConfig::from_str(src).is_err());
    }
}
