//! # adampack-config
//!
//! YAML packing configurations (§VI-A): "Parameters for each run in our
//! application are configured via a configuration file written in YAML."
//!
//! * [`yaml`] — a from-scratch parser for the YAML subset those
//!   configuration files use: block maps, block sequences, inline lists,
//!   quoted/plain scalars, comments. (The workspace's offline dependency
//!   policy excludes a full YAML crate; the subset is documented and
//!   property-tested to never panic on arbitrary input.)
//! * [`schema`] — the typed configuration mirroring the paper's Fig. 9
//!   example: a container STL, an algorithm key with params, a gravity
//!   axis, particle sets (constant / uniform / normal radius
//!   distributions), and zones (slice or STL sub-shape with set
//!   proportions).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod schema;
pub mod writer;
pub mod yaml;

pub use schema::{
    AlgoParams, BatchConfig, BatchSystem, CheckpointConfig, ConfigError, ConsoleLevel,
    LocationConfig, NeighborConfig, PackingConfig, ParticleSetConfig, ServerConfig,
    TelemetryConfig, ZoneConfig,
};
pub use writer::{server_to_yaml, to_yaml};
pub use yaml::{parse_yaml, Value, YamlError};
