//! Fuzz-style property tests: the YAML parser and schema layer must never
//! panic, whatever bytes they are fed.

use adampack_config::{parse_yaml, PackingConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn yaml_parser_never_panics_on_arbitrary_strings(s in "\\PC{0,200}") {
        let _ = parse_yaml(&s); // Ok or Err, never a panic
    }

    #[test]
    fn yaml_parser_never_panics_on_structured_soup(
        keys in prop::collection::vec("[a-z_]{1,10}", 0..8),
        indents in prop::collection::vec(0usize..8, 0..8),
        values in prop::collection::vec("[a-zA-Z0-9\\._\\-\"'\\[\\], ]{0,20}", 0..8),
    ) {
        let mut src = String::new();
        for (i, key) in keys.iter().enumerate() {
            let indent = " ".repeat(*indents.get(i).unwrap_or(&0));
            let val = values.get(i).map(String::as_str).unwrap_or("");
            src.push_str(&format!("{indent}{key}: {val}\n"));
        }
        let _ = parse_yaml(&src);
    }

    #[test]
    fn schema_layer_never_panics(s in "\\PC{0,300}") {
        let _ = PackingConfig::from_str(&s);
    }

    #[test]
    fn parse_is_deterministic(s in "\\PC{0,150}") {
        let a = parse_yaml(&s);
        let b = parse_yaml(&s);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn scalars_round_trip_through_display(
        i in -1_000_000i64..1_000_000,
        f in -1e6f64..1e6,
    ) {
        use adampack_config::Value;
        prop_assert_eq!(parse_yaml(&i.to_string()).unwrap(), Value::Int(i));
        // Floats that print without an exponent and with a fraction part.
        let s = format!("{f:.6}");
        if s.contains('.') {
            let parsed = parse_yaml(&s).unwrap();
            let got = parsed.as_f64().expect("float");
            prop_assert!((got - s.parse::<f64>().unwrap()).abs() < 1e-12);
        }
    }
}
