//! The convergence-trace pipeline.
//!
//! One [`StepRecord`] per optimizer step — everything needed to re-plot the
//! paper's Fig. 3 loss-vs-step curves (loss terms from the objective
//! breakdown, learning rate, gradient norm) plus the neighbor-pipeline
//! diagnostics (max displacement, Verlet rebuilds). Records are plain
//! `Copy` structs pushed into a preallocated overwrite-oldest
//! [`TraceRing`] inside the hot loop (zero allocation) and drained between
//! batches into a [`TraceSink`] — typically the [`JsonlWriter`], whose
//! line format is parsed back by [`StepRecord::parse`] for schema tests.

use std::io::Write;

use crate::metrics::{TRACE_RECORDS_DROPPED_TOTAL, TRACE_RECORDS_TOTAL};

/// One optimizer step of one batch, as recorded by the packing loop.
///
/// Serialized as a flat JSON object with exactly the keys in
/// [`StepRecord::FIELDS`]; non-finite floats serialize as `null` and parse
/// back as NaN.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepRecord {
    /// Sequential batch index within the packing run.
    pub batch: u64,
    /// Step index within the batch (0-based, monotone per batch).
    pub step: u64,
    /// Weighted objective total `Z(C)` at this step (before the update).
    pub loss: f64,
    /// Unweighted intra-batch penetration `P(C,C)`.
    pub penetration_intra: f64,
    /// Unweighted cross-layer penetration `P(C,C')`.
    pub penetration_cross: f64,
    /// Unweighted altitude term `A(C)`.
    pub altitude: f64,
    /// Unweighted exterior distance `E_H(C)`.
    pub exterior: f64,
    /// Euclidean norm of the full gradient buffer.
    pub grad_norm: f64,
    /// Learning rate in effect for the update.
    pub lr: f64,
    /// Largest per-coordinate displacement since the previous record.
    pub max_disp: f64,
    /// Cumulative Verlet rebuilds served to this batch so far.
    pub verlet_rebuilds: u64,
}

/// Error from [`StepRecord::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What went wrong, with byte context.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn parse_err(message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        message: message.into(),
    }
}

/// Appends `x` as a JSON number (or `null` when non-finite).
fn push_json_f64(out: &mut String, x: f64) {
    use std::fmt::Write;
    if x.is_finite() {
        write!(out, "{x}").unwrap();
    } else {
        out.push_str("null");
    }
}

impl StepRecord {
    /// The JSONL schema: every serialized line contains exactly these keys,
    /// in this order.
    pub const FIELDS: [&'static str; 11] = [
        "batch",
        "step",
        "loss",
        "penetration_intra",
        "penetration_cross",
        "altitude",
        "exterior",
        "grad_norm",
        "lr",
        "max_disp",
        "verlet_rebuilds",
    ];

    /// Serializes the record as one JSON object (no trailing newline) into
    /// `out`, which is cleared first and can be reused across records.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        write!(
            out,
            "{{\"batch\":{},\"step\":{},\"loss\":",
            self.batch, self.step
        )
        .unwrap();
        push_json_f64(out, self.loss);
        out.push_str(",\"penetration_intra\":");
        push_json_f64(out, self.penetration_intra);
        out.push_str(",\"penetration_cross\":");
        push_json_f64(out, self.penetration_cross);
        out.push_str(",\"altitude\":");
        push_json_f64(out, self.altitude);
        out.push_str(",\"exterior\":");
        push_json_f64(out, self.exterior);
        out.push_str(",\"grad_norm\":");
        push_json_f64(out, self.grad_norm);
        out.push_str(",\"lr\":");
        push_json_f64(out, self.lr);
        out.push_str(",\"max_disp\":");
        push_json_f64(out, self.max_disp);
        write!(out, ",\"verlet_rebuilds\":{}}}", self.verlet_rebuilds).unwrap();
    }

    /// Parses one JSONL line produced by [`StepRecord::write_json`].
    ///
    /// Accepts any flat JSON object with string keys and numeric/`null`
    /// values; unknown keys are ignored (forward compatibility), missing
    /// schema keys are an error, `null` parses as NaN.
    pub fn parse(line: &str) -> Result<StepRecord, TraceParseError> {
        let mut record = StepRecord::default();
        let mut seen = [false; Self::FIELDS.len()];

        let s = line.trim();
        let inner = s
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| parse_err(format!("not a JSON object: {s:.40}")))?;

        let mut rest = inner.trim();
        while !rest.is_empty() {
            // Key: a double-quoted identifier (no escapes in this schema).
            let after_quote = rest
                .strip_prefix('"')
                .ok_or_else(|| parse_err(format!("expected '\"' at: {rest:.20}")))?;
            let end = after_quote
                .find('"')
                .ok_or_else(|| parse_err("unterminated key"))?;
            let key = &after_quote[..end];
            let after_key = after_quote[end + 1..].trim_start();
            let after_colon = after_key
                .strip_prefix(':')
                .ok_or_else(|| parse_err(format!("expected ':' after key '{key}'")))?
                .trim_start();

            // Value: a bare JSON number or null (strings/arrays/objects are
            // not part of this schema).
            let value_len = after_colon.find(',').unwrap_or(after_colon.len());
            let raw_value = after_colon[..value_len].trim();
            let value: f64 = if raw_value == "null" {
                f64::NAN
            } else {
                raw_value
                    .parse()
                    .map_err(|_| parse_err(format!("bad number '{raw_value}' for key '{key}'")))?
            };

            if let Some(idx) = Self::FIELDS.iter().position(|&f| f == key) {
                seen[idx] = true;
                match key {
                    "batch" => record.batch = value as u64,
                    "step" => record.step = value as u64,
                    "loss" => record.loss = value,
                    "penetration_intra" => record.penetration_intra = value,
                    "penetration_cross" => record.penetration_cross = value,
                    "altitude" => record.altitude = value,
                    "exterior" => record.exterior = value,
                    "grad_norm" => record.grad_norm = value,
                    "lr" => record.lr = value,
                    "max_disp" => record.max_disp = value,
                    "verlet_rebuilds" => record.verlet_rebuilds = value as u64,
                    _ => unreachable!("key in FIELDS"),
                }
            }

            rest = if value_len == after_colon.len() {
                ""
            } else {
                after_colon[value_len + 1..].trim_start()
            };
        }

        if let Some(idx) = seen.iter().position(|&s| !s) {
            return Err(parse_err(format!("missing key '{}'", Self::FIELDS[idx])));
        }
        Ok(record)
    }
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

/// A preallocated overwrite-oldest ring of [`StepRecord`]s.
///
/// `push` never allocates; when the ring is full the oldest record is
/// overwritten and counted in [`TraceRing::dropped`] (and the global
/// `adampack_trace_records_dropped_total` counter). Drain between batches
/// with [`TraceRing::drain_into`].
#[derive(Debug)]
pub struct TraceRing {
    buf: Box<[StepRecord]>,
    /// Index of the oldest live record.
    head: usize,
    /// Live records (≤ capacity).
    len: usize,
    dropped: u64,
}

impl TraceRing {
    /// Allocates a ring holding up to `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            buf: vec![StepRecord::default(); capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Live records awaiting drain.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records await drain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records overwritten before being drained, since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a record, overwriting the oldest when full. Allocation-free.
    #[inline]
    pub fn push(&mut self, record: StepRecord) {
        let cap = self.buf.len();
        if self.len == cap {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
            TRACE_RECORDS_DROPPED_TOTAL.inc();
        } else {
            self.buf[(self.head + self.len) % cap] = record;
            self.len += 1;
        }
    }

    /// Discards records newer than the first `keep` live ones.
    ///
    /// Used by the divergence sentinel when it rolls a batch back: records
    /// written by the rolled-back steps would otherwise be drained alongside
    /// their replayed counterparts, duplicating (and misordering) steps in
    /// the JSONL trace. `keep` larger than the live count is a no-op.
    pub fn truncate(&mut self, keep: usize) {
        self.len = self.len.min(keep);
        if self.len == 0 {
            self.head = 0;
        }
    }

    /// Delivers all live records to `sink` oldest-first, then clears the
    /// ring (capacity retained) and flushes the sink.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        let cap = self.buf.len();
        for i in 0..self.len {
            sink.record(&self.buf[(self.head + i) % cap]);
        }
        TRACE_RECORDS_TOTAL.add(self.len as u64);
        self.head = 0;
        self.len = 0;
        sink.flush();
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives drained trace records. Called between batches, never inside the
/// optimizer loop — implementations may allocate and do I/O.
pub trait TraceSink: Send {
    /// Handles one record.
    fn record(&mut self, record: &StepRecord);
    /// Flushes buffered output (end of a drain).
    fn flush(&mut self) {}
}

/// Writes records as JSON Lines (`application/jsonl`): one flat object per
/// line in the [`StepRecord::FIELDS`] schema.
///
/// Dropping the writer flushes it, so a trace file stays line-complete even
/// when the owning run unwinds mid-batch: every line that reached the sink
/// is parseable, the interrupted record simply never got in. Each record is
/// staged in an internal buffer and handed to the writer as one `write_all`
/// call, so a `BufWriter`-backed sink never persists half a line unless the
/// OS itself tears the write.
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send> {
    /// `None` only after [`JsonlWriter::into_inner`]; the `Option` exists so
    /// the drop guard and the by-value unwrap can coexist.
    writer: Option<W>,
    /// Reused per-record serialization buffer.
    line: String,
    written: u64,
    /// First I/O error encountered, reported once via the log facade.
    failed: bool,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps a writer (use a `BufWriter` for files).
    pub fn new(writer: W) -> JsonlWriter<W> {
        JsonlWriter {
            writer: Some(writer),
            line: String::with_capacity(256),
            written: 0,
            failed: false,
        }
    }

    /// Records successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer after a final flush.
    pub fn into_inner(mut self) -> W {
        self.flush();
        self.writer.take().expect("writer present until into_inner")
    }
}

impl<W: Write + Send> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        // Flush even when dropped by an unwinding panic — a best-effort
        // guard that keeps the JSONL file valid up to the last full record.
        self.flush();
    }
}

impl<W: Write + Send> TraceSink for JsonlWriter<W> {
    fn record(&mut self, record: &StepRecord) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        if self.failed {
            return;
        }
        record.write_json(&mut self.line);
        self.line.push('\n');
        if let Err(e) = writer.write_all(self.line.as_bytes()) {
            self.failed = true;
            crate::error!("trace sink write failed, disabling: {e}");
            return;
        }
        self.written += 1;
    }

    fn flush(&mut self) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        if !self.failed {
            if let Err(e) = writer.flush() {
                self.failed = true;
                crate::error!("trace sink flush failed, disabling: {e}");
            }
        }
    }
}

/// A sink that collects records in memory (tests, analysis scripts).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected records, oldest first.
    pub records: Vec<StepRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, record: &StepRecord) {
        self.records.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> StepRecord {
        StepRecord {
            batch: 3,
            step,
            loss: 1234.5678,
            penetration_intra: 1.5,
            penetration_cross: 0.25,
            altitude: -42.0,
            exterior: 0.0,
            grad_norm: 9.875,
            lr: 0.01,
            max_disp: 0.003,
            verlet_rebuilds: 7,
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let r = sample(11);
        let mut line = String::new();
        r.write_json(&mut line);
        assert!(line.starts_with('{') && line.ends_with('}'));
        let back = StepRecord::parse(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_keys_match_the_declared_schema() {
        let mut line = String::new();
        sample(0).write_json(&mut line);
        for key in StepRecord::FIELDS {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
        // Exactly the schema keys, no extras.
        assert_eq!(line.matches("\":").count(), StepRecord::FIELDS.len());
    }

    #[test]
    fn non_finite_floats_become_null_and_back_nan() {
        let mut r = sample(0);
        r.grad_norm = f64::INFINITY;
        r.loss = f64::NAN;
        let mut line = String::new();
        r.write_json(&mut line);
        assert!(line.contains("\"grad_norm\":null"));
        assert!(line.contains("\"loss\":null"));
        let back = StepRecord::parse(&line).unwrap();
        assert!(back.grad_norm.is_nan() && back.loss.is_nan());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(StepRecord::parse("").is_err());
        assert!(StepRecord::parse("not json").is_err());
        assert!(StepRecord::parse("{\"batch\":1}").is_err(), "missing keys");
        assert!(StepRecord::parse("{\"batch\":oops}").is_err());
        // Unknown keys are tolerated as long as the schema is complete.
        let mut line = String::new();
        sample(0).write_json(&mut line);
        let extended = format!("{}{}", &line[..line.len() - 1], ",\"future_field\":1}");
        assert_eq!(StepRecord::parse(&extended).unwrap(), sample(0));
    }

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut ring = TraceRing::with_capacity(4);
        assert!(ring.is_empty());
        for step in 0..6 {
            ring.push(sample(step));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let mut sink = VecSink::default();
        ring.drain_into(&mut sink);
        let steps: Vec<u64> = sink.records.iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![2, 3, 4, 5], "oldest two overwritten");
        assert!(ring.is_empty());
        // Ring is reusable after a drain.
        ring.push(sample(9));
        ring.drain_into(&mut sink);
        assert_eq!(sink.records.last().unwrap().step, 9);
    }

    #[test]
    fn truncate_discards_newest_records_only() {
        let mut ring = TraceRing::with_capacity(8);
        for step in 0..6 {
            ring.push(sample(step));
        }
        ring.truncate(4); // sentinel rollback to the snapshot at step 4
        let mut sink = VecSink::default();
        ring.drain_into(&mut sink);
        let steps: Vec<u64> = sink.records.iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3], "newest records discarded");
        // Oversized keep is a no-op; truncate works across a wrap, too.
        let mut ring = TraceRing::with_capacity(4);
        for step in 0..7 {
            ring.push(sample(step)); // live: 3,4,5,6 (head wrapped)
        }
        ring.truncate(100);
        assert_eq!(ring.len(), 4);
        ring.truncate(2);
        let mut sink = VecSink::default();
        ring.drain_into(&mut sink);
        let steps: Vec<u64> = sink.records.iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![3, 4], "keeps the oldest live records");
    }

    /// A `Write` impl that appends into shared storage, so the buffer's
    /// contents survive the `JsonlWriter` being dropped.
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_flushes_on_drop_even_mid_panic() {
        let storage = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let result = std::panic::catch_unwind({
            let storage = storage.clone();
            move || {
                let inner = std::io::BufWriter::with_capacity(1 << 16, SharedBuf(storage));
                let mut sink = JsonlWriter::new(inner);
                for step in 0..3 {
                    sink.record(&sample(step));
                }
                // Nothing reached the shared storage yet: it all sits in the
                // BufWriter. The panic must not lose it.
                panic!("simulated mid-run crash");
            }
        });
        assert!(result.is_err());
        let bytes = storage.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "drop guard flushed the buffered records");
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(StepRecord::parse(line).unwrap().step, i as u64);
        }
    }

    #[test]
    fn jsonl_writer_emits_parseable_lines() {
        let mut ring = TraceRing::with_capacity(8);
        for step in 0..5 {
            ring.push(sample(step));
        }
        let mut sink = JsonlWriter::new(Vec::new());
        ring.drain_into(&mut sink);
        assert_eq!(sink.written(), 5);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let r = StepRecord::parse(line).unwrap();
            assert_eq!(r.step, i as u64);
        }
    }
}
