//! Hierarchical span timeline with Chrome Trace Format export.
//!
//! The phase histograms in [`crate::metrics`] answer *how long does phase X
//! take on average*; this module answers *what happened when, on which
//! thread, for which system*. It records begin/end/instant events into
//! preallocated per-thread rings and renders them as Chrome Trace Format
//! JSON (the `{"traceEvents": […]}` object form) loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Design constraints, in order:
//!
//! 1. **Off means free.** The timeline defaults to off; a disabled
//!    record-site costs one relaxed atomic load (the same budget as the
//!    metric gate). The workspace allocation-free proof runs with the
//!    timeline off, so the hot path must not even touch the thread-local.
//! 2. **Zero allocation on the hot path.** Each thread's ring is allocated
//!    once, on that thread's first recorded event; every later push is a
//!    fixed-size `Copy` store behind an uncontended per-thread mutex (the
//!    mutex exists only so the exporter can read rings it does not own).
//! 3. **Overwrite-oldest.** Rings never grow; old events are overwritten
//!    and the exporter repairs the resulting orphan begin/end pairs so the
//!    emitted JSON always has balanced `B`/`E` events.
//!
//! System labels (one per packed system in a batched sweep) are interned to
//! `u32` ids once at setup; the hot path carries only the id, and the
//! batched engine scopes a thread-local current-system id around each
//! slot's work via [`SystemScope`].

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Master switch for timeline recording. Defaults to **off**: the timeline
/// is the expensive, opt-in layer (`--trace-timeline`), unlike the passive
/// metric registry.
static TIMELINE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Per-thread ring capacity (events), read at ring creation.
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Default per-thread event-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// Enables or disables timeline recording.
pub fn set_timeline_enabled(on: bool) {
    TIMELINE_ENABLED.store(on, Ordering::Relaxed);
}

/// True when the timeline is recording.
#[inline]
pub fn timeline_enabled() -> bool {
    TIMELINE_ENABLED.load(Ordering::Relaxed)
}

/// Sets the per-thread ring capacity used for rings created *after* this
/// call (existing rings keep their size). Clamped to at least 16.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(16), Ordering::Relaxed);
}

/// The shared monotonic epoch all timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide timeline epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What a [`TimelineEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker with a value (`ph: "i"`).
    Instant,
}

/// One fixed-size timeline event. `Copy`, so ring pushes never allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Static span/marker name.
    pub name: &'static str,
    /// Nanoseconds since the timeline epoch.
    pub ts_ns: u64,
    /// Interned system-label id (0 = no system).
    pub system: u32,
    /// Payload for instant events (span events carry 0.0).
    pub value: f64,
}

/// A preallocated overwrite-oldest event ring owned by one thread.
#[derive(Debug)]
struct ThreadRing {
    /// Stable exporter-facing thread id (registration order).
    tid: u32,
    events: Box<[TimelineEvent]>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl ThreadRing {
    fn push(&mut self, ev: TimelineEvent) {
        let cap = self.events.len();
        let idx = (self.head + self.len) % cap;
        self.events[idx] = ev;
        if self.len == cap {
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    /// Events oldest-first.
    fn ordered(&self) -> Vec<TimelineEvent> {
        let cap = self.events.len();
        (0..self.len)
            .map(|i| self.events[(self.head + i) % cap])
            .collect()
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }
}

/// Every ring ever created, for the exporter. Rings of finished threads
/// stay alive through the registry's `Arc`.
static REGISTRY: Mutex<Vec<Arc<Mutex<ThreadRing>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// This thread's ring handle; created lazily on the first recorded
    /// event (so threads that never record allocate nothing).
    static LOCAL_RING: std::cell::OnceCell<Arc<Mutex<ThreadRing>>> =
        const { std::cell::OnceCell::new() };
    /// The system label id currently attributed to this thread's events.
    static CURRENT_SYSTEM: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn with_local_ring(f: impl FnOnce(&mut ThreadRing)) {
    LOCAL_RING.with(|cell| {
        let handle = cell.get_or_init(|| {
            let cap = RING_CAPACITY.load(Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(ThreadRing {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: vec![
                    TimelineEvent {
                        kind: EventKind::Instant,
                        name: "",
                        ts_ns: 0,
                        system: 0,
                        value: 0.0,
                    };
                    cap
                ]
                .into_boxed_slice(),
                head: 0,
                len: 0,
                dropped: 0,
            }));
            REGISTRY.lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        // Uncontended in steady state: only the exporter ever competes.
        f(&mut handle.lock().unwrap());
    });
}

#[inline]
fn record(kind: EventKind, name: &'static str, value: f64) {
    if !timeline_enabled() {
        return;
    }
    let ev = TimelineEvent {
        kind,
        name,
        ts_ns: now_ns(),
        system: CURRENT_SYSTEM.with(std::cell::Cell::get),
        value,
    };
    with_local_ring(|r| r.push(ev));
}

/// Records a span-begin event (pair with [`end`]).
#[inline]
pub fn begin(name: &'static str) {
    record(EventKind::Begin, name, 0.0);
}

/// Records a span-end event.
#[inline]
pub fn end(name: &'static str) {
    record(EventKind::End, name, 0.0);
}

/// Records a point-in-time marker with a numeric payload.
#[inline]
pub fn instant(name: &'static str, value: f64) {
    record(EventKind::Instant, name, value);
}

/// An RAII timeline span: begin on creation, end on drop. Inert (one
/// relaxed load) when the timeline is off.
#[must_use = "the timeline span closes when the guard is dropped"]
#[derive(Debug)]
pub struct TimelineSpan {
    name: &'static str,
}

/// Opens a named timeline span.
#[inline]
pub fn span(name: &'static str) -> TimelineSpan {
    begin(name);
    TimelineSpan { name }
}

impl Drop for TimelineSpan {
    fn drop(&mut self) {
        end(self.name);
    }
}

// ---------------------------------------------------------------------------
// System labels
// ---------------------------------------------------------------------------

/// Interned system labels; id 0 is reserved for "no system", ids are
/// `index + 1` into this table.
static SYSTEM_LABELS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Interns a system label, returning its stable nonzero id. Repeated calls
/// with the same label return the same id. Not for the hot path — call once
/// per system at setup.
pub fn intern_system(label: &str) -> u32 {
    let mut table = SYSTEM_LABELS.lock().unwrap();
    if let Some(pos) = table.iter().position(|s| s == label) {
        return (pos + 1) as u32;
    }
    table.push(label.to_string());
    table.len() as u32
}

/// The label for an interned id (`None` for 0 or unknown ids).
pub fn system_label(id: u32) -> Option<String> {
    if id == 0 {
        return None;
    }
    SYSTEM_LABELS
        .lock()
        .unwrap()
        .get((id - 1) as usize)
        .cloned()
}

/// Scopes the calling thread's current-system attribution: events recorded
/// while the guard lives carry `system_id`; the previous id is restored on
/// drop (scopes nest).
#[must_use = "the system attribution reverts when the guard is dropped"]
#[derive(Debug)]
pub struct SystemScope {
    prev: u32,
}

impl SystemScope {
    /// Enters a system scope for an id from [`intern_system`].
    pub fn enter(system_id: u32) -> SystemScope {
        let prev = CURRENT_SYSTEM.with(|c| c.replace(system_id));
        SystemScope { prev }
    }
}

impl Drop for SystemScope {
    fn drop(&mut self) {
        CURRENT_SYSTEM.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// Clears every registered ring (tests, and run setup so back-to-back runs
/// in one process do not mix timelines). Interned labels are kept.
pub fn reset_timeline() {
    for ring in REGISTRY.lock().unwrap().iter() {
        ring.lock().unwrap().clear();
    }
}

/// Total events dropped to ring overwrite across all threads.
pub fn dropped_events() -> u64 {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|r| r.lock().unwrap().dropped)
        .sum()
}

/// Per-name self time: total span time minus time spent in child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTime {
    /// Span name.
    pub name: &'static str,
    /// Self time, nanoseconds.
    pub self_ns: u64,
    /// Number of completed spans.
    pub count: u64,
}

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

struct OpenFrame {
    name: &'static str,
    ts_ns: u64,
    system: u32,
    child_ns: u64,
}

/// One thread's repaired event stream plus its contribution to self-time.
struct RepairedThread {
    tid: u32,
    events: Vec<TimelineEvent>,
}

/// Repairs one thread's stream so begins and ends balance: orphan `E`
/// events (their `B` was overwritten) are discarded, unclosed `B` events
/// get a synthetic `E` at the stream's final timestamp. Also accumulates
/// per-name self time into `selves`.
fn repair_thread(raw: &[TimelineEvent], selves: &mut Vec<SelfTime>) -> Vec<TimelineEvent> {
    let mut out: Vec<TimelineEvent> = Vec::with_capacity(raw.len());
    let mut stack: Vec<OpenFrame> = Vec::new();
    let mut last_ts = raw.last().map_or(0, |e| e.ts_ns);

    let credit = |name: &'static str, total_ns: u64, child_ns: u64, selves: &mut Vec<SelfTime>| {
        let self_ns = total_ns.saturating_sub(child_ns);
        match selves.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.self_ns += self_ns;
                s.count += 1;
            }
            None => selves.push(SelfTime {
                name,
                self_ns,
                count: 1,
            }),
        }
    };

    for ev in raw {
        last_ts = last_ts.max(ev.ts_ns);
        match ev.kind {
            EventKind::Begin => {
                stack.push(OpenFrame {
                    name: ev.name,
                    ts_ns: ev.ts_ns,
                    system: ev.system,
                    child_ns: 0,
                });
                out.push(*ev);
            }
            EventKind::End => {
                // Spans are RAII guards, so a well-formed stream always ends
                // the innermost open span; anything else is an orphan whose
                // begin was overwritten — drop it.
                if stack.last().is_some_and(|f| f.name == ev.name) {
                    let frame = stack.pop().unwrap();
                    let total = ev.ts_ns.saturating_sub(frame.ts_ns);
                    credit(frame.name, total, frame.child_ns, selves);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns += total;
                    }
                    out.push(*ev);
                }
            }
            EventKind::Instant => out.push(*ev),
        }
    }
    // Synthesize ends for spans still open (innermost first).
    while let Some(frame) = stack.pop() {
        let total = last_ts.saturating_sub(frame.ts_ns);
        credit(frame.name, total, frame.child_ns, selves);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += total;
        }
        out.push(TimelineEvent {
            kind: EventKind::End,
            name: frame.name,
            ts_ns: last_ts,
            system: frame.system,
            value: 0.0,
        });
    }
    out
}

fn collect_repaired(selves: &mut Vec<SelfTime>) -> Vec<RepairedThread> {
    let registry = REGISTRY.lock().unwrap();
    let mut threads: Vec<RepairedThread> = Vec::new();
    for ring in registry.iter() {
        let ring = ring.lock().unwrap();
        if ring.len == 0 {
            continue;
        }
        threads.push(RepairedThread {
            tid: ring.tid,
            events: repair_thread(&ring.ordered(), selves),
        });
    }
    threads.sort_by_key(|t| t.tid);
    threads
}

/// Per-name self-time attribution over all recorded (repaired) spans.
pub fn self_times() -> Vec<SelfTime> {
    let mut selves = Vec::new();
    let _ = collect_repaired(&mut selves);
    selves.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
    selves
}

/// Renders every thread's repaired event stream as Chrome Trace Format
/// JSON (object form). Guarantees: well-formed JSON, balanced `B`/`E`
/// per thread, non-decreasing timestamps per thread. Timestamps are
/// microseconds (fractional) since the timeline epoch. Per-phase self time
/// is attached under the top-level `"selfTime"` key, which trace viewers
/// ignore.
pub fn export_chrome_trace() -> String {
    let mut selves = Vec::new();
    let threads = collect_repaired(&mut selves);
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let emit = |out: &mut String, body: &str, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(body);
    };
    for t in &threads {
        emit(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"worker-{}\"}}}}",
                t.tid, t.tid
            ),
            &mut first,
        );
    }
    for t in &threads {
        for ev in &t.events {
            let ph = match ev.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let ts_us = ev.ts_ns as f64 / 1_000.0;
            let mut body = format!(
                "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"",
                t.tid
            );
            push_escaped(&mut body, ev.name);
            body.push('"');
            if ev.kind == EventKind::Instant {
                body.push_str(",\"s\":\"t\"");
            }
            let label = system_label(ev.system);
            if label.is_some() || ev.kind == EventKind::Instant {
                body.push_str(",\"args\":{");
                let mut any = false;
                if let Some(label) = label {
                    body.push_str("\"system\":\"");
                    push_escaped(&mut body, &label);
                    body.push('"');
                    any = true;
                }
                if ev.kind == EventKind::Instant {
                    if any {
                        body.push(',');
                    }
                    if ev.value.is_finite() {
                        body.push_str(&format!("\"value\":{}", ev.value));
                    } else {
                        body.push_str("\"value\":null");
                    }
                }
                body.push('}');
            }
            body.push('}');
            emit(&mut out, &body, &mut first);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"selfTime\":{");
    selves.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
    for (i, s) in selves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  \"");
        push_escaped(&mut out, s.name);
        out.push_str(&format!(
            "\":{{\"self_ns\":{},\"count\":{}}}",
            s.self_ns, s.count
        ));
    }
    out.push_str("\n}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and enable flag are global: serialize timeline tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn balanced(events: &[TimelineEvent]) -> bool {
        let mut depth = 0i64;
        for e in events {
            match e.kind {
                EventKind::Begin => depth += 1,
                EventKind::End => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                EventKind::Instant => {}
            }
        }
        depth == 0
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let _g = LOCK.lock().unwrap();
        reset_timeline();
        set_timeline_enabled(false);
        begin("phantom");
        end("phantom");
        instant("phantom", 1.0);
        let json = export_chrome_trace();
        assert!(!json.contains("phantom"));
    }

    #[test]
    fn span_guard_pairs_begin_end() {
        let _g = LOCK.lock().unwrap();
        reset_timeline();
        set_timeline_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_timeline_enabled(false);
        let json = export_chrome_trace();
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        let selves = self_times();
        assert!(selves.iter().any(|s| s.name == "outer" && s.count == 1));
        assert!(selves.iter().any(|s| s.name == "inner" && s.count == 1));
        reset_timeline();
    }

    #[test]
    fn ring_overwrite_repairs_to_balanced_stream() {
        let _g = LOCK.lock().unwrap();
        // Exercise repair directly: a stream whose first Begin was lost.
        let raw = [
            TimelineEvent {
                kind: EventKind::End,
                name: "lost",
                ts_ns: 5,
                system: 0,
                value: 0.0,
            },
            TimelineEvent {
                kind: EventKind::Begin,
                name: "kept",
                ts_ns: 10,
                system: 0,
                value: 0.0,
            },
            TimelineEvent {
                kind: EventKind::Begin,
                name: "open",
                ts_ns: 12,
                system: 0,
                value: 0.0,
            },
        ];
        let mut selves = Vec::new();
        let repaired = repair_thread(&raw, &mut selves);
        assert!(balanced(&repaired), "repair must balance B/E: {repaired:?}");
        assert_eq!(
            repaired.iter().filter(|e| e.kind == EventKind::End).count(),
            2,
            "both open spans get synthetic ends"
        );
        assert!(selves.iter().any(|s| s.name == "kept"));
    }

    #[test]
    fn thread_ring_wraparound_drops_oldest() {
        let _g = LOCK.lock().unwrap();
        let mut ring = ThreadRing {
            tid: 99,
            events: vec![
                TimelineEvent {
                    kind: EventKind::Instant,
                    name: "",
                    ts_ns: 0,
                    system: 0,
                    value: 0.0,
                };
                4
            ]
            .into_boxed_slice(),
            head: 0,
            len: 0,
            dropped: 0,
        };
        for i in 0..7u64 {
            ring.push(TimelineEvent {
                kind: EventKind::Instant,
                name: "tick",
                ts_ns: i,
                system: 0,
                value: i as f64,
            });
        }
        assert_eq!(ring.len, 4);
        assert_eq!(ring.dropped, 3);
        let ordered = ring.ordered();
        assert_eq!(ordered.first().unwrap().ts_ns, 3, "oldest surviving event");
        assert_eq!(ordered.last().unwrap().ts_ns, 6);
    }

    #[test]
    fn system_scope_labels_events_and_restores() {
        let _g = LOCK.lock().unwrap();
        reset_timeline();
        set_timeline_enabled(true);
        let id = intern_system("s0_lr0.01");
        assert_eq!(intern_system("s0_lr0.01"), id, "interning is idempotent");
        {
            let _scope = SystemScope::enter(id);
            instant("labeled", 1.0);
        }
        instant("unlabeled", 2.0);
        set_timeline_enabled(false);
        let json = export_chrome_trace();
        assert!(json.contains("\"system\":\"s0_lr0.01\""));
        assert_eq!(system_label(id).as_deref(), Some("s0_lr0.01"));
        assert_eq!(system_label(0), None);
        reset_timeline();
    }

    #[test]
    fn export_escapes_label_quotes_and_unicode() {
        let _g = LOCK.lock().unwrap();
        reset_timeline();
        set_timeline_enabled(true);
        let id = intern_system("söme \"weird\"\\label");
        {
            let _scope = SystemScope::enter(id);
            instant("marker", 0.5);
        }
        set_timeline_enabled(false);
        let json = export_chrome_trace();
        assert!(json.contains("söme \\\"weird\\\"\\\\label"));
        reset_timeline();
    }
}
