//! # adampack-telemetry
//!
//! The workspace's observability substrate: every crate that wants to say
//! something — a log line, a counter bump, a phase timing, a per-step
//! convergence record — says it through this crate, and applications decide
//! where it goes (console, JSONL file, Prometheus-style snapshot).
//!
//! Dependency-free by design (the build environment has no registry access)
//! and engineered so the packing hot loop keeps its zero-allocation
//! steady state:
//!
//! * [`log`](mod@crate::log) — a leveled logging facade (`error!` → `trace!`)
//!   behind one atomic level check; disabled levels cost a single relaxed
//!   load and never format.
//! * [`metrics`] — a fixed, statically-registered set of monotonic
//!   [`metrics::Counter`]s and fixed-bucket [`metrics::Histogram`]s plus
//!   [`metrics::span`] phase timers. Recording is a handful of atomic
//!   adds — no locks, no allocation — and the whole registry renders as a
//!   Prometheus text-format snapshot.
//! * [`trace`] — the convergence-trace pipeline: plain-`Copy`
//!   [`trace::StepRecord`]s pushed into a preallocated [`trace::TraceRing`]
//!   inside the optimizer loop (allocation-free, overwrite-oldest) and
//!   drained between batches into a [`trace::TraceSink`] such as the
//!   [`trace::JsonlWriter`].
//! * [`timeline`] — the hierarchical span timeline: begin/end/instant
//!   events in preallocated per-thread rings (off by default, one relaxed
//!   load when disabled) with thread + system attribution, exported as
//!   Chrome Trace Format JSON with per-phase self-time.
//! * [`diag`] — per-batch convergence-diagnostics records
//!   ([`diag::DiagRecord`]): loss slope, gradient trend, acceptance rate,
//!   oscillation score and a stall/oscillation classification, with a
//!   string-capable flat-JSON round trip.
//!
//! The counting-allocator test in the workspace suite (`tests/alloc_free.rs`)
//! proves that steady-state optimizer steps still perform zero heap
//! allocations with telemetry enabled at the default level, and the
//! `bench_telemetry` binary in `crates/bench` measures the step-time
//! overhead (budget: < 2 % with passive telemetry).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod diag;
pub mod log;
pub mod metrics;
pub mod timeline;
pub mod trace;

pub use crate::diag::{Convergence, DiagMode, DiagParseError, DiagRecord};
pub use crate::log::{enabled, log_event, max_level, set_max_level, set_sink, Level, LogSink};
pub use crate::metrics::{
    is_enabled, prometheus_snapshot, reset_all, set_enabled, span, Counter, Histogram, Phase,
    SpanGuard, SystemCounters,
};
pub use crate::timeline::{SystemScope, TimelineSpan};
pub use crate::trace::{JsonlWriter, StepRecord, TraceParseError, TraceRing, TraceSink};
