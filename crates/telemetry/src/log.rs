//! The leveled logging facade.
//!
//! A miniature, dependency-free analogue of the `log` crate: call sites use
//! the [`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info), [`debug!`](crate::debug) and
//! [`trace!`](crate::trace) macros; the global maximum level is one atomic
//! load away, and a disabled level never constructs the message. The default
//! sink writes `[level] message` lines to stderr; applications (or tests)
//! can install their own [`LogSink`].

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// High-level progress (default console level).
    Info = 3,
    /// Per-batch diagnostics.
    Debug = 4,
    /// Per-step firehose.
    Trace = 5,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Parses a level name (case-insensitive). `"off"`/`"none"`/`"silent"`
    /// parse as `None` (logging disabled); unknown names are an error.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            "off" | "none" | "silent" => Ok(None),
            other => Err(format!(
                "unknown log level '{other}' (use error|warn|info|debug|trace|off)"
            )),
        }
    }

    /// The canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Receives enabled log events. Implementations must be cheap enough to run
/// inline at the call site (the facade holds no queue).
pub trait LogSink: Send + Sync {
    /// Handles one already-level-filtered event. `target` is the emitting
    /// module path.
    fn log(&self, level: Level, target: &str, args: fmt::Arguments<'_>);
}

/// The default sink: `[level] message` to stderr, with the target appended
/// for `debug`/`trace` events.
struct StderrSink;

impl LogSink for StderrSink {
    fn log(&self, level: Level, target: &str, args: fmt::Arguments<'_>) {
        let stderr = std::io::stderr();
        let mut lock = stderr.lock();
        let _ = if level >= Level::Debug {
            writeln!(lock, "[{level}] {args} ({target})")
        } else {
            writeln!(lock, "[{level}] {args}")
        };
    }
}

/// 0 = off; 1..=5 map to [`Level`]. Default: info.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(Level::Info as usize);

static SINK: RwLock<Option<Box<dyn LogSink>>> = RwLock::new(None);

/// Sets the global maximum level; `None` disables logging entirely.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as usize), Ordering::Relaxed);
}

/// The current maximum level (`None` = logging off).
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// True when events at `level` would currently be delivered. One relaxed
/// atomic load — safe to call in hot loops.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as usize <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Installs a custom sink (replacing the stderr default). Pass-through for
/// tests capturing output; returns the previously installed sink, if any.
pub fn set_sink(sink: Box<dyn LogSink>) -> Option<Box<dyn LogSink>> {
    let mut guard = SINK.write().unwrap_or_else(|e| e.into_inner());
    guard.replace(sink)
}

/// Delivers one event to the installed sink (or stderr). Call through the
/// level macros, which perform the enabled check first.
pub fn log_event(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let guard = SINK.read().unwrap_or_else(|e| e.into_inner());
    match guard.as_ref() {
        Some(sink) => sink.log(level, target, args),
        None => StderrSink.log(level, target, args),
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::log_event($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Warn) {
            $crate::log_event($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::log_event($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::log_event($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Trace) {
            $crate::log_event($crate::Level::Trace, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Collects events for assertions.
    pub struct Capture {
        pub events: Arc<Mutex<Vec<(Level, String, String)>>>,
    }

    impl LogSink for Capture {
        fn log(&self, level: Level, target: &str, args: fmt::Arguments<'_>) {
            self.events
                .lock()
                .unwrap()
                .push((level, target.to_string(), format!("{args}")));
        }
    }

    #[test]
    fn level_parse_round_trips() {
        for l in Level::ALL {
            assert_eq!(Level::parse(l.name()).unwrap(), Some(l));
        }
        assert_eq!(Level::parse("OFF").unwrap(), None);
        assert_eq!(Level::parse("WARNING").unwrap(), Some(Level::Warn));
        assert!(Level::parse("loud").is_err());
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn facade_filters_and_delivers() {
        // This test owns the global logger state; the other tests here do
        // not touch it (Rust runs tests in one process).
        let events = Arc::new(Mutex::new(Vec::new()));
        let prev_sink = set_sink(Box::new(Capture {
            events: events.clone(),
        }));
        let prev_level = max_level();

        set_max_level(Some(Level::Info));
        crate::info!("hello {}", 42);
        crate::debug!("dropped");
        assert!(enabled(Level::Info) && !enabled(Level::Debug));

        set_max_level(None);
        crate::error!("also dropped");

        set_max_level(Some(Level::Trace));
        crate::trace!("firehose");

        let got = events.lock().unwrap().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, Level::Info);
        assert_eq!(got[0].2, "hello 42");
        assert!(got[0].1.contains("log::tests"));
        assert_eq!(got[1].0, Level::Trace);

        set_max_level(prev_level);
        if let Some(s) = prev_sink {
            set_sink(s);
        }
    }
}
