//! Convergence-diagnostics records.
//!
//! The convergence trace ([`crate::trace`]) answers *what did step k look
//! like*; diagnostics answer *is this run going anywhere*. Each batch the
//! engine distills its step history into one [`DiagRecord`] — loss slope
//! over a sliding window, gradient-norm trend, acceptance-rate trajectory,
//! an oscillation score — and classifies the batch as improving, stalled,
//! oscillating or diverging. Records serialize to the same flat single-line
//! JSON the step trace uses, extended here with proper string escaping so
//! system labels may contain quotes, backslashes and non-ASCII text.
//!
//! Like [`crate::trace::StepRecord`], parsing is exact-schema: every field
//! present, no nesting. Unlike `StepRecord`, values may be JSON strings.

use std::fmt;

/// How much diagnostics work the engine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiagMode {
    /// No diagnostics (the default; zero overhead).
    #[default]
    Off,
    /// Compute per-batch records and summarize them in the quality report.
    Summary,
    /// `Summary`, plus structured instant events on the timeline.
    Events,
}

impl DiagMode {
    /// The accepted spellings, for CLI/config error messages.
    pub const ACCEPTED: &'static str = "'off', 'summary' or 'events'";

    /// Parses a mode name (`off` / `summary` / `events`).
    pub fn parse(s: &str) -> Option<DiagMode> {
        match s {
            "off" => Some(DiagMode::Off),
            "summary" => Some(DiagMode::Summary),
            "events" => Some(DiagMode::Events),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            DiagMode::Off => "off",
            DiagMode::Summary => "summary",
            DiagMode::Events => "events",
        }
    }

    /// True unless `Off`.
    pub fn enabled(self) -> bool {
        self != DiagMode::Off
    }
}

/// The verdict on one batch's optimization trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convergence {
    /// Loss is decreasing at a healthy rate.
    Improving,
    /// Loss plateaued and the gradient collapsed — more steps buy nothing.
    Stalled,
    /// Loss alternates sign-of-change step to step (learning rate too hot).
    Oscillating,
    /// Loss is trending up over the window.
    Diverging,
}

impl Convergence {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Convergence::Improving => "improving",
            Convergence::Stalled => "stalled",
            Convergence::Oscillating => "oscillating",
            Convergence::Diverging => "diverging",
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> Option<Convergence> {
        match s {
            "improving" => Some(Convergence::Improving),
            "stalled" => Some(Convergence::Stalled),
            "oscillating" => Some(Convergence::Oscillating),
            "diverging" => Some(Convergence::Diverging),
            _ => None,
        }
    }
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One batch's convergence diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagRecord {
    /// System label (empty for single-system runs). May contain arbitrary
    /// text — quotes and unicode round-trip through the JSON form.
    pub system: String,
    /// Batch index (0-based).
    pub batch: u64,
    /// Optimizer steps the batch took.
    pub steps: u64,
    /// Per-step loss slope of a least-squares line over the trailing
    /// window (negative = improving).
    pub loss_slope: f64,
    /// Gradient-norm trend: mean over the window's last half divided by
    /// mean over its first half (< 1 = shrinking gradients).
    pub grad_trend: f64,
    /// Acceptance rate over the recent-batch window, in `[0, 1]`.
    pub accept_rate: f64,
    /// Fraction of window steps whose loss delta flipped sign, in `[0, 1]`.
    pub osc_rate: f64,
    /// The classification the numbers add up to.
    pub classification: Convergence,
}

/// Why a [`DiagRecord`] line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagParseError {
    /// The line is not the expected flat JSON object.
    Malformed(String),
    /// A required key is missing.
    MissingKey(&'static str),
    /// A value failed to parse.
    BadValue(&'static str),
}

impl fmt::Display for DiagParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagParseError::Malformed(why) => write!(f, "malformed diagnostics line: {why}"),
            DiagParseError::MissingKey(k) => write!(f, "diagnostics line missing key {k:?}"),
            DiagParseError::BadValue(k) => write!(f, "diagnostics line has a bad value for {k:?}"),
        }
    }
}

impl std::error::Error for DiagParseError {}

/// Appends `s` as a JSON string literal (quotes, escapes applied).
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One scanned flat-JSON value: either raw (number / null / bool text) or
/// a decoded string.
#[derive(Debug, Clone, PartialEq)]
enum FlatValue {
    Raw(String),
    Str(String),
}

/// Scans a flat (non-nested) JSON object into `(key, value)` pairs,
/// decoding string escapes. Rejects nesting — this is a line format, not a
/// general parser.
fn scan_flat_object(line: &str) -> Result<Vec<(String, FlatValue)>, DiagParseError> {
    let body = line.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| DiagParseError::Malformed("missing braces".into()))?;
    let mut pairs = Vec::new();
    let mut chars = body.chars().peekable();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    // Decodes one quoted string starting after its opening quote.
    fn read_string(
        chars: &mut std::iter::Peekable<std::str::Chars>,
    ) -> Result<String, DiagParseError> {
        let mut s = String::new();
        loop {
            match chars.next() {
                None => return Err(DiagParseError::Malformed("unterminated string".into())),
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| {
                            DiagParseError::Malformed(format!("bad \\u escape {hex:?}"))
                        })?;
                        s.push(char::from_u32(code).ok_or_else(|| {
                            DiagParseError::Malformed(format!("bad codepoint {code:#x}"))
                        })?);
                    }
                    other => {
                        return Err(DiagParseError::Malformed(format!("bad escape {other:?}")))
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }

    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            None => break,
            Some(',') => {
                chars.next();
                continue;
            }
            Some('"') => {}
            Some(c) => {
                return Err(DiagParseError::Malformed(format!(
                    "expected key, found {c:?}"
                )))
            }
        }
        chars.next(); // opening quote
        let key = read_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(DiagParseError::Malformed(format!(
                "missing ':' after key {key:?}"
            )));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => {
                chars.next();
                FlatValue::Str(read_string(&mut chars)?)
            }
            Some('{') | Some('[') => {
                return Err(DiagParseError::Malformed(
                    "nested values unsupported".into(),
                ))
            }
            _ => {
                let mut raw = String::new();
                while chars
                    .peek()
                    .is_some_and(|&c| c != ',' && !c.is_whitespace())
                {
                    raw.push(chars.next().unwrap());
                }
                if raw.is_empty() {
                    return Err(DiagParseError::Malformed(format!(
                        "missing value for key {key:?}"
                    )));
                }
                FlatValue::Raw(raw)
            }
        };
        pairs.push((key, value));
    }
    Ok(pairs)
}

impl DiagRecord {
    /// Field names in serialization order.
    pub const FIELDS: [&'static str; 8] = [
        "system",
        "batch",
        "steps",
        "loss_slope",
        "grad_trend",
        "accept_rate",
        "osc_rate",
        "classification",
    ];

    /// Renders as one flat JSON object (no trailing newline). Non-finite
    /// floats become `null`, matching the step-trace convention.
    pub fn write_json(&self, out: &mut String) {
        use fmt::Write;
        out.push_str("{\"system\":");
        push_json_string(out, &self.system);
        write!(out, ",\"batch\":{},\"steps\":{}", self.batch, self.steps).unwrap();
        for (key, v) in [
            ("loss_slope", self.loss_slope),
            ("grad_trend", self.grad_trend),
            ("accept_rate", self.accept_rate),
            ("osc_rate", self.osc_rate),
        ] {
            if v.is_finite() {
                write!(out, ",\"{key}\":{v}").unwrap();
            } else {
                write!(out, ",\"{key}\":null").unwrap();
            }
        }
        out.push_str(",\"classification\":");
        push_json_string(out, self.classification.name());
        out.push('}');
    }

    /// The JSON line as a `String`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    /// Parses a line produced by [`DiagRecord::write_json`].
    pub fn parse(line: &str) -> Result<DiagRecord, DiagParseError> {
        let pairs = scan_flat_object(line)?;
        let get = |key: &'static str| -> Result<&FlatValue, DiagParseError> {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(DiagParseError::MissingKey(key))
        };
        let get_str = |key: &'static str| -> Result<String, DiagParseError> {
            match get(key)? {
                FlatValue::Str(s) => Ok(s.clone()),
                FlatValue::Raw(_) => Err(DiagParseError::BadValue(key)),
            }
        };
        let get_u64 = |key: &'static str| -> Result<u64, DiagParseError> {
            match get(key)? {
                FlatValue::Raw(r) => r.parse().map_err(|_| DiagParseError::BadValue(key)),
                FlatValue::Str(_) => Err(DiagParseError::BadValue(key)),
            }
        };
        let get_f64 = |key: &'static str| -> Result<f64, DiagParseError> {
            match get(key)? {
                FlatValue::Raw(r) if r == "null" => Ok(f64::NAN),
                FlatValue::Raw(r) => r.parse().map_err(|_| DiagParseError::BadValue(key)),
                FlatValue::Str(_) => Err(DiagParseError::BadValue(key)),
            }
        };
        Ok(DiagRecord {
            system: get_str("system")?,
            batch: get_u64("batch")?,
            steps: get_u64("steps")?,
            loss_slope: get_f64("loss_slope")?,
            grad_trend: get_f64("grad_trend")?,
            accept_rate: get_f64("accept_rate")?,
            osc_rate: get_f64("osc_rate")?,
            classification: Convergence::parse(&get_str("classification")?)
                .ok_or(DiagParseError::BadValue("classification"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiagRecord {
        DiagRecord {
            system: "s0_lr0.01".to_string(),
            batch: 3,
            steps: 250,
            loss_slope: -1.25e-4,
            grad_trend: 0.42,
            accept_rate: 0.875,
            osc_rate: 0.04,
            classification: Convergence::Improving,
        }
    }

    #[test]
    fn round_trip_plain() {
        let r = sample();
        let parsed = DiagRecord::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn round_trip_quotes_and_unicode_label() {
        let mut r = sample();
        r.system = "sys \"α\"\\β\n·µ".to_string();
        r.classification = Convergence::Oscillating;
        let json = r.to_json();
        assert!(json.contains("\\\""), "quotes must be escaped: {json}");
        let parsed = DiagRecord::parse(&json).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn non_finite_floats_round_trip_as_null() {
        let mut r = sample();
        r.loss_slope = f64::NAN;
        r.grad_trend = f64::INFINITY;
        let json = r.to_json();
        assert!(json.contains("\"loss_slope\":null"));
        assert!(json.contains("\"grad_trend\":null"));
        let parsed = DiagRecord::parse(&json).unwrap();
        assert!(parsed.loss_slope.is_nan());
        assert!(parsed.grad_trend.is_nan());
    }

    #[test]
    fn unicode_escape_decodes() {
        let line = "{\"system\":\"\\u0041b\",\"batch\":0,\"steps\":1,\"loss_slope\":0,\"grad_trend\":1,\"accept_rate\":1,\"osc_rate\":0,\"classification\":\"stalled\"}";
        let parsed = DiagRecord::parse(line).unwrap();
        assert_eq!(parsed.system, "Ab");
        assert_eq!(parsed.classification, Convergence::Stalled);
    }

    #[test]
    fn missing_key_and_bad_value_are_named() {
        let r = sample();
        let json = r.to_json().replace("\"osc_rate\"", "\"other\"");
        assert_eq!(
            DiagRecord::parse(&json),
            Err(DiagParseError::MissingKey("osc_rate"))
        );
        let json = r.to_json().replace(
            "\"classification\":\"improving\"",
            "\"classification\":\"sideways\"",
        );
        assert_eq!(
            DiagRecord::parse(&json),
            Err(DiagParseError::BadValue("classification"))
        );
    }

    #[test]
    fn nesting_is_rejected() {
        assert!(matches!(
            DiagRecord::parse("{\"system\":{\"nested\":1}}"),
            Err(DiagParseError::Malformed(_))
        ));
    }

    #[test]
    fn diag_mode_parses_and_names() {
        assert_eq!(DiagMode::parse("off"), Some(DiagMode::Off));
        assert_eq!(DiagMode::parse("summary"), Some(DiagMode::Summary));
        assert_eq!(DiagMode::parse("events"), Some(DiagMode::Events));
        assert_eq!(DiagMode::parse("loud"), None);
        assert!(DiagMode::Events.enabled());
        assert!(!DiagMode::Off.enabled());
        assert_eq!(DiagMode::Summary.name(), "summary");
    }
}
