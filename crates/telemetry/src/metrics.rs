//! Counters, fixed-bucket histograms and phase-span timers.
//!
//! The metric set is **static and closed**: every counter and histogram the
//! workspace records is declared here, so registration needs no locks or
//! allocation and the full registry can be rendered as a Prometheus
//! text-format snapshot at any time. Recording is a relaxed atomic add;
//! with telemetry disabled ([`set_enabled`]`(false)`) a span costs one
//! atomic load and skips the clock entirely.
//!
//! All durations are recorded in nanoseconds (`Instant`-based, monotonic).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Master switch for metric recording (spans, counters, histograms).
/// Defaults to **on** — the recording path is the one the < 2 % overhead
/// budget and the allocation-free proof apply to.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when metric recording is active.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Declares a counter (only this module declares them).
    pub const fn new(name: &'static str, help: &'static str) -> Counter {
        Counter {
            name,
            help,
            value: AtomicU64::new(0),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name (Prometheus style, `adampack_*`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A settable measurement with a monotonic peak (high-water mark).
///
/// Unlike [`Counter`], `set` overwrites; the peak is maintained with a
/// `fetch_max` so concurrent setters can never lose a high-water mark.
/// Used for resident-memory style readings (the tiled engine's hot-set
/// bytes), where the current value and the peak are both interesting.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Declares a gauge (only this module declares them).
    pub const fn new(name: &'static str, help: &'static str) -> Gauge {
        Gauge {
            name,
            help,
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Overwrites the current value and folds it into the peak.
    #[inline]
    pub fn set(&self, v: u64) {
        if is_enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.peak.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set (since the last reset).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Metric name (Prometheus style, `adampack_*`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket upper bounds shared by all duration histograms, in nanoseconds:
/// quarter-decade steps from 250 ns to 4 s, plus a +Inf overflow bucket.
pub const DURATION_BOUNDS_NS: [u64; 13] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

const N_BUCKETS: usize = DURATION_BOUNDS_NS.len() + 1;

/// A fixed-bucket histogram over nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    /// Non-cumulative per-bucket counts; the last bucket is +Inf overflow.
    buckets: [AtomicU64; N_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Declares a histogram over [`DURATION_BOUNDS_NS`].
    pub const fn new(name: &'static str, help: &'static str) -> Histogram {
        // Repeated const item: the standard trick for `[AtomicU64; N]` init.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            help,
            buckets: [ZERO; N_BUCKETS],
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation (nanoseconds).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if !is_enabled() {
            return;
        }
        let idx = DURATION_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(N_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The static registry
// ---------------------------------------------------------------------------

/// Optimizer steps taken (all batches).
pub static STEPS_TOTAL: Counter = Counter::new(
    "adampack_optimizer_steps_total",
    "Optimizer steps taken across all batches",
);
/// Objective evaluations (value or value+gradient).
pub static EVALS_TOTAL: Counter = Counter::new(
    "adampack_objective_evals_total",
    "Objective evaluations served by the workspace",
);
/// Batches attempted.
pub static BATCHES_TOTAL: Counter =
    Counter::new("adampack_batches_total", "Batches attempted (all outcomes)");
/// Batches accepted.
pub static BATCHES_ACCEPTED_TOTAL: Counter = Counter::new(
    "adampack_batches_accepted_total",
    "Batches that passed the overlap-acceptance test",
);
/// Particles packed (accepted into the bed).
pub static PARTICLES_PACKED_TOTAL: Counter = Counter::new(
    "adampack_particles_packed_total",
    "Particles accepted into the packing",
);
/// Verlet candidate-list (re)builds.
pub static VERLET_REBUILDS_TOTAL: Counter = Counter::new(
    "adampack_verlet_rebuilds_total",
    "Verlet candidate-list rebuilds",
);
/// Learning-rate reductions by plateau schedulers.
pub static LR_REDUCTIONS_TOTAL: Counter = Counter::new(
    "adampack_lr_reductions_total",
    "Learning-rate reductions performed by ReduceLROnPlateau",
);
/// DEM integration steps.
pub static DEM_STEPS_TOTAL: Counter =
    Counter::new("adampack_dem_steps_total", "DEM velocity-Verlet steps");
/// Convergence-trace records emitted to a sink.
pub static TRACE_RECORDS_TOTAL: Counter = Counter::new(
    "adampack_trace_records_total",
    "Convergence-trace step records delivered to sinks",
);
/// Trace records lost to ring-buffer overwrite.
pub static TRACE_RECORDS_DROPPED_TOTAL: Counter = Counter::new(
    "adampack_trace_records_dropped_total",
    "Convergence-trace records overwritten before being drained",
);
/// Divergence-sentinel rollback recoveries.
pub static SENTINEL_RECOVERIES_TOTAL: Counter = Counter::new(
    "adampack_sentinel_recoveries_total",
    "Divergence-sentinel rollbacks to the last good snapshot",
);
/// Checkpoints written successfully.
pub static CHECKPOINT_WRITES_TOTAL: Counter = Counter::new(
    "adampack_checkpoint_writes_total",
    "Run-state checkpoints persisted successfully",
);
/// Checkpoint write attempts that failed.
pub static CHECKPOINT_FAILURES_TOTAL: Counter = Counter::new(
    "adampack_checkpoint_failures_total",
    "Run-state checkpoint writes that failed (run continues)",
);
/// Job submissions accepted by the packing server.
pub static SERVER_JOBS_SUBMITTED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_submitted_total",
    "Job submissions accepted by the packing server",
);
/// Submissions answered from the on-disk artifact cache.
pub static SERVER_CACHE_HITS_TOTAL: Counter = Counter::new(
    "adampack_server_cache_hits_total",
    "Submissions answered directly from the content-addressed artifact cache",
);
/// Submissions that had to schedule a fresh packing run.
pub static SERVER_CACHE_MISSES_TOTAL: Counter = Counter::new(
    "adampack_server_cache_misses_total",
    "Submissions that scheduled a fresh packing run",
);
/// Submissions coalesced onto an already queued/running job.
pub static SERVER_JOBS_COALESCED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_coalesced_total",
    "Duplicate submissions coalesced onto an in-flight job",
);
/// Jobs preempted at a batch boundary by the fair-share scheduler.
pub static SERVER_PREEMPTIONS_TOTAL: Counter = Counter::new(
    "adampack_server_preemptions_total",
    "Jobs preempted at a batch boundary by the fair-share scheduler",
);
/// Jobs completed and persisted to the artifact cache.
pub static SERVER_JOBS_COMPLETED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_completed_total",
    "Jobs completed and persisted to the artifact cache",
);
/// Jobs that failed with a packing/config error.
pub static SERVER_JOBS_FAILED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_failed_total",
    "Jobs that ended in a packing error",
);
/// Jobs cancelled by the client.
pub static SERVER_JOBS_CANCELLED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_cancelled_total",
    "Jobs cancelled before completion",
);
/// Jobs whose state was restored from an on-disk checkpoint.
pub static SERVER_JOBS_RESUMED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_resumed_total",
    "Jobs resumed from a persisted checkpoint (crash recovery)",
);
/// Jobs that hit their wall-clock deadline or step ceiling.
pub static SERVER_JOBS_EXPIRED_TOTAL: Counter = Counter::new(
    "adampack_server_jobs_expired_total",
    "Jobs ended at a budget boundary (deadline or step ceiling), checkpoint kept",
);
/// Submissions rejected outright as oversized (413).
pub static SERVER_REJECTED_OVERSIZE_TOTAL: Counter = Counter::new(
    "adampack_server_rejected_oversize_total",
    "Submissions rejected because their predicted peak memory exceeds the budget",
);
/// Submissions shed under load (429).
pub static SERVER_SHED_TOTAL: Counter = Counter::new(
    "adampack_server_shed_total",
    "Submissions shed with 429 because queues or the memory budget were saturated",
);
/// Cache files evicted to stay under the disk cap.
pub static SERVER_CACHE_EVICTIONS_TOTAL: Counter = Counter::new(
    "adampack_server_cache_evictions_total",
    "Artifact/checkpoint files evicted from the bounded disk store",
);
/// Disk-full episodes the worker degraded through instead of crashing.
pub static SERVER_DISK_FULL_TOTAL: Counter = Counter::new(
    "adampack_server_disk_full_total",
    "Disk-full (ENOSPC) write failures degraded to load shedding",
);

/// Batch spawn time (initial-position generation).
pub static PHASE_SPAWN: Histogram = Histogram::new(
    "adampack_phase_spawn_nanoseconds",
    "Per-batch initial-position generation time",
);
/// Fused objective value+gradient evaluation time.
pub static PHASE_GRADIENT: Histogram = Histogram::new(
    "adampack_phase_gradient_nanoseconds",
    "Per-step fused objective value+gradient time",
);
/// Optimizer parameter-update time (scheduler + Adam step).
pub static PHASE_OPTIMIZER: Histogram = Histogram::new(
    "adampack_phase_optimizer_nanoseconds",
    "Per-step scheduler + optimizer update time",
);
/// Verlet candidate-list rebuild time.
pub static PHASE_VERLET_REBUILD: Histogram = Histogram::new(
    "adampack_phase_verlet_rebuild_nanoseconds",
    "Verlet candidate-list rebuild time",
);
/// Batch acceptance-test time.
pub static PHASE_ACCEPTANCE: Histogram = Histogram::new(
    "adampack_phase_acceptance_nanoseconds",
    "Per-batch overlap-acceptance test time",
);
/// DEM step time.
pub static PHASE_DEM_STEP: Histogram = Histogram::new(
    "adampack_phase_dem_step_nanoseconds",
    "DEM velocity-Verlet step time",
);
/// CSR cell-grid (re)binning time.
pub static PHASE_GRID_BUILD: Histogram = Histogram::new(
    "adampack_phase_grid_build_nanoseconds",
    "CSR cell-grid counting-sort rebin time",
);
/// Scalar-kernel fused objective evaluation time.
pub static PHASE_KERNEL_SCALAR: Histogram = Histogram::new(
    "adampack_phase_kernel_scalar_nanoseconds",
    "Scalar-kernel fused objective evaluation time",
);
/// SIMD-kernel fused objective evaluation time.
pub static PHASE_KERNEL_SIMD: Histogram = Histogram::new(
    "adampack_phase_kernel_simd_nanoseconds",
    "SIMD-kernel fused objective evaluation time",
);
/// Mixed-precision-kernel fused objective evaluation time.
pub static PHASE_KERNEL_SIMD_MIXED: Histogram = Histogram::new(
    "adampack_phase_kernel_simd_mixed_nanoseconds",
    "Mixed-precision-kernel fused objective evaluation time",
);

/// Resident bytes of the packing loop's hot set (bed grid + workspace
/// buffers). In a tiled run this tracks the active surface, not total N;
/// the peak is the number the scale benchmark and QualityReport surface.
pub static HOT_SET_BYTES: Gauge = Gauge::new(
    "adampack_hot_set_bytes",
    "Resident bytes of the neighbor structures and workspace (hot set)",
);

/// Bytes currently resident in the server's bounded disk store
/// (artifact cache + checkpoint rotations under the cap).
pub static SERVER_CACHE_BYTES: Gauge = Gauge::new(
    "adampack_server_cache_bytes",
    "Bytes resident in the server's size-capped artifact/checkpoint store",
);

static GAUGES: [&Gauge; 2] = [&HOT_SET_BYTES, &SERVER_CACHE_BYTES];

static COUNTERS: [&Counter; 27] = [
    &STEPS_TOTAL,
    &EVALS_TOTAL,
    &BATCHES_TOTAL,
    &BATCHES_ACCEPTED_TOTAL,
    &PARTICLES_PACKED_TOTAL,
    &VERLET_REBUILDS_TOTAL,
    &LR_REDUCTIONS_TOTAL,
    &DEM_STEPS_TOTAL,
    &TRACE_RECORDS_TOTAL,
    &TRACE_RECORDS_DROPPED_TOTAL,
    &SENTINEL_RECOVERIES_TOTAL,
    &CHECKPOINT_WRITES_TOTAL,
    &CHECKPOINT_FAILURES_TOTAL,
    &SERVER_JOBS_SUBMITTED_TOTAL,
    &SERVER_CACHE_HITS_TOTAL,
    &SERVER_CACHE_MISSES_TOTAL,
    &SERVER_JOBS_COALESCED_TOTAL,
    &SERVER_PREEMPTIONS_TOTAL,
    &SERVER_JOBS_COMPLETED_TOTAL,
    &SERVER_JOBS_FAILED_TOTAL,
    &SERVER_JOBS_CANCELLED_TOTAL,
    &SERVER_JOBS_RESUMED_TOTAL,
    &SERVER_JOBS_EXPIRED_TOTAL,
    &SERVER_REJECTED_OVERSIZE_TOTAL,
    &SERVER_SHED_TOTAL,
    &SERVER_CACHE_EVICTIONS_TOTAL,
    &SERVER_DISK_FULL_TOTAL,
];

static HISTOGRAMS: [&Histogram; 10] = [
    &PHASE_SPAWN,
    &PHASE_GRADIENT,
    &PHASE_OPTIMIZER,
    &PHASE_VERLET_REBUILD,
    &PHASE_ACCEPTANCE,
    &PHASE_DEM_STEP,
    &PHASE_GRID_BUILD,
    &PHASE_KERNEL_SCALAR,
    &PHASE_KERNEL_SIMD,
    &PHASE_KERNEL_SIMD_MIXED,
];

/// A packing-loop phase with a dedicated duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Initial-position generation for a batch.
    Spawn,
    /// Fused objective value+gradient evaluation.
    Gradient,
    /// Scheduler + optimizer parameter update.
    OptimizerStep,
    /// Verlet candidate-list rebuild.
    VerletRebuild,
    /// Batch overlap-acceptance test.
    Acceptance,
    /// DEM velocity-Verlet step.
    DemStep,
    /// CSR cell-grid counting-sort rebin.
    GridBuild,
    /// Fused objective evaluation through the scalar oracle kernel.
    KernelScalar,
    /// Fused objective evaluation through the vectorized kernel.
    KernelSimd,
    /// Fused objective evaluation through the mixed-precision kernel
    /// (f32 rejection lanes, f64 accumulation).
    KernelSimdMixed,
}

impl Phase {
    /// The histogram backing this phase.
    pub fn histogram(self) -> &'static Histogram {
        match self {
            Phase::Spawn => &PHASE_SPAWN,
            Phase::Gradient => &PHASE_GRADIENT,
            Phase::OptimizerStep => &PHASE_OPTIMIZER,
            Phase::VerletRebuild => &PHASE_VERLET_REBUILD,
            Phase::Acceptance => &PHASE_ACCEPTANCE,
            Phase::DemStep => &PHASE_DEM_STEP,
            Phase::GridBuild => &PHASE_GRID_BUILD,
            Phase::KernelScalar => &PHASE_KERNEL_SCALAR,
            Phase::KernelSimd => &PHASE_KERNEL_SIMD,
            Phase::KernelSimdMixed => &PHASE_KERNEL_SIMD_MIXED,
        }
    }

    /// Short name, used as the timeline span label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Spawn => "spawn",
            Phase::Gradient => "gradient",
            Phase::OptimizerStep => "optimizer",
            Phase::VerletRebuild => "verlet_rebuild",
            Phase::Acceptance => "acceptance",
            Phase::DemStep => "dem_step",
            Phase::GridBuild => "grid_build",
            Phase::KernelScalar => "kernel_scalar",
            Phase::KernelSimd => "kernel_simd",
            Phase::KernelSimdMixed => "kernel_simd_mixed",
        }
    }
}

/// Times a phase from creation to drop, recording into its histogram.
/// With telemetry disabled the guard is inert (no clock read). When the
/// timeline ([`crate::timeline`]) is recording, the guard also emits a
/// begin/end event pair, so every instrumented phase shows up in the
/// Chrome-trace export for free; with the timeline off that hook costs one
/// relaxed atomic load.
#[must_use = "the span measures until the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    phase: Phase,
    start: Option<Instant>,
    timeline: bool,
}

impl SpanGuard {
    /// Elapsed time so far, nanoseconds (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| s.elapsed().as_nanos() as u64)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.timeline {
            crate::timeline::end(self.phase.name());
        }
        if let Some(start) = self.start {
            self.phase
                .histogram()
                .record_ns(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a phase span; record by dropping the guard.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    let timeline = crate::timeline::timeline_enabled();
    if timeline {
        crate::timeline::begin(phase.name());
    }
    SpanGuard {
        phase,
        start: if is_enabled() {
            Some(Instant::now())
        } else {
            None
        },
        timeline,
    }
}

// ---------------------------------------------------------------------------
// Per-system labeled metrics
// ---------------------------------------------------------------------------

/// One system's counter values in a batched sweep. The batched engine
/// computes these from each system's own run progress (never by slicing
/// the global counters) and publishes them wholesale after every pass, so
/// systems cannot leak into each other's series by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemCounters {
    /// Optimizer steps this system took.
    pub steps: u64,
    /// Batches this system attempted.
    pub batches: u64,
    /// Batches this system accepted.
    pub batches_accepted: u64,
    /// Particles this system packed.
    pub particles_packed: u64,
    /// Sentinel rollbacks this system performed.
    pub recoveries: u64,
    /// Cumulative spawn-phase time, nanoseconds.
    pub spawn_ns: u64,
    /// Cumulative gradient-phase time, nanoseconds.
    pub gradient_ns: u64,
    /// Cumulative optimizer-phase time, nanoseconds.
    pub optimizer_ns: u64,
    /// Cumulative acceptance-phase time, nanoseconds.
    pub acceptance_ns: u64,
}

/// `label → counters`, insertion-ordered. Updated off the hot path (once
/// per engine pass), so a mutex is fine.
static SYSTEM_REGISTRY: Mutex<Vec<(String, SystemCounters)>> = Mutex::new(Vec::new());

/// Publishes (upserts) one system's counters under its label.
pub fn record_system(label: &str, counters: SystemCounters) {
    let mut reg = SYSTEM_REGISTRY.lock().unwrap();
    match reg.iter_mut().find(|(l, _)| l == label) {
        Some((_, c)) => *c = counters,
        None => reg.push((label.to_string(), counters)),
    }
}

/// The last-published counters for a label, if any.
pub fn system_counters(label: &str) -> Option<SystemCounters> {
    SYSTEM_REGISTRY
        .lock()
        .unwrap()
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, c)| *c)
}

/// Removes every per-system series (tests, and run setup).
pub fn clear_system_metrics() {
    SYSTEM_REGISTRY.lock().unwrap().clear();
}

/// Escapes a Prometheus label value (`\`, `"` and newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders every metric in the Prometheus text exposition format
/// (counters as `counter`, histograms with cumulative `_bucket{le=…}`,
/// `_sum` and `_count` series, per-system series with a `system` label).
pub fn prometheus_snapshot() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for c in COUNTERS {
        writeln!(out, "# HELP {} {}", c.name, c.help).unwrap();
        writeln!(out, "# TYPE {} counter", c.name).unwrap();
        writeln!(out, "{} {}", c.name, c.get()).unwrap();
    }
    for g in GAUGES {
        writeln!(out, "# HELP {} {}", g.name, g.help).unwrap();
        writeln!(out, "# TYPE {} gauge", g.name).unwrap();
        writeln!(out, "{} {}", g.name, g.get()).unwrap();
        writeln!(out, "{}_peak {}", g.name, g.peak()).unwrap();
    }
    for h in HISTOGRAMS {
        writeln!(out, "# HELP {} {}", h.name, h.help).unwrap();
        writeln!(out, "# TYPE {} histogram", h.name).unwrap();
        let mut cumulative = 0u64;
        for (i, bound) in DURATION_BOUNDS_NS.iter().enumerate() {
            cumulative += h.buckets[i].load(Ordering::Relaxed);
            writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", h.name).unwrap();
        }
        cumulative += h.buckets[N_BUCKETS - 1].load(Ordering::Relaxed);
        writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cumulative}", h.name).unwrap();
        writeln!(out, "{}_sum {}", h.name, h.sum_ns()).unwrap();
        writeln!(out, "{}_count {}", h.name, h.count()).unwrap();
    }
    let systems = SYSTEM_REGISTRY.lock().unwrap();
    if !systems.is_empty() {
        type SystemFamily = (&'static str, &'static str, fn(&SystemCounters) -> u64);
        let families: [SystemFamily; 5] = [
            (
                "adampack_system_steps_total",
                "Optimizer steps per system",
                |c| c.steps,
            ),
            (
                "adampack_system_batches_total",
                "Batches attempted per system",
                |c| c.batches,
            ),
            (
                "adampack_system_batches_accepted_total",
                "Batches accepted per system",
                |c| c.batches_accepted,
            ),
            (
                "adampack_system_particles_packed_total",
                "Particles packed per system",
                |c| c.particles_packed,
            ),
            (
                "adampack_system_recoveries_total",
                "Sentinel rollbacks per system",
                |c| c.recoveries,
            ),
        ];
        for (name, help, get) in families {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            for (label, c) in systems.iter() {
                writeln!(
                    out,
                    "{name}{{system=\"{}\"}} {}",
                    escape_label(label),
                    get(c)
                )
                .unwrap();
            }
        }
        let name = "adampack_system_phase_nanoseconds_total";
        writeln!(out, "# HELP {name} Cumulative phase time per system").unwrap();
        writeln!(out, "# TYPE {name} counter").unwrap();
        for (label, c) in systems.iter() {
            for (phase, ns) in [
                ("spawn", c.spawn_ns),
                ("gradient", c.gradient_ns),
                ("optimizer", c.optimizer_ns),
                ("acceptance", c.acceptance_ns),
            ] {
                writeln!(
                    out,
                    "{name}{{system=\"{}\",phase=\"{phase}\"}} {ns}",
                    escape_label(label)
                )
                .unwrap();
            }
        }
    }
    out
}

/// Resets every counter and histogram to zero (tests and benches).
pub fn reset_all() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is global; tests touching it run under one lock so the
    // whole module stays order-independent.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = LOCK.lock().unwrap();
        reset_all();
        set_enabled(true);
        STEPS_TOTAL.inc();
        STEPS_TOTAL.add(4);
        assert_eq!(STEPS_TOTAL.get(), 5);
        set_enabled(false);
        STEPS_TOTAL.inc();
        assert_eq!(STEPS_TOTAL.get(), 5, "disabled counter must not move");
        set_enabled(true);
        reset_all();
        assert_eq!(STEPS_TOTAL.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let _g = LOCK.lock().unwrap();
        reset_all();
        set_enabled(true);
        PHASE_GRADIENT.record_ns(100); // le=250
        PHASE_GRADIENT.record_ns(250); // le=250 (inclusive bound)
        PHASE_GRADIENT.record_ns(500_000); // le=1e6
        PHASE_GRADIENT.record_ns(10_000_000_000); // overflow bucket
        assert_eq!(PHASE_GRADIENT.count(), 4);
        assert_eq!(
            PHASE_GRADIENT.sum_ns(),
            100 + 250 + 500_000 + 10_000_000_000
        );
        assert!(PHASE_GRADIENT.mean_ns() > 0.0);
        let snap = prometheus_snapshot();
        assert!(snap.contains("adampack_phase_gradient_nanoseconds_bucket{le=\"250\"} 2"));
        assert!(snap.contains("adampack_phase_gradient_nanoseconds_bucket{le=\"+Inf\"} 4"));
        assert!(snap.contains("adampack_phase_gradient_nanoseconds_count 4"));
        reset_all();
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let _g = LOCK.lock().unwrap();
        reset_all();
        set_enabled(true);
        HOT_SET_BYTES.set(1_000);
        HOT_SET_BYTES.set(5_000);
        HOT_SET_BYTES.set(2_000);
        assert_eq!(HOT_SET_BYTES.get(), 2_000, "set overwrites");
        assert_eq!(HOT_SET_BYTES.peak(), 5_000, "peak is a high-water mark");
        let snap = prometheus_snapshot();
        assert!(snap.contains("# TYPE adampack_hot_set_bytes gauge"));
        assert!(snap.contains("adampack_hot_set_bytes 2000"));
        assert!(snap.contains("adampack_hot_set_bytes_peak 5000"));
        set_enabled(false);
        HOT_SET_BYTES.set(9_000);
        assert_eq!(HOT_SET_BYTES.peak(), 5_000, "disabled gauge must not move");
        set_enabled(true);
        reset_all();
        assert_eq!(HOT_SET_BYTES.peak(), 0);
    }

    #[test]
    fn spans_record_into_their_phase() {
        let _g = LOCK.lock().unwrap();
        reset_all();
        set_enabled(true);
        {
            let guard = span(Phase::Spawn);
            std::hint::black_box(());
            assert!(guard.elapsed_ns() < 1_000_000_000);
        }
        assert_eq!(PHASE_SPAWN.count(), 1);

        set_enabled(false);
        {
            let _guard = span(Phase::Spawn);
        }
        assert_eq!(PHASE_SPAWN.count(), 1, "disabled span must not record");
        set_enabled(true);
        reset_all();
    }

    #[test]
    fn labeled_system_series_render_and_isolate() {
        let _g = LOCK.lock().unwrap();
        clear_system_metrics();
        record_system(
            "s0_lr0.01",
            SystemCounters {
                steps: 100,
                batches: 4,
                batches_accepted: 3,
                particles_packed: 75,
                recoveries: 1,
                gradient_ns: 1_000,
                ..Default::default()
            },
        );
        record_system(
            "s1_lr0.10",
            SystemCounters {
                steps: 7,
                ..Default::default()
            },
        );
        // Upsert: republishing replaces, never accumulates across systems.
        record_system(
            "s1_lr0.10",
            SystemCounters {
                steps: 9,
                ..Default::default()
            },
        );
        let snap = prometheus_snapshot();
        assert!(snap.contains("adampack_system_steps_total{system=\"s0_lr0.01\"} 100"));
        assert!(snap.contains("adampack_system_steps_total{system=\"s1_lr0.10\"} 9"));
        assert!(snap.contains(
            "adampack_system_phase_nanoseconds_total{system=\"s0_lr0.01\",phase=\"gradient\"} 1000"
        ));
        assert_eq!(system_counters("s0_lr0.01").unwrap().steps, 100);
        assert_eq!(system_counters("s1_lr0.10").unwrap().steps, 9);
        clear_system_metrics();
        assert!(!prometheus_snapshot().contains("adampack_system_steps_total"));
    }

    #[test]
    fn label_values_are_escaped() {
        let _g = LOCK.lock().unwrap();
        clear_system_metrics();
        record_system(
            "q\"uo\\te\nß",
            SystemCounters {
                steps: 1,
                ..Default::default()
            },
        );
        let snap = prometheus_snapshot();
        assert!(snap.contains("{system=\"q\\\"uo\\\\te\\nß\"} 1"));
        clear_system_metrics();
    }

    #[test]
    fn snapshot_lists_every_metric_with_headers() {
        let _g = LOCK.lock().unwrap();
        let snap = prometheus_snapshot();
        for c in COUNTERS {
            assert!(snap.contains(&format!("# TYPE {} counter", c.name())));
        }
        for h in HISTOGRAMS {
            assert!(snap.contains(&format!("# TYPE {} histogram", h.name())));
        }
    }
}
