//! Exact sphere ∩ convex-hull overlap volume.
//!
//! Generalizes [`crate::sphere_aabb_overlap`] from boxes to arbitrary
//! convex half-space regions: every horizontal slice of the intersection is
//! a circle ∩ convex-polygon region with exact area
//! ([`crate::circle_polygon_area`]), integrated along `z` with adaptive
//! Simpson. This lets density be probed in *container-shaped* regions
//! (cones, furnaces), not just boxes.

use adampack_geometry::{Aabb, HalfSpaceSet, Vec3};

use crate::polygon::{circle_polygon_area, clip_polygon_halfplane};
use crate::quad::adaptive_simpson;
use crate::volume::sphere_volume;

/// Cross-section of the half-space region at height `z`, clipped to the
/// given xy bounding rectangle. Returns a CCW convex polygon (possibly
/// empty).
fn cross_section(hs: &HalfSpaceSet, bb: &Aabb, z: f64) -> Vec<(f64, f64)> {
    // Start from the bounding rectangle (CCW).
    let mut poly = vec![
        (bb.min.x, bb.min.y),
        (bb.max.x, bb.min.y),
        (bb.max.x, bb.max.y),
        (bb.min.x, bb.max.y),
    ];
    for plane in hs.planes() {
        let [a, b, c, d] = plane.coefficients();
        let e = c * z + d;
        if a.abs() < 1e-14 && b.abs() < 1e-14 {
            // Horizontal plane: either cuts this z off entirely or not at all.
            if e > 0.0 {
                return Vec::new();
            }
            continue;
        }
        poly = clip_polygon_halfplane(&poly, a, b, e);
        if poly.len() < 3 {
            return Vec::new();
        }
    }
    poly
}

/// Exact volume of the intersection of a sphere with a convex half-space
/// region (e.g. a container hull's [`HalfSpaceSet`]).
///
/// `region_aabb` must enclose the region (use the hull's bounding box).
/// Accuracy is set by the adaptive quadrature (~1e-10 relative); each slice
/// area is exact.
pub fn sphere_hull_overlap(
    center: Vec3,
    radius: f64,
    hs: &HalfSpaceSet,
    region_aabb: &Aabb,
) -> f64 {
    if radius <= 0.0 || region_aabb.is_empty() {
        return 0.0;
    }
    // Fast reject: sphere entirely outside one plane.
    if hs
        .planes()
        .iter()
        .any(|p| p.signed_distance(center) >= radius)
    {
        return 0.0;
    }
    // Fast accept: sphere entirely inside the region.
    if hs.sphere_max_excess(center, radius) <= 0.0 {
        return sphere_volume(radius);
    }

    let z0 = (center.z - radius).max(region_aabb.min.z);
    let z1 = (center.z + radius).max(z0).min(region_aabb.max.z);
    if z1 <= z0 {
        return 0.0;
    }
    let r2 = radius * radius;
    let slice = |z: f64| {
        let dz = z - center.z;
        let rho2 = r2 - dz * dz;
        if rho2 <= 0.0 {
            return 0.0;
        }
        let poly = cross_section(hs, region_aabb, z);
        if poly.len() < 3 {
            return 0.0;
        }
        circle_polygon_area(center.x, center.y, rho2.sqrt(), &poly).max(0.0)
    };
    let scale = sphere_volume(radius).max(1.0);
    adaptive_simpson(slice, z0, z1, 1e-11 * scale + 1e-15, 48).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{sphere_aabb_overlap, spherical_cap_volume};
    use adampack_geometry::{shapes, ConvexHull};
    use std::f64::consts::PI;

    fn box_hull() -> ConvexHull {
        ConvexHull::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap()
    }

    #[test]
    fn agrees_with_box_kernel() {
        // Cross-validation: the generic hull path must reproduce the
        // closed-form box path on many configurations.
        let hull = box_hull();
        let bb = hull.aabb();
        let aabb = adampack_geometry::Aabb::cube(Vec3::ZERO, 2.0);
        for &(c, r) in &[
            (Vec3::ZERO, 0.5),
            (Vec3::new(0.9, 0.0, 0.0), 0.4),
            (Vec3::new(0.95, 0.9, 0.85), 0.3),
            (Vec3::new(1.0, 1.0, 1.0), 0.5),
            (Vec3::new(0.0, 0.0, 1.2), 0.5),
            (Vec3::new(2.5, 0.0, 0.0), 0.4),
        ] {
            let via_hull = sphere_hull_overlap(c, r, hull.halfspaces(), &bb);
            let via_box = sphere_aabb_overlap(c, r, &aabb);
            assert!(
                (via_hull - via_box).abs() < 1e-7 * via_box.max(1e-6),
                "at {c} r={r}: hull {via_hull} vs box {via_box}"
            );
        }
    }

    #[test]
    fn sphere_inside_cone_counts_fully() {
        let hull = ConvexHull::from_mesh(&shapes::cone(1.5, 3.0, 64, false)).unwrap();
        // Small sphere well inside the cone's wide upper region.
        let v = sphere_hull_overlap(
            Vec3::new(0.0, 0.0, 2.2),
            0.3,
            hull.halfspaces(),
            &hull.aabb(),
        );
        assert!((v - sphere_volume(0.3)).abs() < 1e-12);
    }

    #[test]
    fn sphere_poking_out_of_slanted_wall() {
        // A 45° wedge: halfspace z >= x (i.e. x - z <= 0 keeps the region
        // above the diagonal), intersected with a big box.
        let hull = box_hull();
        let mut hs = hull.halfspaces().clone();
        hs.push(adampack_geometry::Plane::from_coefficients(1.0, 0.0, -1.0, 0.0).unwrap());
        // Sphere centred on the diagonal plane: exactly half inside.
        let c = Vec3::new(0.0, 0.0, 0.0);
        let r = 0.4;
        let v = sphere_hull_overlap(c, r, &hs, &hull.aabb());
        assert!(
            (v - sphere_volume(r) / 2.0).abs() < 1e-6,
            "v = {v}, expect {}",
            sphere_volume(r) / 2.0
        );
    }

    #[test]
    fn single_plane_cut_matches_cap() {
        let hull = box_hull();
        // Sphere pokes out of the x = 1 face by 0.25.
        let c = Vec3::new(0.85, 0.0, 0.0);
        let r = 0.4;
        let v = sphere_hull_overlap(c, r, hull.halfspaces(), &hull.aabb());
        let expect = sphere_volume(r) - spherical_cap_volume(r, r - 0.15);
        assert!((v - expect).abs() < 1e-7, "v = {v}, expect {expect}");
    }

    #[test]
    fn cylinder_axis_sphere() {
        // Sphere centred on the axis of a cylinder with radius smaller than
        // the sphere: overlap = cylinder slab ∩ sphere (closed form via
        // revolution): V = ∫ π·min(R_cyl, ρ(z))² dz over the sphere height.
        let hull = ConvexHull::from_mesh(&shapes::cylinder(0.5, 4.0, 128)).unwrap();
        let c = Vec3::new(0.0, 0.0, 2.0);
        let r = 1.0;
        let v = sphere_hull_overlap(c, r, hull.halfspaces(), &hull.aabb());
        // Closed form: for |z| < z* = √(r²−R²) the disc is the cylinder
        // (area πR²); outside it is the sphere slice (π(r²−z²)).
        let rr = 0.5f64;
        let zs = (r * r - rr * rr).sqrt();
        let inner = PI * rr * rr * (2.0 * zs);
        let outer = 2.0 * PI * ((r * r * r - r * r * zs) - (r.powi(3) - zs.powi(3)) / 3.0);
        let expect = inner + outer;
        // The 128-segment cylinder is slightly smaller than the true circle.
        assert!(
            (v - expect).abs() / expect < 2e-3,
            "v = {v}, expect = {expect}"
        );
    }

    #[test]
    fn disjoint_and_degenerate() {
        let hull = box_hull();
        assert_eq!(
            sphere_hull_overlap(
                Vec3::new(5.0, 0.0, 0.0),
                0.5,
                hull.halfspaces(),
                &hull.aabb()
            ),
            0.0
        );
        assert_eq!(
            sphere_hull_overlap(Vec3::ZERO, 0.0, hull.halfspaces(), &hull.aabb()),
            0.0
        );
    }

    #[test]
    fn monotone_in_radius() {
        let hull = ConvexHull::from_mesh(&shapes::cone(1.0, 2.0, 48, false)).unwrap();
        let c = Vec3::new(0.2, -0.1, 1.2);
        let mut prev = 0.0;
        for k in 1..=10 {
            let r = 0.05 * k as f64;
            let v = sphere_hull_overlap(c, r, hull.halfspaces(), &hull.aabb());
            assert!(v >= prev - 1e-12, "overlap must grow with radius");
            prev = v;
        }
    }
}
