//! # adampack-overlap
//!
//! Exact overlap volumes between spheres and axis-aligned boxes, and the
//! packing-density probes built on them.
//!
//! The paper measures packing density with the external `overlap` C++
//! library (Strobl, Formella & Pöschel \[27\]) for "the exact calculation of
//! overlap volume of spheres and cubes": the density inside the Fig. 4
//! *virtual inner box* is the sum over particles of `V(sphere ∩ box)`
//! divided by the box volume. This crate reimplements that computation from
//! scratch:
//!
//! * closed-form building blocks: sphere volume, spherical caps,
//!   sphere–sphere lens volumes, and the exact area of a circle ∩ rectangle
//!   in 2-D,
//! * [`sphere_aabb_overlap`] — the volume of a sphere ∩ axis-aligned box,
//!   computed by integrating the exact circle–rectangle slice area along
//!   `z` with adaptive Simpson quadrature (the integrand is piecewise
//!   analytic; tolerances reach ~1e-12 relative),
//! * [`DensityProbe`] — the paper's virtual-inner-box density measurement.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod circle;
mod hull_volume;
mod polygon;
mod probe;
mod quad;
mod volume;

pub use circle::circle_rect_area;
pub use hull_volume::sphere_hull_overlap;
pub use polygon::{circle_polygon_area, clip_polygon_halfplane};
pub use probe::DensityProbe;
pub use quad::adaptive_simpson;
pub use volume::{sphere_aabb_overlap, sphere_sphere_overlap, sphere_volume, spherical_cap_volume};
