//! Adaptive Simpson quadrature.

/// Integrates `f` over `[a, b]` with adaptive Simpson to absolute tolerance
/// `tol`.
///
/// The recursion uses the classic Richardson error estimate `|S₂ − S₁|/15`
/// and halves the tolerance per split. `max_depth` bounds the recursion so a
/// pathological integrand terminates (accuracy then degrades gracefully).
pub fn adaptive_simpson<F>(f: F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64
where
    F: Fn(f64) -> f64,
{
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    if a > b {
        return -adaptive_simpson(f, b, a, tol, max_depth);
    }
    let m = 0.5 * (a + b);
    let (fa, fm, fb) = (f(a), f(m), f(b));
    let whole = simpson(a, b, fa, fm, fb);
    recurse(&f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse<F>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64
where
    F: Fn(f64) -> f64,
{
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let (flm, frm) = (f(lm), f(rm));
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn exact_on_cubics() {
        // Simpson integrates cubics exactly.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12, 30);
        // Antiderivative x⁴/4 − x² + x evaluated on [−1, 3].
        let exact = (81.0 / 4.0 - 9.0 + 3.0) - (0.25 - 1.0 - 1.0);
        assert!((v - exact).abs() < 1e-10, "v = {v}, exact = {exact}");
    }

    #[test]
    fn sine_integral() {
        let v = adaptive_simpson(f64::sin, 0.0, PI, 1e-12, 40);
        assert!((v - 2.0).abs() < 1e-11);
    }

    #[test]
    fn handles_kinks() {
        // |x| has a kink at 0; adaptive refinement still converges.
        let v = adaptive_simpson(f64::abs, -1.0, 2.0, 1e-12, 45);
        assert!((v - 2.5).abs() < 1e-10, "v = {v}");
    }

    #[test]
    fn semicircle_area() {
        // The exact profile a sphere slice integral sees.
        let v = adaptive_simpson(|x| (1.0 - x * x).max(0.0).sqrt(), -1.0, 1.0, 1e-12, 45);
        assert!((v - PI / 2.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn reversed_interval_negates() {
        let a = adaptive_simpson(|x| x, 0.0, 1.0, 1e-12, 20);
        let b = adaptive_simpson(|x| x, 1.0, 0.0, 1e-12, 20);
        assert!((a + b).abs() < 1e-15);
        assert_eq!(adaptive_simpson(|x| x, 2.0, 2.0, 1e-12, 20), 0.0);
    }

    #[test]
    fn depth_cap_terminates() {
        // A very noisy integrand with a tight tolerance and depth cap must
        // return (approximately) rather than recurse forever.
        let v = adaptive_simpson(|x| (50.0 * x).sin().abs(), 0.0, 1.0, 1e-14, 12);
        assert!(v.is_finite());
        assert!(v > 0.5 && v < 0.75, "v = {v}"); // exact is 2/π ≈ 0.6366
    }
}
