//! Sphere overlap volumes.

use adampack_geometry::{Aabb, Vec3};

use crate::circle::circle_rect_area;
use crate::quad::adaptive_simpson;

/// Volume of a sphere of radius `r` (0 for non-positive radii).
pub fn sphere_volume(r: f64) -> f64 {
    if r <= 0.0 {
        0.0
    } else {
        4.0 / 3.0 * std::f64::consts::PI * r * r * r
    }
}

/// Volume of a spherical cap of height `h` cut from a sphere of radius `r`.
///
/// `h` is clamped to `[0, 2r]` (`2r` giving the whole sphere).
pub fn spherical_cap_volume(r: f64, h: f64) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let h = h.clamp(0.0, 2.0 * r);
    std::f64::consts::PI * h * h * (3.0 * r - h) / 3.0
}

/// Exact overlap (lens) volume of two spheres.
///
/// Standard closed form: for centre distance `d < r1 + r2` the lens is the
/// sum of two spherical caps; fully contained spheres return the volume of
/// the smaller one.
pub fn sphere_sphere_overlap(c1: Vec3, r1: f64, c2: Vec3, r2: f64) -> f64 {
    if r1 <= 0.0 || r2 <= 0.0 {
        return 0.0;
    }
    let d = c1.distance(c2);
    if d >= r1 + r2 {
        return 0.0;
    }
    if d <= (r1 - r2).abs() {
        return sphere_volume(r1.min(r2));
    }
    // Lens volume (e.g. Weisstein, "Sphere-Sphere Intersection").
    let num = (r1 + r2 - d).powi(2) * (d * d + 2.0 * d * (r1 + r2) - 3.0 * (r1 - r2).powi(2));
    std::f64::consts::PI * num / (12.0 * d)
}

/// Exact volume of the intersection of a sphere with an axis-aligned box.
///
/// Horizontal slices of the intersection are circle ∩ rectangle regions with
/// closed-form area ([`circle_rect_area`]); this integrates that area along
/// `z` with adaptive Simpson quadrature. Fast paths cover the disjoint,
/// sphere-inside-box and box-inside-sphere cases exactly.
///
/// Relative accuracy is ~1e-10 or better for non-degenerate inputs — more
/// than sufficient for the paper's 3-decimal density figures.
pub fn sphere_aabb_overlap(center: Vec3, radius: f64, aabb: &Aabb) -> f64 {
    if radius <= 0.0 || aabb.is_empty() {
        return 0.0;
    }
    // Disjoint.
    if aabb.distance_sq_to_point(center) >= radius * radius {
        return 0.0;
    }
    // Sphere fully inside the box.
    let inside = center.x - radius >= aabb.min.x
        && center.x + radius <= aabb.max.x
        && center.y - radius >= aabb.min.y
        && center.y + radius <= aabb.max.y
        && center.z - radius >= aabb.min.z
        && center.z + radius <= aabb.max.z;
    if inside {
        return sphere_volume(radius);
    }
    // Box fully inside the sphere: all 8 corners within radius.
    let r2 = radius * radius;
    if aabb.corners().iter().all(|&c| c.distance_sq(center) <= r2) {
        return aabb.volume();
    }

    let z0 = (center.z - radius).max(aabb.min.z);
    let z1 = (center.z + radius).max(z0).min(aabb.max.z);
    if z1 <= z0 {
        return 0.0;
    }
    let slice = |z: f64| {
        let dz = z - center.z;
        let rho2 = r2 - dz * dz;
        if rho2 <= 0.0 {
            return 0.0;
        }
        circle_rect_area(
            center.x,
            center.y,
            rho2.sqrt(),
            aabb.min.x,
            aabb.max.x,
            aabb.min.y,
            aabb.max.y,
        )
    };
    // Absolute tolerance scaled to the candidate volume.
    let scale = sphere_volume(radius).min(aabb.volume()).max(1e-300);
    adaptive_simpson(slice, z0, z1, 1e-12 * scale.max(1.0) + 1e-15, 48).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const REL: f64 = 1e-9;

    fn rel_eq(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-12)
    }

    #[test]
    fn sphere_volume_basics() {
        assert!((sphere_volume(1.0) - 4.0 / 3.0 * PI).abs() < 1e-14);
        assert_eq!(sphere_volume(0.0), 0.0);
        assert_eq!(sphere_volume(-2.0), 0.0);
    }

    #[test]
    fn cap_volume_limits() {
        let r = 1.5;
        assert_eq!(spherical_cap_volume(r, 0.0), 0.0);
        assert!(rel_eq(
            spherical_cap_volume(r, 2.0 * r),
            sphere_volume(r),
            1e-14
        ));
        assert!(rel_eq(
            spherical_cap_volume(r, r),
            sphere_volume(r) / 2.0,
            1e-14
        ));
        // Clamping.
        assert!(rel_eq(
            spherical_cap_volume(r, 10.0),
            sphere_volume(r),
            1e-14
        ));
    }

    #[test]
    fn lens_volume_limits() {
        let c = Vec3::ZERO;
        // Identical spheres, zero distance: whole sphere.
        assert!(rel_eq(
            sphere_sphere_overlap(c, 1.0, c, 1.0),
            sphere_volume(1.0),
            1e-14
        ));
        // Touching: zero.
        assert_eq!(sphere_sphere_overlap(c, 1.0, Vec3::X * 2.0, 1.0), 0.0);
        // Small sphere inside big one.
        assert!(rel_eq(
            sphere_sphere_overlap(c, 2.0, Vec3::X * 0.3, 0.5),
            sphere_volume(0.5),
            1e-14
        ));
        // Symmetric half-overlap at distance r: two caps of height r/2.
        let v = sphere_sphere_overlap(c, 1.0, Vec3::X, 1.0);
        let expect = 2.0 * spherical_cap_volume(1.0, 0.5);
        assert!(rel_eq(v, expect, 1e-12), "v = {v}, expect = {expect}");
    }

    #[test]
    fn sphere_inside_box() {
        let b = Aabb::cube(Vec3::ZERO, 10.0);
        let v = sphere_aabb_overlap(Vec3::new(1.0, -2.0, 0.5), 1.0, &b);
        assert!(rel_eq(v, sphere_volume(1.0), 1e-14));
    }

    #[test]
    fn box_inside_sphere() {
        let b = Aabb::cube(Vec3::new(0.1, 0.0, -0.1), 0.5);
        let v = sphere_aabb_overlap(Vec3::ZERO, 5.0, &b);
        assert!(rel_eq(v, 0.125, 1e-14));
    }

    #[test]
    fn disjoint_is_zero() {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        assert_eq!(sphere_aabb_overlap(Vec3::new(5.0, 0.0, 0.0), 1.0, &b), 0.0);
        // Touching face exactly.
        assert_eq!(sphere_aabb_overlap(Vec3::new(2.0, 0.0, 0.0), 1.0, &b), 0.0);
    }

    #[test]
    fn single_face_cut_matches_cap_formula() {
        // Sphere sticking out of one face: overlap = sphere − cap.
        let b = Aabb::new(Vec3::splat(-10.0), Vec3::new(0.6, 10.0, 10.0));
        let r = 1.0;
        let v = sphere_aabb_overlap(Vec3::ZERO, r, &b);
        let cap_out = spherical_cap_volume(r, r - 0.6);
        let expect = sphere_volume(r) - cap_out;
        assert!(rel_eq(v, expect, REL), "v = {v}, expect = {expect}");
    }

    #[test]
    fn half_sphere_on_face_plane() {
        let b = Aabb::new(Vec3::new(0.0, -10.0, -10.0), Vec3::splat(10.0));
        let v = sphere_aabb_overlap(Vec3::ZERO, 2.0, &b);
        assert!(rel_eq(v, sphere_volume(2.0) / 2.0, REL), "v = {v}");
    }

    #[test]
    fn two_orthogonal_face_cuts() {
        // Quarter sphere: centre on an edge of a large box.
        let b = Aabb::new(Vec3::new(0.0, 0.0, -10.0), Vec3::splat(10.0));
        let v = sphere_aabb_overlap(Vec3::ZERO, 1.0, &b);
        assert!(rel_eq(v, sphere_volume(1.0) / 4.0, REL), "v = {v}");
    }

    #[test]
    fn corner_octant() {
        // Centre exactly on a box corner: one octant inside.
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
        let v = sphere_aabb_overlap(Vec3::ZERO, 1.0, &b);
        assert!(rel_eq(v, sphere_volume(1.0) / 8.0, REL), "v = {v}");
    }

    #[test]
    fn z_cut_uses_exact_slab_limits() {
        // Box that only clips the sphere in z: overlap = sphere − two caps.
        let b = Aabb::new(Vec3::new(-10.0, -10.0, -0.4), Vec3::new(10.0, 10.0, 0.3));
        let r = 1.0;
        let v = sphere_aabb_overlap(Vec3::ZERO, r, &b);
        let expect =
            sphere_volume(r) - spherical_cap_volume(r, r - 0.3) - spherical_cap_volume(r, r - 0.4);
        assert!(rel_eq(v, expect, REL), "v = {v}, expect = {expect}");
    }

    #[test]
    fn additive_under_box_split() {
        let (c, r) = (Vec3::new(0.2, -0.1, 0.3), 0.9);
        let whole = Aabb::cube(Vec3::ZERO, 2.0);
        let v = sphere_aabb_overlap(c, r, &whole);
        // Split along z at 0.15 (through the sphere).
        let lower = Aabb::new(whole.min, Vec3::new(whole.max.x, whole.max.y, 0.15));
        let upper = Aabb::new(Vec3::new(whole.min.x, whole.min.y, 0.15), whole.max);
        let v2 = sphere_aabb_overlap(c, r, &lower) + sphere_aabb_overlap(c, r, &upper);
        assert!(rel_eq(v, v2, 1e-8), "v = {v}, split sum = {v2}");
    }

    #[test]
    fn bounded_by_both_volumes() {
        let b = Aabb::cube(Vec3::splat(0.5), 1.0);
        for (c, r) in [
            (Vec3::ZERO, 0.7),
            (Vec3::splat(0.5), 0.4),
            (Vec3::new(1.0, 0.5, 0.0), 0.6),
            (Vec3::new(2.0, 2.0, 2.0), 3.0),
        ] {
            let v = sphere_aabb_overlap(c, r, &b);
            assert!(v >= 0.0);
            assert!(v <= sphere_volume(r) * (1.0 + 1e-12));
            assert!(v <= b.volume() * (1.0 + 1e-12));
        }
    }

    #[test]
    fn grid_reference_check() {
        // Awkward generic position cross-checked against a dense grid sum.
        let (c, r) = (Vec3::new(0.35, 0.8, -0.15), 0.75);
        let b = Aabb::new(Vec3::new(-0.2, 0.1, -0.6), Vec3::new(0.9, 1.2, 0.4));
        let v = sphere_aabb_overlap(c, r, &b);
        let n = 220;
        let e = b.extent();
        let cell = Vec3::new(e.x / n as f64, e.y / n as f64, e.z / n as f64);
        let mut grid = 0.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let p = b.min
                        + Vec3::new(
                            (i as f64 + 0.5) * cell.x,
                            (j as f64 + 0.5) * cell.y,
                            (k as f64 + 0.5) * cell.z,
                        );
                    if p.distance_sq(c) <= r * r {
                        grid += cell.x * cell.y * cell.z;
                    }
                }
            }
        }
        assert!((v - grid).abs() / grid < 5e-3, "v = {v}, grid = {grid}");
    }
}
