//! Packing-density probes (the paper's virtual inner box, Fig. 4).

use adampack_geometry::{Aabb, Vec3};

use crate::volume::sphere_aabb_overlap;

/// Measures packing density inside a probe box.
///
/// The paper evaluates *core* density in a virtual inner box "1/3 smaller"
/// than the 2×2×2 container, centred, to exclude wall-induced voids
/// (Fig. 4); [`DensityProbe::inner_box`] builds exactly that probe.
#[derive(Debug, Clone, Copy)]
pub struct DensityProbe {
    region: Aabb,
}

impl DensityProbe {
    /// Probe over an explicit box.
    pub fn new(region: Aabb) -> DensityProbe {
        assert!(
            !region.is_empty() && region.volume() > 0.0,
            "probe box must have volume"
        );
        DensityProbe { region }
    }

    /// The paper's virtual inner box: the container's bounding box shrunk
    /// towards its centre by `factor` (Fig. 4 uses `1/3`).
    pub fn inner_box(container: &Aabb, factor: f64) -> DensityProbe {
        DensityProbe::new(container.shrink(factor))
    }

    /// The probe region.
    pub fn region(&self) -> &Aabb {
        &self.region
    }

    /// Total solid volume of the given spheres inside the probe.
    ///
    /// Note: overlapping spheres double-count their lens volume, exactly as
    /// summing per-sphere `overlap` volumes does in the reference pipeline;
    /// with the paper's <1.1 %-of-radius contact overlaps the bias is
    /// negligible.
    pub fn solid_volume(&self, spheres: impl IntoIterator<Item = (Vec3, f64)>) -> f64 {
        spheres
            .into_iter()
            .map(|(c, r)| sphere_aabb_overlap(c, r, &self.region))
            .sum()
    }

    /// Packing density: solid volume / probe volume.
    pub fn density(&self, spheres: impl IntoIterator<Item = (Vec3, f64)>) -> f64 {
        self.solid_volume(spheres) / self.region.volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::sphere_volume;
    use std::f64::consts::PI;

    #[test]
    fn inner_box_matches_paper_geometry() {
        let container = Aabb::cube(Vec3::ZERO, 2.0);
        let probe = DensityProbe::inner_box(&container, 1.0 / 3.0);
        let e = probe.region().extent();
        assert!((e.x - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(probe.region().center(), Vec3::ZERO);
    }

    #[test]
    fn single_sphere_inside() {
        let probe = DensityProbe::new(Aabb::cube(Vec3::ZERO, 2.0));
        let d = probe.density([(Vec3::ZERO, 0.5)]);
        let expect = sphere_volume(0.5) / 8.0;
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn spheres_outside_probe_do_not_count() {
        let probe = DensityProbe::new(Aabb::cube(Vec3::ZERO, 2.0));
        let d = probe.density([(Vec3::new(10.0, 0.0, 0.0), 0.5)]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn straddling_sphere_counts_partially() {
        let probe = DensityProbe::new(Aabb::new(Vec3::ZERO, Vec3::splat(2.0)));
        // Half in, half out through the x = 0 face.
        let v = probe.solid_volume([(Vec3::new(0.0, 1.0, 1.0), 0.5)]);
        assert!((v - sphere_volume(0.5) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn simple_cubic_lattice_density() {
        // Unit-cell spheres at a simple cubic lattice have density π/6.
        let probe = DensityProbe::new(Aabb::new(Vec3::ZERO, Vec3::splat(4.0)));
        let mut spheres = Vec::new();
        // Cover the probe and a margin so boundary spheres contribute their
        // straddling parts symmetrically.
        for i in -1..5 {
            for j in -1..5 {
                for k in -1..5 {
                    spheres.push((
                        Vec3::new(i as f64 + 0.5, j as f64 + 0.5, k as f64 + 0.5),
                        0.5,
                    ));
                }
            }
        }
        let d = probe.density(spheres);
        assert!((d - PI / 6.0).abs() < 1e-6, "d = {d}, expect {}", PI / 6.0);
    }

    #[test]
    #[should_panic(expected = "probe box must have volume")]
    fn empty_probe_rejected() {
        let _ = DensityProbe::new(Aabb::empty());
    }
}
