//! Exact area of a circle ∩ axis-aligned rectangle in 2-D.
//!
//! This is the analytic kernel under [`crate::sphere_aabb_overlap`]: every
//! horizontal slice of a sphere ∩ box is a circle ∩ rectangle.
//!
//! The area is assembled from the *corner function* `Φ(x, y)` — the area of
//! the disk (radius `r`, centred at the origin) inside the quarter-plane
//! `{X ≤ x, Y ≤ y}` — by inclusion–exclusion over the four rectangle
//! corners:
//!
//! ```text
//! A = Φ(x1, y1) − Φ(x0, y1) − Φ(x1, y0) + Φ(x0, y0)
//! ```

/// Antiderivative of the half-chord: `∫ √(r² − t²) dt`.
fn ih(t: f64, r: f64) -> f64 {
    // Clamp for safety at |t| = r where the sqrt argument may round negative.
    let s = (r * r - t * t).max(0.0).sqrt();
    0.5 * (t * s + r * r * (t / r).clamp(-1.0, 1.0).asin())
}

/// Area of the disk of radius `r` centred at the origin within the region
/// `{X ≤ x, Y ≤ y}`.
fn corner_area(x: f64, y: f64, r: f64) -> f64 {
    if y <= -r || x <= -r {
        return 0.0;
    }
    let xc = x.clamp(-r, r);
    if y >= r {
        // Pure vertical-strip segment: ∫ 2√(r²−X²) from −r to x̂.
        return 2.0 * (ih(xc, r) - ih(-r, r));
    }
    let g = (r * r - y * y).max(0.0).sqrt();
    let mut area = 0.0;
    if y >= 0.0 {
        // X ∈ [−r, −g]: full chord; X ∈ (−g, g): y + √(r²−X²); X ∈ [g, r]: full chord.
        let t1 = xc.min(-g);
        area += 2.0 * (ih(t1, r) - ih(-r, r));
        if xc > -g {
            let t2 = xc.min(g);
            area += y * (t2 + g) + ih(t2, r) - ih(-g, r);
        }
        if xc > g {
            area += 2.0 * (ih(xc, r) - ih(g, r));
        }
    } else {
        // Only X ∈ (−g, g) contributes: (y + √(r²−X²))⁺ = y + √(r²−X²) there.
        if xc > -g {
            let t2 = xc.min(g);
            area += y * (t2 + g) + ih(t2, r) - ih(-g, r);
        }
    }
    area
}

/// Exact area of the intersection of the disk of radius `r` centred at
/// `(cx, cy)` with the rectangle `[x0, x1] × [y0, y1]`.
///
/// Returns 0 for a non-positive radius or an empty rectangle.
pub fn circle_rect_area(cx: f64, cy: f64, r: f64, x0: f64, x1: f64, y0: f64, y1: f64) -> f64 {
    if r <= 0.0 || x1 <= x0 || y1 <= y0 {
        return 0.0;
    }
    // Shift to disk-centred coordinates.
    let (a0, a1) = (x0 - cx, x1 - cx);
    let (b0, b1) = (y0 - cy, y1 - cy);
    let area = corner_area(a1, b1, r) - corner_area(a0, b1, r) - corner_area(a1, b0, r)
        + corner_area(a0, b0, r);
    // Clamp tiny negative round-off.
    area.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn disk_inside_rectangle_is_full_disk() {
        let a = circle_rect_area(0.0, 0.0, 1.0, -2.0, 2.0, -2.0, 2.0);
        assert!((a - PI).abs() < TOL, "a = {a}");
        // Off-centre disk still fully inside.
        let a = circle_rect_area(5.0, -3.0, 0.5, 0.0, 10.0, -10.0, 0.0);
        assert!((a - PI * 0.25).abs() < TOL);
    }

    #[test]
    fn rectangle_inside_disk_is_rectangle_area() {
        let a = circle_rect_area(0.0, 0.0, 10.0, -1.0, 2.0, 0.5, 1.5);
        assert!((a - 3.0).abs() < TOL, "a = {a}");
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(circle_rect_area(0.0, 0.0, 1.0, 2.0, 3.0, 0.0, 1.0), 0.0);
        assert_eq!(circle_rect_area(0.0, 0.0, 1.0, -3.0, -2.0, -3.0, -2.0), 0.0);
        // Diagonal separation: rectangle corner just outside the disk.
        let d = 1.02 / 2.0f64.sqrt();
        assert!(circle_rect_area(0.0, 0.0, 1.0, d, d + 2.0, d, d + 2.0) < 1e-12);
    }

    #[test]
    fn half_plane_cut_is_half_disk() {
        // Rectangle covering X ≤ 0 exactly.
        let a = circle_rect_area(0.0, 0.0, 1.0, -5.0, 0.0, -5.0, 5.0);
        assert!((a - PI / 2.0).abs() < TOL);
        // Y ≥ 0 half.
        let a = circle_rect_area(0.0, 0.0, 1.0, -5.0, 5.0, 0.0, 5.0);
        assert!((a - PI / 2.0).abs() < TOL);
    }

    #[test]
    fn quarter_disk() {
        let a = circle_rect_area(0.0, 0.0, 1.0, 0.0, 5.0, 0.0, 5.0);
        assert!((a - PI / 4.0).abs() < TOL);
        let a = circle_rect_area(0.0, 0.0, 1.0, -5.0, 0.0, -5.0, 0.0);
        assert!((a - PI / 4.0).abs() < TOL);
    }

    #[test]
    fn circular_segment_matches_closed_form() {
        // Strip X ≥ t cuts a segment of area r²·acos(t/r) − t√(r²−t²).
        let (r, t) = (2.0, 0.7);
        let a = circle_rect_area(0.0, 0.0, r, t, 10.0, -10.0, 10.0);
        let expect = r * r * (t / r).acos() - t * (r * r - t * t).sqrt();
        assert!((a - expect).abs() < TOL, "a = {a}, expect = {expect}");
    }

    #[test]
    fn additivity_under_rectangle_split() {
        // Splitting the rectangle must preserve total area, including when
        // the split line crosses the disk.
        let (cx, cy, r) = (0.3, -0.2, 1.1);
        let whole = circle_rect_area(cx, cy, r, -1.0, 2.0, -1.5, 1.0);
        let left = circle_rect_area(cx, cy, r, -1.0, 0.25, -1.5, 1.0);
        let right = circle_rect_area(cx, cy, r, 0.25, 2.0, -1.5, 1.0);
        assert!((whole - left - right).abs() < 1e-11);
        let bottom = circle_rect_area(cx, cy, r, -1.0, 2.0, -1.5, -0.1);
        let top = circle_rect_area(cx, cy, r, -1.0, 2.0, -0.1, 1.0);
        assert!((whole - bottom - top).abs() < 1e-11);
    }

    #[test]
    fn symmetry_under_reflection() {
        let a1 = circle_rect_area(0.4, 0.1, 1.0, 0.0, 1.0, 0.0, 1.0);
        let a2 = circle_rect_area(-0.4, 0.1, 1.0, -1.0, 0.0, 0.0, 1.0);
        assert!((a1 - a2).abs() < TOL);
        let a3 = circle_rect_area(0.4, -0.1, 1.0, 0.0, 1.0, -1.0, 0.0);
        assert!((a1 - a3).abs() < TOL);
    }

    #[test]
    fn monotone_in_rectangle_growth() {
        let mut prev = 0.0;
        for k in 1..=20 {
            let half = k as f64 * 0.1;
            let a = circle_rect_area(0.0, 0.0, 1.0, -half, half, -half, half);
            assert!(a >= prev - 1e-13, "area must grow with the rectangle");
            prev = a;
        }
        assert!((prev - PI).abs() < TOL, "eventually the full disk");
    }

    #[test]
    fn corner_overlap_against_monte_carlo() {
        // Disk overlapping one rectangle corner; compare with a dense grid sum.
        let (cx, cy, r) = (1.0, 1.0, 0.8);
        let (x0, x1, y0, y1) = (0.0, 1.2, 0.0, 1.3);
        let exact = circle_rect_area(cx, cy, r, x0, x1, y0, y1);
        let n = 2000;
        let (dx, dy) = ((x1 - x0) / n as f64, (y1 - y0) / n as f64);
        let mut grid = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = x0 + (i as f64 + 0.5) * dx;
                let y = y0 + (j as f64 + 0.5) * dy;
                if (x - cx).powi(2) + (y - cy).powi(2) <= r * r {
                    grid += dx * dy;
                }
            }
        }
        assert!(
            (exact - grid).abs() < 5e-4,
            "exact = {exact}, grid = {grid}"
        );
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(circle_rect_area(0.0, 0.0, 0.0, -1.0, 1.0, -1.0, 1.0), 0.0);
        assert_eq!(circle_rect_area(0.0, 0.0, -1.0, -1.0, 1.0, -1.0, 1.0), 0.0);
        assert_eq!(circle_rect_area(0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 1.0), 0.0);
        assert_eq!(circle_rect_area(0.0, 0.0, 1.0, 1.0, 0.5, -1.0, 1.0), 0.0);
    }
}
