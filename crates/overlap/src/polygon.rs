//! Exact area of a circle ∩ polygon in 2-D.
//!
//! Extends the [`crate::circle_rect_area`] kernel to arbitrary simple
//! polygons, which is what sphere ∩ convex-*hull* volume slices need
//! ([`crate::sphere_hull_overlap`]): every horizontal slice of a convex
//! polyhedron is a convex polygon.
//!
//! Method: the classic signed decomposition over polygon edges. For each
//! directed edge `(a, b)` the disk ∩ triangle `(origin, a, b)` area is
//! computed exactly — straight sub-segments inside the disk contribute
//! triangle areas, portions outside contribute circular sectors — and the
//! signed sum over a CCW polygon is the intersection area.

/// Signed area of disk(centre `o`, radius `r`) ∩ triangle `(o, a, b)`,
/// with the sign of `cross(a − o, b − o)`.
fn disk_triangle_area(ox: f64, oy: f64, r: f64, ax: f64, ay: f64, bx: f64, by: f64) -> f64 {
    // Shift the disk to the origin.
    let (ax, ay) = (ax - ox, ay - oy);
    let (bx, by) = (bx - ox, by - oy);
    let r2 = r * r;

    // Parametrize p(t) = a + t (b − a) and find circle crossings in (0, 1).
    let (dx, dy) = (bx - ax, by - ay);
    let qa = dx * dx + dy * dy;
    if qa < 1e-300 {
        return 0.0; // degenerate edge
    }
    let qb = 2.0 * (ax * dx + ay * dy);
    let qc = ax * ax + ay * ay - r2;
    let disc = qb * qb - 4.0 * qa * qc;

    let mut ts = [0.0f64; 4];
    let mut nt = 0;
    ts[nt] = 0.0;
    nt += 1;
    if disc > 0.0 {
        let sq = disc.sqrt();
        for t in [(-qb - sq) / (2.0 * qa), (-qb + sq) / (2.0 * qa)] {
            if t > 1e-12 && t < 1.0 - 1e-12 {
                ts[nt] = t;
                nt += 1;
            }
        }
        // Keep sorted (the two roots come ordered already).
    }
    ts[nt] = 1.0;
    nt += 1;

    let mut area = 0.0;
    for k in 0..nt - 1 {
        let (t0, t1) = (ts[k], ts[k + 1]);
        let (px, py) = (ax + t0 * dx, ay + t0 * dy);
        let (qx, qy) = (ax + t1 * dx, ay + t1 * dy);
        // Classify the sub-segment by its midpoint.
        let tm = 0.5 * (t0 + t1);
        let (mx, my) = (ax + tm * dx, ay + tm * dy);
        if mx * mx + my * my <= r2 {
            // Inside: triangle (0, p, q).
            area += 0.5 * (px * qy - py * qx);
        } else {
            // Outside: circular sector between the directions of p and q.
            let ang = (px * qy - py * qx).atan2(px * qx + py * qy);
            area += 0.5 * r2 * ang;
        }
    }
    area
}

/// Exact area of the intersection of the disk (centre `(cx, cy)`, radius
/// `r`) with a simple polygon given by its vertices in order (CCW positive;
/// a CW polygon yields the negated area).
///
/// Exact up to floating-point rounding; `O(vertices)` work.
pub fn circle_polygon_area(cx: f64, cy: f64, r: f64, polygon: &[(f64, f64)]) -> f64 {
    if r <= 0.0 || polygon.len() < 3 {
        return 0.0;
    }
    let mut area = 0.0;
    for i in 0..polygon.len() {
        let (ax, ay) = polygon[i];
        let (bx, by) = polygon[(i + 1) % polygon.len()];
        area += disk_triangle_area(cx, cy, r, ax, ay, bx, by);
    }
    area
}

/// Clips a convex polygon by the half-plane `a·x + b·y + c ≤ 0`
/// (2-D Sutherland–Hodgman step). Used to build hull cross-sections.
pub fn clip_polygon_halfplane(poly: &[(f64, f64)], a: f64, b: f64, c: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(poly.len() + 1);
    let n = poly.len();
    for i in 0..n {
        let p = poly[i];
        let q = poly[(i + 1) % n];
        let dp = a * p.0 + b * p.1 + c;
        let dq = a * q.0 + b * q.1 + c;
        if dp <= 0.0 {
            out.push(p);
        }
        if (dp <= 0.0) != (dq <= 0.0) {
            let t = dp / (dp - dq);
            out.push((p.0 + t * (q.0 - p.0), p.1 + t * (q.1 - p.1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::circle_rect_area;
    use std::f64::consts::PI;

    fn rect(x0: f64, x1: f64, y0: f64, y1: f64) -> Vec<(f64, f64)> {
        vec![(x0, y0), (x1, y0), (x1, y1), (x0, y1)] // CCW
    }

    #[test]
    fn matches_rectangle_kernel() {
        // The polygon path must agree with the closed-form rectangle path on
        // a grid of configurations.
        for &(cx, cy, r) in &[
            (0.0, 0.0, 1.0),
            (0.5, -0.3, 0.8),
            (1.2, 1.1, 0.5),
            (-2.0, 0.0, 3.0),
            (0.0, 0.0, 0.1),
        ] {
            let (x0, x1, y0, y1) = (-1.0, 1.5, -0.8, 1.2);
            let a_poly = circle_polygon_area(cx, cy, r, &rect(x0, x1, y0, y1));
            let a_rect = circle_rect_area(cx, cy, r, x0, x1, y0, y1);
            assert!(
                (a_poly - a_rect).abs() < 1e-12,
                "({cx},{cy},{r}): poly {a_poly} vs rect {a_rect}"
            );
        }
    }

    #[test]
    fn disk_inside_polygon() {
        let hexagon: Vec<(f64, f64)> = (0..6)
            .map(|k| {
                let th = PI / 3.0 * k as f64;
                (3.0 * th.cos(), 3.0 * th.sin())
            })
            .collect();
        let a = circle_polygon_area(0.2, -0.1, 0.5, &hexagon);
        assert!((a - PI * 0.25).abs() < 1e-12);
    }

    #[test]
    fn polygon_inside_disk() {
        let tri = vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)];
        let a = circle_polygon_area(0.3, 0.3, 10.0, &tri);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cw_polygon_negates() {
        let ccw = rect(-1.0, 1.0, -1.0, 1.0);
        let cw: Vec<(f64, f64)> = ccw.iter().rev().copied().collect();
        let a = circle_polygon_area(0.0, 0.0, 0.5, &ccw);
        let b = circle_polygon_area(0.0, 0.0, 0.5, &cw);
        assert!((a + b).abs() < 1e-12);
        assert!(a > 0.0);
    }

    #[test]
    fn disjoint_is_zero() {
        let tri = vec![(5.0, 5.0), (6.0, 5.0), (5.0, 6.0)];
        let a = circle_polygon_area(0.0, 0.0, 1.0, &tri);
        assert!(a.abs() < 1e-12);
    }

    #[test]
    fn halfplane_clip_square() {
        let sq = rect(-1.0, 1.0, -1.0, 1.0);
        // Keep x ≤ 0.
        let half = clip_polygon_halfplane(&sq, 1.0, 0.0, 0.0);
        let area: f64 = {
            let mut s = 0.0;
            for i in 0..half.len() {
                let p = half[i];
                let q = half[(i + 1) % half.len()];
                s += 0.5 * (p.0 * q.1 - p.1 * q.0);
            }
            s
        };
        assert!((area - 2.0).abs() < 1e-12, "area = {area}");
        // Clip away everything.
        let none = clip_polygon_halfplane(&sq, 1.0, 0.0, 5.0);
        assert!(none.is_empty());
        // Clip away nothing.
        let all = clip_polygon_halfplane(&sq, 1.0, 0.0, -5.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn oblique_clip_then_circle_area_consistent() {
        // Circle vs a clipped (triangle) region compared with the direct
        // triangle polygon.
        let sq = rect(0.0, 2.0, 0.0, 2.0);
        // Keep x + y ≤ 2: the lower-left triangle.
        let tri = clip_polygon_halfplane(&sq, 1.0, 1.0, -2.0);
        let a = circle_polygon_area(0.5, 0.5, 0.6, &tri);
        let direct = circle_polygon_area(0.5, 0.5, 0.6, &[(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!((a - direct).abs() < 1e-12);
    }
}
