//! Property tests for overlap volumes: bounds, monotonicity, and Monte-Carlo
//! agreement on randomized configurations.

use adampack_geometry::{Aabb, Vec3};
use adampack_overlap::{
    circle_rect_area, sphere_aabb_overlap, sphere_sphere_overlap, sphere_volume,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sphere_box_volume_is_bounded(
        c in prop::array::uniform3(-2.0f64..2.0),
        r in 0.05f64..1.5,
        half in 0.2f64..1.5,
    ) {
        let b = Aabb::cube(Vec3::ZERO, 2.0 * half);
        let v = sphere_aabb_overlap(Vec3::from_array(c), r, &b);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= sphere_volume(r) * (1.0 + 1e-9));
        prop_assert!(v <= b.volume() * (1.0 + 1e-9));
    }

    #[test]
    fn sphere_box_volume_monotone_in_radius(
        c in prop::array::uniform3(-1.0f64..1.0),
        r in 0.1f64..1.0,
    ) {
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let v1 = sphere_aabb_overlap(Vec3::from_array(c), r, &b);
        let v2 = sphere_aabb_overlap(Vec3::from_array(c), r * 1.3, &b);
        prop_assert!(v2 >= v1 - 1e-10, "growing the sphere cannot shrink the overlap");
    }

    #[test]
    fn sphere_box_monte_carlo_agreement(
        c in prop::array::uniform3(-1.2f64..1.2),
        r in 0.3f64..1.0,
        seed in 0u64..1000,
    ) {
        let center = Vec3::from_array(c);
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let v = sphere_aabb_overlap(center, r, &b);

        // Quasi-random sampling inside the sphere's bounding cube.
        let n = 40_000u64;
        let mut hits = 0u64;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let p = Vec3::new(
                center.x - r + 2.0 * r * next(),
                center.y - r + 2.0 * r * next(),
                center.z - r + 2.0 * r * next(),
            );
            if p.distance_sq(center) <= r * r && b.contains(p) {
                hits += 1;
            }
        }
        let cube_vol = 8.0 * r * r * r;
        let mc = hits as f64 / n as f64 * cube_vol;
        // 5-sigma-ish binomial bound.
        let p_hat = (hits as f64 / n as f64).max(1e-4);
        let sigma = cube_vol * (p_hat * (1.0 - p_hat) / n as f64).sqrt();
        prop_assert!((v - mc).abs() < 6.0 * sigma + 1e-3 * cube_vol,
            "exact {v} vs MC {mc} (sigma {sigma})");
    }

    #[test]
    fn lens_volume_symmetric_and_bounded(
        c2 in prop::array::uniform3(-2.0f64..2.0),
        r1 in 0.1f64..1.5,
        r2 in 0.1f64..1.5,
    ) {
        let a = sphere_sphere_overlap(Vec3::ZERO, r1, Vec3::from_array(c2), r2);
        let b = sphere_sphere_overlap(Vec3::from_array(c2), r2, Vec3::ZERO, r1);
        prop_assert!((a - b).abs() < 1e-12, "symmetry");
        prop_assert!(a >= 0.0);
        prop_assert!(a <= sphere_volume(r1.min(r2)) * (1.0 + 1e-12));
    }

    #[test]
    fn circle_rect_area_bounded_and_translation_invariant(
        cx in -2.0f64..2.0,
        cy in -2.0f64..2.0,
        r in 0.1f64..1.5,
        w in 0.2f64..2.0,
        h in 0.2f64..2.0,
        shift in -5.0f64..5.0,
    ) {
        let a = circle_rect_area(cx, cy, r, -w, w, -h, h);
        prop_assert!(a >= 0.0);
        prop_assert!(a <= std::f64::consts::PI * r * r + 1e-12);
        prop_assert!(a <= 4.0 * w * h + 1e-12);
        let b = circle_rect_area(cx + shift, cy, r, -w + shift, w + shift, -h, h);
        prop_assert!((a - b).abs() < 1e-10, "translation invariance: {a} vs {b}");
    }
}
