//! Property tests for optimizers and schedulers.

use adampack_opt::{
    by_name, Adam, AdamConfig, ConstantLr, CosineAnnealingLr, LrScheduler, Optimizer,
    ReduceLrOnPlateau, ReduceLrOnPlateauConfig, StepLr,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adam_first_step_magnitude_is_at_most_lr(
        lr in 1e-4f64..1.0,
        g in prop::collection::vec(-100.0f64..100.0, 1..10),
    ) {
        // Adam's bias-corrected first step is lr·g/|g| ⇒ magnitude ≤ lr.
        prop_assume!(g.iter().all(|x| x.abs() > 1e-9));
        let mut opt = Adam::new(AdamConfig { lr, ..AdamConfig::default() }, g.len());
        let mut p = vec![0.0; g.len()];
        opt.step(&mut p, &g);
        for (i, &x) in p.iter().enumerate() {
            prop_assert!(x.abs() <= lr * (1.0 + 1e-9), "param {i}: |{x}| > lr {lr}");
            // Direction opposes the gradient.
            prop_assert!(x * g[i] <= 0.0);
        }
    }

    #[test]
    fn amsgrad_effective_lr_never_grows(
        grads in prop::collection::vec(-10.0f64..10.0, 4..40),
    ) {
        // The AMSGrad denominator (√v̂max) is non-decreasing, so for a
        // constant-magnitude gradient the per-step movement cannot grow.
        let mut opt = Adam::new(
            AdamConfig { lr: 0.01, amsgrad: true, ..AdamConfig::default() },
            1,
        );
        let mut p = vec![0.0];
        let mut prev_vmax = 0.0;
        for g in &grads {
            opt.step(&mut p, &[*g]);
            let vmax = opt.v_max()[0];
            prop_assert!(vmax >= prev_vmax - 1e-18);
            prev_vmax = vmax;
        }
    }

    #[test]
    fn all_optimizers_leave_finite_state(
        name_idx in 0usize..8,
        grads in prop::collection::vec(-1e6f64..1e6, 1..30),
    ) {
        let names = ["sgd", "momentum", "adagrad", "rmsprop", "adam", "amsgrad", "nadam", "adamw"];
        let mut opt = by_name(names[name_idx], 1e-3, 1).unwrap();
        let mut p = vec![1.0];
        for g in &grads {
            opt.step(&mut p, &[*g]);
            prop_assert!(p[0].is_finite(), "{} produced non-finite params", names[name_idx]);
        }
    }

    #[test]
    fn plateau_lr_is_monotone_nonincreasing(
        metrics in prop::collection::vec(0.0f64..100.0, 1..200),
        factor in 0.1f64..0.9,
        patience in 0u64..10,
    ) {
        let mut s = ReduceLrOnPlateau::new(ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor,
            patience,
            ..ReduceLrOnPlateauConfig::default()
        });
        let mut last = f64::INFINITY;
        for m in metrics {
            let lr = s.step(m);
            prop_assert!(lr <= last.min(1.0) + 1e-18, "lr must never increase");
            prop_assert!(lr > 0.0);
            last = lr;
        }
    }

    #[test]
    fn step_lr_hits_exact_powers(
        step_size in 1u64..20,
        gamma in 0.1f64..0.99,
        total in 1u64..100,
    ) {
        let mut s = StepLr::new(1.0, step_size, gamma);
        let mut lr = 1.0;
        for _ in 0..total {
            lr = s.step(0.0);
        }
        let expect = gamma.powi((total / step_size) as i32);
        prop_assert!((lr - expect).abs() < 1e-12 * expect.max(1.0));
    }

    #[test]
    fn cosine_lr_bounded_and_monotone(
        initial in 0.01f64..1.0,
        frac_min in 0.0f64..0.9,
        t_max in 2u64..200,
    ) {
        let min_lr = initial * frac_min;
        let mut s = CosineAnnealingLr::new(initial, min_lr, t_max);
        let mut prev = s.current_lr();
        for _ in 0..t_max + 5 {
            let lr = s.step(0.0);
            prop_assert!(lr <= prev + 1e-15, "cosine decay must be monotone");
            prop_assert!(lr >= min_lr - 1e-15 && lr <= initial + 1e-15);
            prev = lr;
        }
        prop_assert!((prev - min_lr).abs() < 1e-12);
    }

    #[test]
    fn constant_lr_ignores_metrics(lr in 1e-6f64..10.0, m in -1e6f64..1e6) {
        let mut s = ConstantLr::new(lr);
        prop_assert_eq!(s.step(m), lr);
    }
}
