//! Serializable optimizer and scheduler state.
//!
//! Checkpoint/resume and the divergence sentinel's in-memory rollback both
//! need the *complete* mutable state of the update rule — for Adam/AMSGrad
//! that is the m/v/v̂-max slots and the step counter the bias correction
//! depends on; dropping any of it changes the remaining trajectory, which
//! would break the bitwise resume guarantee. The snapshot types here are
//! deliberately dumb flat containers: a few scalars plus named slot
//! vectors, copied verbatim, so a save → load round trip is bitwise exact
//! and the encoding layer (in `adampack-core`) never needs to know which
//! optimizer it is serializing.

/// Flat snapshot of an optimizer's mutable state.
///
/// `slots` holds the per-parameter state vectors in an order fixed by each
/// optimizer (e.g. Adam: `[m, v]`, AMSGrad: `[m, v, v_max]`); `scalars`
/// holds non-config scalar state (e.g. NAdam's μ-product). Hyper-parameters
/// are *not* part of the snapshot — the loading optimizer must be built
/// with the same configuration, which [`crate::Optimizer::load_state`]
/// cross-checks structurally (slot count and lengths).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizerState {
    /// Step counter (`steps_taken`).
    pub t: u64,
    /// Base learning rate in force at snapshot time.
    pub lr: f64,
    /// Scalar state beyond `t`/`lr` (optimizer-specific order).
    pub scalars: Vec<f64>,
    /// Per-parameter state vectors (optimizer-specific order).
    pub slots: Vec<Vec<f64>>,
}

impl OptimizerState {
    /// Begins refilling the snapshot in place: sets the scalar header and
    /// clears `scalars`/`slots` *contents* while keeping every allocated
    /// buffer, so repeated saves into the same snapshot are allocation-free
    /// once the shapes have stabilized.
    pub(crate) fn refill(&mut self, t: u64, lr: f64, n_slots: usize) -> &mut [Vec<f64>] {
        self.t = t;
        self.lr = lr;
        self.scalars.clear();
        self.slots.resize_with(n_slots, Vec::new);
        self.slots.truncate(n_slots);
        for s in self.slots.iter_mut() {
            s.clear();
        }
        &mut self.slots
    }

    /// True when every slot element and scalar is finite (rollback sanity
    /// check: restoring non-finite moments would re-diverge immediately).
    pub fn is_finite(&self) -> bool {
        self.lr.is_finite()
            && self.scalars.iter().all(|x| x.is_finite())
            && self.slots.iter().all(|s| s.iter().all(|x| x.is_finite()))
    }
}

/// Error from [`crate::Optimizer::load_state`]: the snapshot's shape does
/// not match the optimizer it is being loaded into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMismatch {
    /// What disagreed (human-readable).
    pub message: String,
}

impl std::fmt::Display for StateMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimizer state mismatch: {}", self.message)
    }
}

impl std::error::Error for StateMismatch {}

pub(crate) fn mismatch(message: impl Into<String>) -> StateMismatch {
    StateMismatch {
        message: message.into(),
    }
}

/// Copies a snapshot slot into a live state vector, checking lengths.
pub(crate) fn load_slot(dst: &mut [f64], src: &[f64], name: &str) -> Result<(), StateMismatch> {
    if dst.len() != src.len() {
        return Err(mismatch(format!(
            "slot '{name}': expected {} elements, snapshot has {}",
            dst.len(),
            src.len()
        )));
    }
    dst.copy_from_slice(src);
    Ok(())
}

/// Checks a snapshot's slot count before loading.
pub(crate) fn check_slots(s: &OptimizerState, expected: usize) -> Result<(), StateMismatch> {
    if s.slots.len() != expected {
        return Err(mismatch(format!(
            "expected {expected} state slots, snapshot has {}",
            s.slots.len()
        )));
    }
    Ok(())
}

/// Flat snapshot of a learning-rate scheduler's mutable state.
///
/// Every scheduler in this crate fits in four floats and four integers
/// (`ReduceLrOnPlateau` is the largest: lr, best, num_bad, cooldown,
/// reductions), so the snapshot is `Copy` and saving it never allocates —
/// it can be taken inside the hot step loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedulerState {
    /// Float state words (scheduler-specific order).
    pub floats: [f64; 4],
    /// Integer state words (scheduler-specific order).
    pub ints: [u64; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_reuses_buffers_and_clears_contents() {
        let mut s = OptimizerState::default();
        {
            let slots = s.refill(3, 0.5, 2);
            slots[0].extend_from_slice(&[1.0, 2.0]);
            slots[1].extend_from_slice(&[3.0]);
        }
        assert_eq!(s.t, 3);
        assert_eq!(s.slots.len(), 2);
        {
            let slots = s.refill(4, 0.25, 2);
            assert!(slots[0].is_empty() && slots[1].is_empty());
        }
        assert_eq!(s.lr, 0.25);
    }

    #[test]
    fn finiteness_check_catches_bad_slots() {
        let mut s = OptimizerState {
            t: 1,
            lr: 0.1,
            scalars: vec![1.0],
            slots: vec![vec![0.0, 1.0]],
        };
        assert!(s.is_finite());
        s.slots[0][1] = f64::NAN;
        assert!(!s.is_finite());
        s.slots[0][1] = 1.0;
        s.scalars[0] = f64::INFINITY;
        assert!(!s.is_finite());
    }

    #[test]
    fn load_slot_rejects_length_mismatch() {
        let mut dst = vec![0.0; 3];
        assert!(load_slot(&mut dst, &[1.0, 2.0, 3.0], "m").is_ok());
        assert_eq!(dst, vec![1.0, 2.0, 3.0]);
        let err = load_slot(&mut dst, &[1.0], "m").unwrap_err();
        assert!(err.to_string().contains("slot 'm'"), "{err}");
    }
}
