//! AdamW (Loshchilov & Hutter, 2019): Adam with decoupled weight decay.

use rayon::par;

use crate::adam::{Adam, AdamConfig};
use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{OptimizerState, StateMismatch};

/// Hyper-parameters for [`AdamW`]. Defaults match `torch.optim.AdamW`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// Decoupled weight-decay coefficient λ (applied multiplicatively to
    /// parameters, *not* folded into the gradient as plain Adam does).
    pub weight_decay: f64,
    /// AMSGrad switch.
    pub amsgrad: bool,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        AdamWConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-2,
            amsgrad: false,
        }
    }
}

/// Adam with decoupled weight decay: `θ ← θ(1 − lr·λ)` before the Adam
/// update. Not used by the paper, but included because packing objectives
/// occasionally benefit from a weak pull towards the origin (a cheap
/// centring regularizer) without polluting the moment estimates.
#[derive(Debug, Clone)]
pub struct AdamW {
    inner: Adam,
    weight_decay: f64,
}

impl AdamW {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: AdamWConfig, n_params: usize) -> AdamW {
        assert!(cfg.weight_decay >= 0.0, "weight decay must be non-negative");
        AdamW {
            inner: Adam::new(
                AdamConfig {
                    lr: cfg.lr,
                    beta1: cfg.beta1,
                    beta2: cfg.beta2,
                    eps: cfg.eps,
                    weight_decay: 0.0, // decoupled: applied here, not inside
                    amsgrad: cfg.amsgrad,
                    ..AdamConfig::default()
                },
                n_params,
            ),
            weight_decay: cfg.weight_decay,
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.inner.n_params(), params, grads);
        let shrink = 1.0 - self.inner.lr() * self.weight_decay;
        par::for_each_slot(params, |_, p| *p *= shrink);
        self.inner.step(params, grads);
    }

    fn lr(&self) -> f64 {
        self.inner.lr()
    }

    fn set_lr(&mut self, lr: f64) {
        self.inner.set_lr(lr);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn n_params(&self) -> usize {
        self.inner.n_params()
    }

    fn steps_taken(&self) -> u64 {
        self.inner.steps_taken()
    }

    fn save_state(&self, out: &mut OptimizerState) {
        // The decoupled decay adds no mutable state of its own; the inner
        // Adam's snapshot is the whole story.
        self.inner.save_state(out);
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        self.inner.load_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_shrinks_parameters_without_gradients() {
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: 0.1,
                weight_decay: 0.5,
                ..Default::default()
            },
            1,
        );
        let mut p = vec![10.0];
        opt.step(&mut p, &[0.0]);
        // One step: 10 · (1 − 0.1·0.5) = 9.5, Adam part contributes nothing
        // for a zero gradient.
        assert!((p[0] - 9.5).abs() < 1e-12, "p = {}", p[0]);
    }

    #[test]
    fn zero_decay_equals_plain_adam() {
        use crate::adam::{Adam, AdamConfig};
        let mut w = AdamW::new(
            AdamWConfig {
                lr: 0.01,
                weight_decay: 0.0,
                ..Default::default()
            },
            1,
        );
        let mut a = Adam::new(
            AdamConfig {
                lr: 0.01,
                ..AdamConfig::default()
            },
            1,
        );
        let (mut pw, mut pa) = (vec![1.0], vec![1.0]);
        for k in 0..10 {
            let g = [(k as f64 * 0.37).sin()];
            w.step(&mut pw, &g);
            a.step(&mut pa, &g);
        }
        assert!((pw[0] - pa[0]).abs() < 1e-15);
    }

    #[test]
    fn decoupling_differs_from_coupled_l2() {
        use crate::adam::{Adam, AdamConfig};
        let mut decoupled = AdamW::new(
            AdamWConfig {
                lr: 0.01,
                weight_decay: 0.1,
                ..Default::default()
            },
            1,
        );
        let mut coupled = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let (mut pd, mut pc) = (vec![5.0], vec![5.0]);
        for _ in 0..50 {
            decoupled.step(&mut pd, &[1.0]);
            coupled.step(&mut pc, &[1.0]);
        }
        assert!(
            (pd[0] - pc[0]).abs() > 1e-6,
            "decoupled vs coupled L2 must differ"
        );
    }

    #[test]
    fn still_descends_quadratics() {
        let mut opt = AdamW::new(
            AdamWConfig {
                lr: 0.05,
                ..Default::default()
            },
            2,
        );
        let mut p = vec![3.0, -2.0];
        for _ in 0..2000 {
            let g = vec![2.0 * p[0], 8.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.05 && p[1].abs() < 0.05, "p = {p:?}");
    }
}
