//! Learning-rate schedulers.
//!
//! The paper's best configuration (Fig. 3) pairs Adam with PyTorch's
//! `ReduceLROnPlateau`; [`ReduceLrOnPlateau`] reproduces that scheduler's
//! exact semantics (relative/absolute thresholds, patience, cooldown,
//! minimum LR). Fixed-rate and classic decay schedules are included for the
//! learning-rate study and ablations.

use crate::state::SchedulerState;

/// A learning-rate schedule.
///
/// Call [`LrScheduler::step`] once per optimization step (or epoch) with the
/// latest objective value; it returns the learning rate to install in the
/// optimizer via [`crate::Optimizer::set_lr`].
pub trait LrScheduler: Send {
    /// Advances the schedule given the latest metric (lower = better) and
    /// returns the learning rate to use next.
    fn step(&mut self, metric: f64) -> f64;

    /// The learning rate the schedule currently prescribes.
    fn current_lr(&self) -> f64;

    /// Restores the initial state.
    fn reset(&mut self);

    /// Snapshots the complete mutable state (allocation-free: the snapshot
    /// is `Copy`). Feeding it back through [`LrScheduler::load_state`] on an
    /// identically configured scheduler reproduces the remaining schedule
    /// bitwise.
    fn save_state(&self) -> SchedulerState;

    /// Restores state captured by [`LrScheduler::save_state`].
    fn load_state(&mut self, state: SchedulerState);

    /// Forces an immediate learning-rate cut and returns the new rate —
    /// the divergence sentinel's recovery hook. Schedulers with a natural
    /// reduction rule apply it (the plateau scheduler performs exactly the
    /// cut it would after exhausted patience); the rest halve the rate.
    fn force_reduction(&mut self) -> f64;
}

/// Fixed learning rate (the paper's `10⁻²`, `10⁻³`, `10⁻⁴` baselines).
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr {
    lr: f64,
}

impl ConstantLr {
    /// Creates a constant schedule.
    pub fn new(lr: f64) -> ConstantLr {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        ConstantLr { lr }
    }
}

impl LrScheduler for ConstantLr {
    fn step(&mut self, _metric: f64) -> f64 {
        self.lr
    }
    fn current_lr(&self) -> f64 {
        self.lr
    }
    fn reset(&mut self) {}
    fn save_state(&self) -> SchedulerState {
        SchedulerState {
            floats: [self.lr, 0.0, 0.0, 0.0],
            ..SchedulerState::default()
        }
    }
    fn load_state(&mut self, state: SchedulerState) {
        self.lr = state.floats[0];
    }
    fn force_reduction(&mut self) -> f64 {
        // "Constant" bends for divergence recovery: a sentinel cut that
        // left the rate unchanged would deterministically re-diverge.
        self.lr *= 0.5;
        self.lr
    }
}

/// Multiplies the LR by `gamma` every `step_size` steps.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    initial_lr: f64,
    lr: f64,
    step_size: u64,
    gamma: f64,
    t: u64,
}

impl StepLr {
    /// Creates a step-decay schedule.
    pub fn new(initial_lr: f64, step_size: u64, gamma: f64) -> StepLr {
        assert!(initial_lr > 0.0 && initial_lr.is_finite());
        assert!(step_size > 0, "step_size must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepLr {
            initial_lr,
            lr: initial_lr,
            step_size,
            gamma,
            t: 0,
        }
    }
}

impl LrScheduler for StepLr {
    fn step(&mut self, _metric: f64) -> f64 {
        self.t += 1;
        if self.t.is_multiple_of(self.step_size) {
            self.lr *= self.gamma;
        }
        self.lr
    }
    fn current_lr(&self) -> f64 {
        self.lr
    }
    fn reset(&mut self) {
        self.lr = self.initial_lr;
        self.t = 0;
    }
    fn save_state(&self) -> SchedulerState {
        SchedulerState {
            floats: [self.lr, 0.0, 0.0, 0.0],
            ints: [self.t, 0, 0, 0],
        }
    }
    fn load_state(&mut self, state: SchedulerState) {
        self.lr = state.floats[0];
        self.t = state.ints[0];
    }
    fn force_reduction(&mut self) -> f64 {
        self.lr *= self.gamma;
        self.lr
    }
}

/// Multiplies the LR by `gamma` every step.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialLr {
    initial_lr: f64,
    lr: f64,
    gamma: f64,
}

impl ExponentialLr {
    /// Creates an exponential-decay schedule.
    pub fn new(initial_lr: f64, gamma: f64) -> ExponentialLr {
        assert!(initial_lr > 0.0 && initial_lr.is_finite());
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        ExponentialLr {
            initial_lr,
            lr: initial_lr,
            gamma,
        }
    }
}

impl LrScheduler for ExponentialLr {
    fn step(&mut self, _metric: f64) -> f64 {
        self.lr *= self.gamma;
        self.lr
    }
    fn current_lr(&self) -> f64 {
        self.lr
    }
    fn reset(&mut self) {
        self.lr = self.initial_lr;
    }
    fn save_state(&self) -> SchedulerState {
        SchedulerState {
            floats: [self.lr, 0.0, 0.0, 0.0],
            ..SchedulerState::default()
        }
    }
    fn load_state(&mut self, state: SchedulerState) {
        self.lr = state.floats[0];
    }
    fn force_reduction(&mut self) -> f64 {
        self.lr *= self.gamma;
        self.lr
    }
}

/// Cosine annealing from the initial LR down to `min_lr` over `t_max` steps,
/// then holding `min_lr`.
#[derive(Debug, Clone, Copy)]
pub struct CosineAnnealingLr {
    initial_lr: f64,
    min_lr: f64,
    t_max: u64,
    t: u64,
}

impl CosineAnnealingLr {
    /// Creates a cosine annealing schedule.
    pub fn new(initial_lr: f64, min_lr: f64, t_max: u64) -> CosineAnnealingLr {
        assert!(initial_lr > 0.0 && initial_lr.is_finite());
        assert!(min_lr >= 0.0 && min_lr <= initial_lr);
        assert!(t_max > 0);
        CosineAnnealingLr {
            initial_lr,
            min_lr,
            t_max,
            t: 0,
        }
    }
}

impl LrScheduler for CosineAnnealingLr {
    fn step(&mut self, _metric: f64) -> f64 {
        self.t = (self.t + 1).min(self.t_max);
        self.current_lr()
    }
    fn current_lr(&self) -> f64 {
        let frac = self.t as f64 / self.t_max as f64;
        self.min_lr
            + (self.initial_lr - self.min_lr) * 0.5 * (1.0 + (std::f64::consts::PI * frac).cos())
    }
    fn reset(&mut self) {
        self.t = 0;
    }
    fn save_state(&self) -> SchedulerState {
        SchedulerState {
            ints: [self.t, 0, 0, 0],
            ..SchedulerState::default()
        }
    }
    fn load_state(&mut self, state: SchedulerState) {
        self.t = state.ints[0];
    }
    fn force_reduction(&mut self) -> f64 {
        // The rate is a pure function of `t`, so a cut means jumping the
        // clock: halve the remaining annealing window (monotone decrease,
        // lands on min_lr after a bounded number of cuts).
        self.t = ((self.t + self.t_max).div_ceil(2)).min(self.t_max);
        self.current_lr()
    }
}

/// How [`ReduceLrOnPlateau`] decides whether a metric improved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdMode {
    /// Improvement when `metric < best · (1 - threshold)` (PyTorch default).
    Relative,
    /// Improvement when `metric < best - threshold`.
    Absolute,
}

/// Configuration for [`ReduceLrOnPlateau`]. Defaults match
/// `torch.optim.lr_scheduler.ReduceLROnPlateau` in `min` mode.
#[derive(Debug, Clone, Copy)]
pub struct ReduceLrOnPlateauConfig {
    /// Initial learning rate.
    pub initial_lr: f64,
    /// Multiplicative reduction factor.
    pub factor: f64,
    /// Number of non-improving steps tolerated before reducing.
    pub patience: u64,
    /// Improvement threshold.
    pub threshold: f64,
    /// Threshold interpretation.
    pub threshold_mode: ThresholdMode,
    /// Steps to wait after a reduction before counting bad steps again.
    pub cooldown: u64,
    /// Lower bound on the learning rate.
    pub min_lr: f64,
    /// Reductions smaller than this are skipped (PyTorch `eps`).
    pub eps: f64,
}

impl Default for ReduceLrOnPlateauConfig {
    fn default() -> Self {
        ReduceLrOnPlateauConfig {
            initial_lr: 1e-2,
            factor: 0.1,
            patience: 10,
            threshold: 1e-4,
            threshold_mode: ThresholdMode::Relative,
            cooldown: 0,
            min_lr: 0.0,
            eps: 1e-8,
        }
    }
}

/// PyTorch-compatible `ReduceLROnPlateau` in `min` mode.
///
/// This is the scheduler behind the paper's best learning-rate configuration
/// (Fig. 3): "the fitness suddenly drops after a plateau" when this scheduler
/// cuts the LR.
#[derive(Debug, Clone)]
pub struct ReduceLrOnPlateau {
    cfg: ReduceLrOnPlateauConfig,
    lr: f64,
    best: f64,
    num_bad: u64,
    cooldown_counter: u64,
    reductions: u64,
}

impl ReduceLrOnPlateau {
    /// Creates a plateau scheduler.
    pub fn new(cfg: ReduceLrOnPlateauConfig) -> ReduceLrOnPlateau {
        assert!(cfg.initial_lr > 0.0 && cfg.initial_lr.is_finite());
        assert!(
            cfg.factor > 0.0 && cfg.factor < 1.0,
            "factor must be in (0, 1)"
        );
        assert!(cfg.threshold >= 0.0);
        assert!(cfg.min_lr >= 0.0);
        ReduceLrOnPlateau {
            cfg,
            lr: cfg.initial_lr,
            best: f64::INFINITY,
            num_bad: 0,
            cooldown_counter: 0,
            reductions: 0,
        }
    }

    /// Number of times the LR has been reduced.
    pub fn reductions(&self) -> u64 {
        self.reductions
    }

    /// Best metric observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    fn is_improvement(&self, metric: f64) -> bool {
        // A non-finite metric (NaN from a diverged objective, ±∞ from an
        // overflow) is never an improvement: without this guard a single
        // -∞ poisons `best` permanently, and NaN comparisons silently
        // count as bad steps against a corrupted baseline.
        if !metric.is_finite() {
            return false;
        }
        match self.cfg.threshold_mode {
            ThresholdMode::Relative => metric < self.best * (1.0 - self.cfg.threshold),
            ThresholdMode::Absolute => metric < self.best - self.cfg.threshold,
        }
    }

    /// The exact LR cut `step` performs after exhausted patience, shared
    /// with [`LrScheduler::force_reduction`].
    fn reduce(&mut self) {
        let new_lr = (self.lr * self.cfg.factor).max(self.cfg.min_lr);
        if self.lr - new_lr > self.cfg.eps {
            self.lr = new_lr;
            self.reductions += 1;
            adampack_telemetry::metrics::LR_REDUCTIONS_TOTAL.inc();
            adampack_telemetry::timeline::instant("lr_reduction", self.lr);
            adampack_telemetry::debug!(
                "plateau: lr reduced to {:.3e} (reduction #{}, best metric {:.6})",
                self.lr,
                self.reductions,
                self.best,
            );
        }
        self.cooldown_counter = self.cfg.cooldown;
        self.num_bad = 0;
    }
}

impl LrScheduler for ReduceLrOnPlateau {
    fn step(&mut self, metric: f64) -> f64 {
        if self.is_improvement(metric) {
            self.best = metric;
            self.num_bad = 0;
        } else {
            self.num_bad += 1;
        }

        if self.cooldown_counter > 0 {
            self.cooldown_counter -= 1;
            self.num_bad = 0;
        }

        if self.num_bad > self.cfg.patience {
            self.reduce();
        }
        self.lr
    }

    fn current_lr(&self) -> f64 {
        self.lr
    }

    fn reset(&mut self) {
        self.lr = self.cfg.initial_lr;
        self.best = f64::INFINITY;
        self.num_bad = 0;
        self.cooldown_counter = 0;
        self.reductions = 0;
    }

    fn save_state(&self) -> SchedulerState {
        SchedulerState {
            floats: [self.lr, self.best, 0.0, 0.0],
            ints: [self.num_bad, self.cooldown_counter, self.reductions, 0],
        }
    }

    fn load_state(&mut self, state: SchedulerState) {
        self.lr = state.floats[0];
        self.best = state.floats[1];
        self.num_bad = state.ints[0];
        self.cooldown_counter = state.ints[1];
        self.reductions = state.ints[2];
    }

    fn force_reduction(&mut self) -> f64 {
        // Divergence recovery uses the scheduler's own cut so that the
        // min_lr/eps floor, cooldown and reduction accounting stay uniform
        // with plateau-triggered reductions. `best` is deliberately kept:
        // the rolled-back state had reached it once already.
        self.reduce();
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_lr_never_changes() {
        let mut s = ConstantLr::new(1e-3);
        for m in [1.0, 0.5, 2.0, f64::INFINITY] {
            assert_eq!(s.step(m), 1e-3);
        }
    }

    #[test]
    fn step_lr_decays_on_schedule() {
        let mut s = StepLr::new(1.0, 3, 0.5);
        let lrs: Vec<f64> = (0..7).map(|_| s.step(0.0)).collect();
        assert_eq!(lrs, vec![1.0, 1.0, 0.5, 0.5, 0.5, 0.25, 0.25]);
        s.reset();
        assert_eq!(s.current_lr(), 1.0);
    }

    #[test]
    fn exponential_lr_decays_every_step() {
        let mut s = ExponentialLr::new(1.0, 0.9);
        s.step(0.0);
        s.step(0.0);
        assert!((s.current_lr() - 0.81).abs() < 1e-15);
    }

    #[test]
    fn cosine_annealing_endpoints() {
        let mut s = CosineAnnealingLr::new(1.0, 0.1, 10);
        assert!((s.current_lr() - 1.0).abs() < 1e-12);
        for _ in 0..10 {
            s.step(0.0);
        }
        assert!((s.current_lr() - 0.1).abs() < 1e-12);
        // Holds min after t_max.
        s.step(0.0);
        assert!((s.current_lr() - 0.1).abs() < 1e-12);
        // Midpoint is the arithmetic mean.
        s.reset();
        for _ in 0..5 {
            s.step(0.0);
        }
        assert!((s.current_lr() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn plateau_reduces_after_patience_exceeded() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor: 0.5,
            patience: 2,
            threshold: 0.0,
            threshold_mode: ThresholdMode::Absolute,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        assert_eq!(s.step(1.0), 1.0); // improvement (best = 1.0)
        assert_eq!(s.step(1.0), 1.0); // bad 1
        assert_eq!(s.step(1.0), 1.0); // bad 2 (== patience, not yet > )
        assert_eq!(s.step(1.0), 0.5); // bad 3 > patience ⇒ reduce
        assert_eq!(s.reductions(), 1);
        // Counter resets after the reduction.
        assert_eq!(s.step(1.0), 0.5);
        assert_eq!(s.step(1.0), 0.5);
        assert_eq!(s.step(1.0), 0.25);
    }

    #[test]
    fn plateau_relative_threshold_semantics() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor: 0.5,
            patience: 0,
            threshold: 0.1, // needs 10 % improvement
            threshold_mode: ThresholdMode::Relative,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        s.step(100.0); // best = 100
                       // 95 is not a 10 % improvement over 100 ⇒ bad step ⇒ reduce (patience 0).
        assert_eq!(s.step(95.0), 0.5);
        // 85 beats 100·0.9 = 90 ⇒ improvement, no further cut.
        assert_eq!(s.step(85.0), 0.5);
        assert_eq!(s.best(), 85.0);
    }

    #[test]
    fn plateau_respects_min_lr_and_eps() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1e-3,
            factor: 0.1,
            patience: 0,
            threshold: 0.0,
            threshold_mode: ThresholdMode::Absolute,
            min_lr: 1e-4,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        s.step(1.0);
        assert_eq!(s.step(1.0), 1e-4); // clamped to min_lr
                                       // Further "reductions" are no-ops smaller than eps.
        assert_eq!(s.step(1.0), 1e-4);
        assert_eq!(s.reductions(), 1);
    }

    #[test]
    fn plateau_cooldown_suppresses_counting() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor: 0.5,
            patience: 0,
            threshold: 0.0,
            threshold_mode: ThresholdMode::Absolute,
            cooldown: 3,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        s.step(1.0); // best
        assert_eq!(s.step(1.0), 0.5); // reduce, cooldown = 3
                                      // During cooldown no reductions even though metrics are bad.
        assert_eq!(s.step(1.0), 0.5);
        assert_eq!(s.step(1.0), 0.5);
        assert_eq!(s.step(1.0), 0.5);
        // Cooldown over: next bad step reduces again.
        assert_eq!(s.step(1.0), 0.25);
    }

    #[test]
    fn plateau_reset() {
        let mut s = ReduceLrOnPlateau::new(ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            patience: 0,
            threshold_mode: ThresholdMode::Absolute,
            threshold: 0.0,
            factor: 0.5,
            ..ReduceLrOnPlateauConfig::default()
        });
        s.step(1.0);
        s.step(1.0);
        assert!(s.current_lr() < 1.0);
        s.reset();
        assert_eq!(s.current_lr(), 1.0);
        assert_eq!(s.reductions(), 0);
        assert_eq!(s.best(), f64::INFINITY);
    }

    #[test]
    fn plateau_with_improving_metrics_never_reduces() {
        let mut s = ReduceLrOnPlateau::new(ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            patience: 1,
            ..ReduceLrOnPlateauConfig::default()
        });
        let mut metric = 100.0;
        for _ in 0..50 {
            s.step(metric);
            metric *= 0.9;
        }
        assert_eq!(s.reductions(), 0);
        assert_eq!(s.current_lr(), 1.0);
    }

    #[test]
    fn plateau_non_finite_metrics_do_not_corrupt_best() {
        let mut s = ReduceLrOnPlateau::new(ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            patience: 100,
            ..ReduceLrOnPlateauConfig::default()
        });
        s.step(5.0);
        assert_eq!(s.best(), 5.0);
        // NaN, +∞ and (crucially) -∞ must all count as bad steps and
        // leave the recorded best untouched.
        for m in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            s.step(m);
            assert_eq!(s.best(), 5.0, "best corrupted by {m}");
        }
        // After the bad spell a genuine improvement is still recognised.
        s.step(4.0);
        assert_eq!(s.best(), 4.0);
    }

    #[test]
    fn plateau_force_reduction_matches_natural_cut() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor: 0.25,
            patience: 10,
            cooldown: 2,
            min_lr: 0.1,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        s.step(3.0);
        assert_eq!(s.force_reduction(), 0.25);
        assert_eq!(s.reductions(), 1);
        assert_eq!(s.best(), 3.0, "forced cut keeps the best metric");
        // Cooldown armed: immediately-following bad metrics don't count.
        s.step(9.0);
        s.step(9.0);
        assert_eq!(s.current_lr(), 0.25);
        // Floor respected: 0.25 · 0.25 < min_lr ⇒ clamps to 0.1.
        assert_eq!(s.force_reduction(), 0.1);
        // At the floor further forced cuts are no-ops (eps gate).
        assert_eq!(s.force_reduction(), 0.1);
        assert_eq!(s.reductions(), 2);
    }

    #[test]
    fn plateau_state_round_trip_is_bitwise() {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1.0,
            factor: 0.5,
            patience: 2,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut s = ReduceLrOnPlateau::new(cfg);
        for m in [3.0, 2.5, 2.6, 2.7, 2.8, 2.9] {
            s.step(m);
        }
        let snap = s.save_state();
        let mut replay: Vec<f64> = Vec::new();
        for m in [3.0, 3.0, 3.0, 2.0, 2.1] {
            replay.push(s.step(m));
        }
        let mut r = ReduceLrOnPlateau::new(cfg);
        r.load_state(snap);
        for (k, m) in [3.0, 3.0, 3.0, 2.0, 2.1].into_iter().enumerate() {
            assert_eq!(r.step(m).to_bits(), replay[k].to_bits(), "step {k}");
        }
        assert_eq!(r.reductions(), s.reductions());
    }

    #[test]
    fn non_plateau_schedulers_state_round_trip() {
        // Each scheduler is advanced, snapshotted, advanced further, then a
        // fresh instance restored from the snapshot must replay bitwise.
        fn check<S: LrScheduler>(mut a: S, mut fresh: S, what: &str) {
            for _ in 0..7 {
                a.step(1.0);
            }
            let snap = a.save_state();
            let cont: Vec<f64> = (0..5).map(|_| a.step(1.0)).collect();
            fresh.load_state(snap);
            let replay: Vec<f64> = (0..5).map(|_| fresh.step(1.0)).collect();
            for (k, (x, y)) in cont.iter().zip(&replay).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{what} step {k}");
            }
        }
        check(ConstantLr::new(0.3), ConstantLr::new(0.3), "constant");
        check(StepLr::new(1.0, 3, 0.5), StepLr::new(1.0, 3, 0.5), "step");
        check(
            ExponentialLr::new(1.0, 0.9),
            ExponentialLr::new(1.0, 0.9),
            "exponential",
        );
        check(
            CosineAnnealingLr::new(1.0, 0.01, 40),
            CosineAnnealingLr::new(1.0, 0.01, 40),
            "cosine",
        );
    }

    #[test]
    fn force_reduction_shrinks_every_scheduler() {
        // The sentinel relies on force_reduction actually lowering (or at
        // worst pinning) the rate for every scheduler kind.
        let mut c = ConstantLr::new(1.0);
        assert_eq!(c.force_reduction(), 0.5);
        let mut st = StepLr::new(1.0, 10, 0.5);
        assert_eq!(st.force_reduction(), 0.5);
        let mut e = ExponentialLr::new(1.0, 0.9);
        assert!((e.force_reduction() - 0.9).abs() < 1e-15);
        let mut cos = CosineAnnealingLr::new(1.0, 0.0, 100);
        let before = cos.current_lr();
        let after = cos.force_reduction();
        assert!(
            after < before,
            "cosine cut must shrink: {before} -> {after}"
        );
        // Repeated cuts converge on eta_min instead of oscillating.
        let mut last = after;
        for _ in 0..10 {
            let next = cos.force_reduction();
            assert!(next <= last + 1e-15);
            last = next;
        }
    }
}
