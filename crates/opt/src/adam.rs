//! Adam [Kingma & Ba] and its AMSGrad variant [Reddi, Kale & Kumar] with
//! PyTorch-compatible update semantics.

use rayon::par;
use wide::f64x4;

use crate::kernel::Kernel;
use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{check_slots, load_slot, OptimizerState, StateMismatch};

/// Hyper-parameters for [`Adam`]. Defaults match `torch.optim.Adam`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// L2 weight decay coefficient (added to the gradient, PyTorch style).
    pub weight_decay: f64,
    /// Enables the AMSGrad maximum over second moments, the variant the
    /// paper uses ("Adaptive Moment Estimation with stable steps").
    pub amsgrad: bool,
    /// Which implementation runs the slot update (scalar oracle vs 4-lane
    /// fused). Both are bitwise identical; see [`Kernel`].
    pub kernel: Kernel,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            amsgrad: false,
            kernel: Kernel::default(),
        }
    }
}

impl AdamConfig {
    /// Panics on out-of-range hyper-parameters.
    fn validate(&self) {
        assert!(
            self.lr > 0.0 && self.lr.is_finite(),
            "lr must be positive, got {}",
            self.lr
        );
        assert!(
            (0.0..1.0).contains(&self.beta1),
            "beta1 must be in [0, 1), got {}",
            self.beta1
        );
        assert!(
            (0.0..1.0).contains(&self.beta2),
            "beta2 must be in [0, 1), got {}",
            self.beta2
        );
        assert!(self.eps > 0.0, "eps must be positive, got {}", self.eps);
        assert!(
            self.weight_decay >= 0.0,
            "weight_decay must be non-negative"
        );
    }
}

/// The Adam optimizer (optionally AMSGrad).
///
/// Update rule (PyTorch semantics):
///
/// ```text
/// m_t   = β₁ m_{t-1} + (1-β₁) g_t
/// v_t   = β₂ v_{t-1} + (1-β₂) g_t²
/// m̂_t  = m_t / (1 - β₁^t)
/// v̄_t  = amsgrad ? max(v̄_{t-1}, v_t) : v_t
/// θ_t   = θ_{t-1} - lr · m̂_t / (√(v̄_t / (1-β₂^t)) + ε)
/// ```
///
/// With AMSGrad the running maximum is taken over the *raw* second moment
/// (as PyTorch does), keeping the effective per-parameter step size
/// non-increasing — the property the paper leans on for convergence in its
/// highly non-convex packing landscape.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    v_max: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: AdamConfig, n_params: usize) -> Adam {
        cfg.validate();
        Adam {
            cfg,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            v_max: if cfg.amsgrad {
                vec![0.0; n_params]
            } else {
                Vec::new()
            },
            t: 0,
        }
    }

    /// The hyper-parameters currently in force.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Read-only view of the AMSGrad running maximum (empty unless AMSGrad).
    pub fn v_max(&self) -> &[f64] {
        &self.v_max
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.m.len(), params, grads);
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            amsgrad,
            kernel: _,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        // Element-wise update, one writer per slot: parallel chunking
        // cannot change the arithmetic, so the trajectory is bitwise
        // identical for any thread count. The SIMD kernel fuses four slots
        // per lane but performs the identical IEEE operation sequence per
        // element, so scalar and simd trajectories are bitwise identical
        // too (the `LegacyScalar` bench baseline shares the scalar update —
        // the pre-PR-4 optimizer arithmetic never changed).
        let upd = Update {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            bc1,
            bc2,
        };
        // The optimizer state stays full f64 under every kernel; SimdMixed
        // lowers only the objective's pair coordinates, so its slot updates
        // take the (bitwise-equivalent) fused f64 path.
        let simd = matches!(self.cfg.kernel, Kernel::Simd | Kernel::SimdMixed);
        if amsgrad {
            par::for_each_window_zip4(
                params,
                &mut self.m,
                &mut self.v,
                &mut self.v_max,
                |start, p, m, v, vm| {
                    let g = &grads[start..start + p.len()];
                    if simd {
                        upd.amsgrad_window_simd(p, m, v, vm, g);
                    } else {
                        upd.amsgrad_window_scalar(p, m, v, vm, g);
                    }
                },
            );
        } else {
            par::for_each_window_zip3(params, &mut self.m, &mut self.v, |start, p, m, v| {
                let g = &grads[start..start + p.len()];
                if simd {
                    upd.plain_window_simd(p, m, v, g);
                } else {
                    upd.plain_window_scalar(p, m, v, g);
                }
            });
        }
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.v_max.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.m.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }

    fn save_state(&self, out: &mut OptimizerState) {
        let n_slots = if self.cfg.amsgrad { 3 } else { 2 };
        let slots = out.refill(self.t, self.cfg.lr, n_slots);
        slots[0].extend_from_slice(&self.m);
        slots[1].extend_from_slice(&self.v);
        if self.cfg.amsgrad {
            slots[2].extend_from_slice(&self.v_max);
        }
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        check_slots(state, if self.cfg.amsgrad { 3 } else { 2 })?;
        load_slot(&mut self.m, &state.slots[0], "m")?;
        load_slot(&mut self.v, &state.slots[1], "v")?;
        if self.cfg.amsgrad {
            load_slot(&mut self.v_max, &state.slots[2], "v_max")?;
        }
        self.t = state.t;
        self.set_lr(state.lr);
        Ok(())
    }
}

/// Per-step scalar constants of the Adam update, shared by the scalar and
/// SIMD window bodies.
#[derive(Clone, Copy)]
struct Update {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    bc1: f64,
    bc2: f64,
}

/// Stores the four lanes of `v` into `dst[..4]`.
#[inline]
fn store(dst: &mut [f64], v: f64x4) {
    dst[..4].copy_from_slice(&v.to_array());
}

impl Update {
    /// Scalar AMSGrad update over one contiguous window (the oracle body;
    /// also the tail of the SIMD body). `v_eff` uses the SSE-style maximum
    /// (`if a > b { a } else { b }`) so lane and tail agree bitwise
    /// unconditionally; second moments are non-negative, so this matches
    /// `f64::max` on every reachable input.
    fn amsgrad_window_scalar(
        &self,
        p: &mut [f64],
        m: &mut [f64],
        v: &mut [f64],
        vm: &mut [f64],
        g: &[f64],
    ) {
        for i in 0..p.len() {
            let gi = g[i] + self.weight_decay * p[i];
            let m_new = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
            let v_new = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
            m[i] = m_new;
            v[i] = v_new;
            let v_eff = if vm[i] > v_new { vm[i] } else { v_new };
            vm[i] = v_eff;
            let m_hat = m_new / self.bc1;
            let denom = (v_eff / self.bc2).sqrt() + self.eps;
            p[i] -= self.lr * m_hat / denom;
        }
    }

    /// Lane-fused AMSGrad update: four slots per iteration, scalar tail.
    /// Every operation is element-wise IEEE in the same sequence as the
    /// scalar body, so the result is bitwise identical to it — chunk
    /// boundaries (which move with the pool width) cannot affect the
    /// trajectory.
    fn amsgrad_window_simd(
        &self,
        p: &mut [f64],
        m: &mut [f64],
        v: &mut [f64],
        vm: &mut [f64],
        g: &[f64],
    ) {
        let n = p.len();
        let lanes = n - n % 4;
        let b1 = f64x4::splat(self.beta1);
        let one_m_b1 = f64x4::splat(1.0 - self.beta1);
        let b2 = f64x4::splat(self.beta2);
        let one_m_b2 = f64x4::splat(1.0 - self.beta2);
        let lr = f64x4::splat(self.lr);
        let eps = f64x4::splat(self.eps);
        let wd = f64x4::splat(self.weight_decay);
        let bc1 = f64x4::splat(self.bc1);
        let bc2 = f64x4::splat(self.bc2);
        let mut i = 0;
        while i < lanes {
            let pv = f64x4::from_slice(&p[i..]);
            let gv = f64x4::from_slice(&g[i..]) + wd * pv;
            let m_new = b1 * f64x4::from_slice(&m[i..]) + one_m_b1 * gv;
            let v_new = b2 * f64x4::from_slice(&v[i..]) + (one_m_b2 * gv) * gv;
            let v_eff = f64x4::from_slice(&vm[i..]).max(v_new);
            let m_hat = m_new / bc1;
            let denom = (v_eff / bc2).sqrt() + eps;
            store(&mut p[i..], pv - lr * m_hat / denom);
            store(&mut m[i..], m_new);
            store(&mut v[i..], v_new);
            store(&mut vm[i..], v_eff);
            i += 4;
        }
        self.amsgrad_window_scalar(
            &mut p[lanes..],
            &mut m[lanes..],
            &mut v[lanes..],
            &mut vm[lanes..],
            &g[lanes..],
        );
    }

    /// Scalar plain-Adam update over one contiguous window.
    fn plain_window_scalar(&self, p: &mut [f64], m: &mut [f64], v: &mut [f64], g: &[f64]) {
        for i in 0..p.len() {
            let gi = g[i] + self.weight_decay * p[i];
            let m_new = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
            let v_new = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
            m[i] = m_new;
            v[i] = v_new;
            let m_hat = m_new / self.bc1;
            let denom = (v_new / self.bc2).sqrt() + self.eps;
            p[i] -= self.lr * m_hat / denom;
        }
    }

    /// Lane-fused plain-Adam update (see [`Update::amsgrad_window_simd`]).
    fn plain_window_simd(&self, p: &mut [f64], m: &mut [f64], v: &mut [f64], g: &[f64]) {
        let n = p.len();
        let lanes = n - n % 4;
        let b1 = f64x4::splat(self.beta1);
        let one_m_b1 = f64x4::splat(1.0 - self.beta1);
        let b2 = f64x4::splat(self.beta2);
        let one_m_b2 = f64x4::splat(1.0 - self.beta2);
        let lr = f64x4::splat(self.lr);
        let eps = f64x4::splat(self.eps);
        let wd = f64x4::splat(self.weight_decay);
        let bc1 = f64x4::splat(self.bc1);
        let bc2 = f64x4::splat(self.bc2);
        let mut i = 0;
        while i < lanes {
            let pv = f64x4::from_slice(&p[i..]);
            let gv = f64x4::from_slice(&g[i..]) + wd * pv;
            let m_new = b1 * f64x4::from_slice(&m[i..]) + one_m_b1 * gv;
            let v_new = b2 * f64x4::from_slice(&v[i..]) + (one_m_b2 * gv) * gv;
            let m_hat = m_new / bc1;
            let denom = (v_new / bc2).sqrt() + eps;
            store(&mut p[i..], pv - lr * m_hat / denom);
            store(&mut m[i..], m_new);
            store(&mut v[i..], v_new);
            i += 4;
        }
        self.plain_window_scalar(
            &mut p[lanes..],
            &mut m[lanes..],
            &mut v[lanes..],
            &g[lanes..],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar and SIMD kernels must produce bitwise-identical trajectories,
    /// including at window tails (sizes not divisible by the lane width).
    #[test]
    fn scalar_and_simd_kernels_agree_bitwise() {
        for amsgrad in [false, true] {
            for n in [1, 3, 4, 7, 64, 131] {
                let cfg = AdamConfig {
                    lr: 0.05,
                    weight_decay: 0.01,
                    amsgrad,
                    ..AdamConfig::default()
                };
                let mut scalar = Adam::new(
                    AdamConfig {
                        kernel: Kernel::Scalar,
                        ..cfg
                    },
                    n,
                );
                let mut simd = Adam::new(
                    AdamConfig {
                        kernel: Kernel::Simd,
                        ..cfg
                    },
                    n,
                );
                let mut ps: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 1.0).collect();
                let mut pv = ps.clone();
                for step in 0..25 {
                    let g: Vec<f64> = (0..n)
                        .map(|i| ((i * 31 + step * 17) % 97) as f64 * 0.11 - 5.0)
                        .collect();
                    scalar.step(&mut ps, &g);
                    simd.step(&mut pv, &g);
                }
                for i in 0..n {
                    assert_eq!(
                        ps[i].to_bits(),
                        pv[i].to_bits(),
                        "n={n} amsgrad={amsgrad} slot {i}: {} vs {}",
                        ps[i],
                        pv[i]
                    );
                }
            }
        }
    }

    #[test]
    fn first_step_matches_hand_computation() {
        // For any constant gradient, the bias-corrected first step is
        // lr · g/|g| / (1 + eps·…) ≈ lr (sign of g).
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![0.0];
        adam.step(&mut p, &[1.0]);
        // m̂ = 1, v̂ = 1 ⇒ Δ = 0.1/(1 + 1e-8).
        let expect = -0.1 / (1.0 + 1e-8);
        assert!((p[0] - expect).abs() < 1e-15, "p = {}", p[0]);
    }

    #[test]
    fn two_steps_match_hand_computation() {
        // lr = 0.5, g = [3, then 1] on a single parameter.
        let cfg = AdamConfig {
            lr: 0.5,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(cfg, 1);
        let mut p = vec![0.0];
        adam.step(&mut p, &[3.0]);
        let step1 = 0.5 * 3.0 / (3.0 + 1e-8); // m̂=3, √v̂=3
        assert!((p[0] + step1).abs() < 1e-12);

        adam.step(&mut p, &[1.0]);
        // t=2: m = 0.9·0.3 + 0.1·1 = 0.37; bc1 = 1-0.81 = 0.19; m̂ = 0.37/0.19.
        // v = 0.999·0.009 + 0.001·1 = 0.009991 + ... compute:
        let m = 0.9 * (0.1 * 3.0) + 0.1 * 1.0;
        let v = 0.999 * (0.001 * 9.0) + 0.001 * 1.0;
        let m_hat = m / (1.0 - 0.9f64.powi(2));
        let v_hat = v / (1.0 - 0.999f64.powi(2));
        let step2 = 0.5 * m_hat / (v_hat.sqrt() + 1e-8);
        assert!((p[0] + step1 + step2).abs() < 1e-12, "p = {}", p[0]);
    }

    #[test]
    fn amsgrad_vmax_is_monotone_nondecreasing() {
        let mut adam = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            2,
        );
        let mut p = vec![0.0, 0.0];
        let mut prev = [0.0, 0.0];
        // Alternate large and small gradients; v decays but v_max must not.
        for k in 0..50 {
            let g = if k % 2 == 0 { [5.0, 0.1] } else { [0.01, 0.01] };
            adam.step(&mut p, &g);
            for (i, p) in prev.iter_mut().enumerate() {
                assert!(adam.v_max()[i] >= *p - 1e-18, "v_max decreased at step {k}");
                *p = adam.v_max()[i];
            }
        }
    }

    #[test]
    fn amsgrad_differs_from_adam_after_gradient_spike() {
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        let mut plain = Adam::new(
            AdamConfig {
                amsgrad: false,
                ..cfg
            },
            1,
        );
        let mut ams = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..cfg
            },
            1,
        );
        let (mut pp, mut pa) = (vec![0.0], vec![0.0]);
        let spike_then_small = |k: usize| if k == 0 { 100.0 } else { 0.1 };
        for k in 0..20 {
            let g = [spike_then_small(k)];
            plain.step(&mut pp, &g);
            ams.step(&mut pa, &g);
        }
        // AMSGrad remembers the spike in v_max, so it takes smaller steps.
        assert!(pa[0].abs() < pp[0].abs(), "amsgrad {pa:?} vs adam {pp:?}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![5.0];
        for _ in 0..100 {
            adam.step(&mut p, &[0.0]); // zero data gradient; only decay acts
        }
        assert!(p[0] < 5.0 && p[0] > 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut adam = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p1 = vec![1.0];
        adam.step(&mut p1, &[2.0]);
        adam.step(&mut p1, &[0.5]);
        adam.reset();
        assert_eq!(adam.steps_taken(), 0);
        let mut p2 = vec![1.0];
        adam.step(&mut p2, &[2.0]);
        let mut fresh = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p3 = vec![1.0];
        fresh.step(&mut p3, &[2.0]);
        assert_eq!(p2, p3, "post-reset trajectory matches a fresh optimizer");
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut adam = Adam::new(
            AdamConfig {
                lr: 1e-3,
                ..AdamConfig::default()
            },
            1,
        );
        adam.set_lr(1e-2);
        assert_eq!(adam.lr(), 1e-2);
        let mut p = vec![0.0];
        adam.step(&mut p, &[1.0]);
        assert!((p[0] + 1e-2 / (1.0 + 1e-8)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn rejects_negative_lr() {
        let _ = Adam::new(
            AdamConfig {
                lr: -1.0,
                ..AdamConfig::default()
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "optimizer sized for")]
    fn rejects_mismatched_sizes() {
        let mut adam = Adam::new(AdamConfig::default(), 2);
        let mut p = vec![0.0, 0.0, 0.0];
        adam.step(&mut p, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn adaptive_rates_are_per_parameter() {
        // Two parameters with gradients of very different scales end up with
        // comparable step magnitudes — Adam's defining property.
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            2,
        );
        let mut p = vec![0.0, 0.0];
        for _ in 0..10 {
            adam.step(&mut p, &[1000.0, 0.001]);
        }
        let ratio = p[0] / p[1];
        assert!(
            (0.5..2.0).contains(&ratio),
            "steps should be scale-invariant-ish, ratio = {ratio}"
        );
    }
}
