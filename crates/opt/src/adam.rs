//! Adam [Kingma & Ba] and its AMSGrad variant [Reddi, Kale & Kumar] with
//! PyTorch-compatible update semantics.

use rayon::par;

use crate::optimizer::{check_sizes, Optimizer};

/// Hyper-parameters for [`Adam`]. Defaults match `torch.optim.Adam`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// L2 weight decay coefficient (added to the gradient, PyTorch style).
    pub weight_decay: f64,
    /// Enables the AMSGrad maximum over second moments, the variant the
    /// paper uses ("Adaptive Moment Estimation with stable steps").
    pub amsgrad: bool,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            amsgrad: false,
        }
    }
}

impl AdamConfig {
    /// Panics on out-of-range hyper-parameters.
    fn validate(&self) {
        assert!(
            self.lr > 0.0 && self.lr.is_finite(),
            "lr must be positive, got {}",
            self.lr
        );
        assert!(
            (0.0..1.0).contains(&self.beta1),
            "beta1 must be in [0, 1), got {}",
            self.beta1
        );
        assert!(
            (0.0..1.0).contains(&self.beta2),
            "beta2 must be in [0, 1), got {}",
            self.beta2
        );
        assert!(self.eps > 0.0, "eps must be positive, got {}", self.eps);
        assert!(
            self.weight_decay >= 0.0,
            "weight_decay must be non-negative"
        );
    }
}

/// The Adam optimizer (optionally AMSGrad).
///
/// Update rule (PyTorch semantics):
///
/// ```text
/// m_t   = β₁ m_{t-1} + (1-β₁) g_t
/// v_t   = β₂ v_{t-1} + (1-β₂) g_t²
/// m̂_t  = m_t / (1 - β₁^t)
/// v̄_t  = amsgrad ? max(v̄_{t-1}, v_t) : v_t
/// θ_t   = θ_{t-1} - lr · m̂_t / (√(v̄_t / (1-β₂^t)) + ε)
/// ```
///
/// With AMSGrad the running maximum is taken over the *raw* second moment
/// (as PyTorch does), keeping the effective per-parameter step size
/// non-increasing — the property the paper leans on for convergence in its
/// highly non-convex packing landscape.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    v_max: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: AdamConfig, n_params: usize) -> Adam {
        cfg.validate();
        Adam {
            cfg,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            v_max: if cfg.amsgrad {
                vec![0.0; n_params]
            } else {
                Vec::new()
            },
            t: 0,
        }
    }

    /// The hyper-parameters currently in force.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Read-only view of the AMSGrad running maximum (empty unless AMSGrad).
    pub fn v_max(&self) -> &[f64] {
        &self.v_max
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.m.len(), params, grads);
        self.t += 1;
        let AdamConfig {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            amsgrad,
        } = self.cfg;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        // Element-wise update, one writer per slot: parallel chunking
        // cannot change the arithmetic, so the trajectory is bitwise
        // identical for any thread count.
        if amsgrad {
            par::for_each_slot_zip4(
                params,
                &mut self.m,
                &mut self.v,
                &mut self.v_max,
                |i, p, m, v, vm| {
                    let g = grads[i] + weight_decay * *p;
                    let m_new = beta1 * *m + (1.0 - beta1) * g;
                    let v_new = beta2 * *v + (1.0 - beta2) * g * g;
                    *m = m_new;
                    *v = v_new;
                    let v_eff = (*vm).max(v_new);
                    *vm = v_eff;
                    let m_hat = m_new / bc1;
                    let denom = (v_eff / bc2).sqrt() + eps;
                    *p -= lr * m_hat / denom;
                },
            );
        } else {
            par::for_each_slot_zip3(params, &mut self.m, &mut self.v, |i, p, m, v| {
                let g = grads[i] + weight_decay * *p;
                let m_new = beta1 * *m + (1.0 - beta1) * g;
                let v_new = beta2 * *v + (1.0 - beta2) * g * g;
                *m = m_new;
                *v = v_new;
                let m_hat = m_new / bc1;
                let denom = (v_new / bc2).sqrt() + eps;
                *p -= lr * m_hat / denom;
            });
        }
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.v_max.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.m.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_matches_hand_computation() {
        // For any constant gradient, the bias-corrected first step is
        // lr · g/|g| / (1 + eps·…) ≈ lr (sign of g).
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![0.0];
        adam.step(&mut p, &[1.0]);
        // m̂ = 1, v̂ = 1 ⇒ Δ = 0.1/(1 + 1e-8).
        let expect = -0.1 / (1.0 + 1e-8);
        assert!((p[0] - expect).abs() < 1e-15, "p = {}", p[0]);
    }

    #[test]
    fn two_steps_match_hand_computation() {
        // lr = 0.5, g = [3, then 1] on a single parameter.
        let cfg = AdamConfig {
            lr: 0.5,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(cfg, 1);
        let mut p = vec![0.0];
        adam.step(&mut p, &[3.0]);
        let step1 = 0.5 * 3.0 / (3.0 + 1e-8); // m̂=3, √v̂=3
        assert!((p[0] + step1).abs() < 1e-12);

        adam.step(&mut p, &[1.0]);
        // t=2: m = 0.9·0.3 + 0.1·1 = 0.37; bc1 = 1-0.81 = 0.19; m̂ = 0.37/0.19.
        // v = 0.999·0.009 + 0.001·1 = 0.009991 + ... compute:
        let m = 0.9 * (0.1 * 3.0) + 0.1 * 1.0;
        let v = 0.999 * (0.001 * 9.0) + 0.001 * 1.0;
        let m_hat = m / (1.0 - 0.9f64.powi(2));
        let v_hat = v / (1.0 - 0.999f64.powi(2));
        let step2 = 0.5 * m_hat / (v_hat.sqrt() + 1e-8);
        assert!((p[0] + step1 + step2).abs() < 1e-12, "p = {}", p[0]);
    }

    #[test]
    fn amsgrad_vmax_is_monotone_nondecreasing() {
        let mut adam = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            2,
        );
        let mut p = vec![0.0, 0.0];
        let mut prev = [0.0, 0.0];
        // Alternate large and small gradients; v decays but v_max must not.
        for k in 0..50 {
            let g = if k % 2 == 0 { [5.0, 0.1] } else { [0.01, 0.01] };
            adam.step(&mut p, &g);
            for (i, p) in prev.iter_mut().enumerate() {
                assert!(adam.v_max()[i] >= *p - 1e-18, "v_max decreased at step {k}");
                *p = adam.v_max()[i];
            }
        }
    }

    #[test]
    fn amsgrad_differs_from_adam_after_gradient_spike() {
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        let mut plain = Adam::new(
            AdamConfig {
                amsgrad: false,
                ..cfg
            },
            1,
        );
        let mut ams = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..cfg
            },
            1,
        );
        let (mut pp, mut pa) = (vec![0.0], vec![0.0]);
        let spike_then_small = |k: usize| if k == 0 { 100.0 } else { 0.1 };
        for k in 0..20 {
            let g = [spike_then_small(k)];
            plain.step(&mut pp, &g);
            ams.step(&mut pa, &g);
        }
        // AMSGrad remembers the spike in v_max, so it takes smaller steps.
        assert!(pa[0].abs() < pp[0].abs(), "amsgrad {pa:?} vs adam {pp:?}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.01,
                weight_decay: 0.1,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p = vec![5.0];
        for _ in 0..100 {
            adam.step(&mut p, &[0.0]); // zero data gradient; only decay acts
        }
        assert!(p[0] < 5.0 && p[0] > 0.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut adam = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p1 = vec![1.0];
        adam.step(&mut p1, &[2.0]);
        adam.step(&mut p1, &[0.5]);
        adam.reset();
        assert_eq!(adam.steps_taken(), 0);
        let mut p2 = vec![1.0];
        adam.step(&mut p2, &[2.0]);
        let mut fresh = Adam::new(
            AdamConfig {
                amsgrad: true,
                ..AdamConfig::default()
            },
            1,
        );
        let mut p3 = vec![1.0];
        fresh.step(&mut p3, &[2.0]);
        assert_eq!(p2, p3, "post-reset trajectory matches a fresh optimizer");
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut adam = Adam::new(
            AdamConfig {
                lr: 1e-3,
                ..AdamConfig::default()
            },
            1,
        );
        adam.set_lr(1e-2);
        assert_eq!(adam.lr(), 1e-2);
        let mut p = vec![0.0];
        adam.step(&mut p, &[1.0]);
        assert!((p[0] + 1e-2 / (1.0 + 1e-8)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn rejects_negative_lr() {
        let _ = Adam::new(
            AdamConfig {
                lr: -1.0,
                ..AdamConfig::default()
            },
            1,
        );
    }

    #[test]
    #[should_panic(expected = "optimizer sized for")]
    fn rejects_mismatched_sizes() {
        let mut adam = Adam::new(AdamConfig::default(), 2);
        let mut p = vec![0.0, 0.0, 0.0];
        adam.step(&mut p, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn adaptive_rates_are_per_parameter() {
        // Two parameters with gradients of very different scales end up with
        // comparable step magnitudes — Adam's defining property.
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..AdamConfig::default()
            },
            2,
        );
        let mut p = vec![0.0, 0.0];
        for _ in 0..10 {
            adam.step(&mut p, &[1000.0, 0.001]);
        }
        let ratio = p[0] / p[1];
        assert!(
            (0.5..2.0).contains(&ratio),
            "steps should be scale-invariant-ish, ratio = {ratio}"
        );
    }
}
