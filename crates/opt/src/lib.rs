//! # adampack-opt
//!
//! First-order stochastic optimizers and learning-rate schedulers — the
//! `torch.optim` substitute for the adampack workspace.
//!
//! The paper minimizes its packing objective with **Adam** \[24\] in its
//! **AMSGrad** variant \[26\], driven by PyTorch's `ReduceLROnPlateau`
//! scheduler (§IV-B). This crate implements those two exactly (PyTorch
//! update-rule semantics, so step-for-step traces match the reference
//! implementation), plus the classic optimizers the paper positions Adam
//! against (SGD, Momentum, AdaGrad, RMSProp) for the ablation benchmarks.
//!
//! All optimizers operate on flat `&mut [f64]` parameter slices — the packing
//! core stores sphere centres as a structure-of-arrays `[x0..xn, y0..yn,
//! z0..zn]` buffer and passes it here directly, so there is no per-particle
//! allocation in the hot loop.
//!
//! ```
//! use adampack_opt::{Adam, AdamConfig, Optimizer};
//!
//! // Minimize f(x) = x² starting from x = 1.
//! let mut params = vec![1.0_f64];
//! let mut adam = Adam::new(AdamConfig { lr: 0.1, ..AdamConfig::default() }, 1);
//! for _ in 0..200 {
//!     let grads = vec![2.0 * params[0]];
//!     adam.step(&mut params, &grads);
//! }
//! assert!(params[0].abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod adagrad;
mod adam;
mod adamw;
mod kernel;
mod nadam;
mod optimizer;
mod rmsprop;
mod scheduler;
mod sgd;
mod state;

pub use adagrad::{AdaGrad, AdaGradConfig};
pub use adam::{Adam, AdamConfig};
pub use adamw::{AdamW, AdamWConfig};
pub use kernel::Kernel;
pub use nadam::{NAdam, NAdamConfig};
pub use optimizer::Optimizer;
pub use rmsprop::{RmsProp, RmsPropConfig};
pub use scheduler::{
    ConstantLr, CosineAnnealingLr, ExponentialLr, LrScheduler, ReduceLrOnPlateau,
    ReduceLrOnPlateauConfig, StepLr, ThresholdMode,
};
pub use sgd::{Sgd, SgdConfig};
pub use state::{OptimizerState, SchedulerState, StateMismatch};

/// Constructs any supported optimizer by name — mirrors the string-keyed
/// algorithm selection of the paper's YAML configuration.
///
/// Recognized names (case-insensitive): `sgd`, `momentum`, `adagrad`,
/// `rmsprop`, `adam`, `amsgrad`, `nadam`, `adamw`.
pub fn by_name(name: &str, lr: f64, n_params: usize) -> Option<Box<dyn Optimizer>> {
    let opt: Box<dyn Optimizer> = match name.to_ascii_lowercase().as_str() {
        "sgd" => Box::new(Sgd::new(
            SgdConfig {
                lr,
                momentum: 0.0,
                ..SgdConfig::default()
            },
            n_params,
        )),
        "momentum" => Box::new(Sgd::new(
            SgdConfig {
                lr,
                momentum: 0.9,
                ..SgdConfig::default()
            },
            n_params,
        )),
        "adagrad" => Box::new(AdaGrad::new(
            AdaGradConfig {
                lr,
                ..AdaGradConfig::default()
            },
            n_params,
        )),
        "rmsprop" => Box::new(RmsProp::new(
            RmsPropConfig {
                lr,
                ..RmsPropConfig::default()
            },
            n_params,
        )),
        "adam" => Box::new(Adam::new(
            AdamConfig {
                lr,
                amsgrad: false,
                ..AdamConfig::default()
            },
            n_params,
        )),
        "amsgrad" => Box::new(Adam::new(
            AdamConfig {
                lr,
                amsgrad: true,
                ..AdamConfig::default()
            },
            n_params,
        )),
        "nadam" => Box::new(NAdam::new(
            NAdamConfig {
                lr,
                ..NAdamConfig::default()
            },
            n_params,
        )),
        "adamw" => Box::new(AdamW::new(
            AdamWConfig {
                lr,
                ..AdamWConfig::default()
            },
            n_params,
        )),
        _ => return None,
    };
    Some(opt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_constructs_all_variants() {
        for name in [
            "sgd", "momentum", "adagrad", "rmsprop", "adam", "AMSGrad", "nadam", "adamw",
        ] {
            let opt = by_name(name, 0.01, 3).unwrap_or_else(|| panic!("{name} not found"));
            assert!((opt.lr() - 0.01).abs() < 1e-15);
        }
        assert!(by_name("lbfgs", 0.01, 3).is_none());
    }

    /// Every optimizer must make progress on a smooth convex quadratic.
    #[test]
    fn all_optimizers_descend_quadratic_bowl() {
        for name in [
            "sgd", "momentum", "adagrad", "rmsprop", "adam", "amsgrad", "nadam", "adamw",
        ] {
            let mut opt = by_name(name, 0.05, 2).unwrap();
            let mut p = vec![3.0, -2.0];
            let f = |p: &[f64]| p[0] * p[0] + 4.0 * p[1] * p[1];
            let f0 = f(&p);
            for _ in 0..3000 {
                let g = vec![2.0 * p[0], 8.0 * p[1]];
                opt.step(&mut p, &g);
            }
            assert!(
                f(&p) < f0 * 1e-2,
                "{name}: f went from {f0} to {} at {p:?}",
                f(&p)
            );
        }
    }
}
