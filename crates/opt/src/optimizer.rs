//! The optimizer abstraction shared by all update rules.

use crate::state::{OptimizerState, StateMismatch};

/// A first-order optimizer over a flat parameter vector.
///
/// Implementations keep per-parameter state (moments, accumulators) sized at
/// construction; `step` panics if the slice lengths disagree with that size,
/// because silently resizing state would corrupt moment estimates.
pub trait Optimizer: Send {
    /// Applies one update: `params ← params - update(grads)`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Current base learning rate.
    fn lr(&self) -> f64;

    /// Replaces the base learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f64);

    /// Clears all accumulated state and the step counter, keeping
    /// hyper-parameters.
    fn reset(&mut self);

    /// Number of parameters this optimizer was sized for.
    fn n_params(&self) -> usize;

    /// Number of `step` calls since construction/reset.
    fn steps_taken(&self) -> u64;

    /// Copies the complete mutable state (step counter, learning rate,
    /// every slot vector) into `out`, reusing its buffers. A later
    /// [`Optimizer::load_state`] of the snapshot into an identically
    /// configured optimizer reproduces the remaining trajectory bitwise.
    fn save_state(&self, out: &mut OptimizerState);

    /// Restores state captured by [`Optimizer::save_state`]. Fails when the
    /// snapshot's shape (slot count or lengths) does not match this
    /// optimizer; hyper-parameters are kept, except the learning rate,
    /// which is restored from the snapshot.
    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch>;
}

/// Validates slice lengths against the optimizer's state size.
pub(crate) fn check_sizes(n: usize, params: &[f64], grads: &[f64]) {
    assert!(
        params.len() == n && grads.len() == n,
        "optimizer sized for {n} params, got params.len() = {}, grads.len() = {}",
        params.len(),
        grads.len()
    );
}
