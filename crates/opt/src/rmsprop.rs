//! RMSProp (Tieleman & Hinton, 2012).

use rayon::par;

use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{check_slots, load_slot, OptimizerState, StateMismatch};

/// Hyper-parameters for [`RmsProp`]. Defaults match `torch.optim.RMSprop`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmsPropConfig {
    /// Base learning rate.
    pub lr: f64,
    /// Squared-gradient moving-average decay α.
    pub alpha: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
}

impl Default for RmsPropConfig {
    fn default() -> Self {
        RmsPropConfig {
            lr: 0.01,
            alpha: 0.99,
            eps: 1e-8,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// RMSProp: exponential moving average of squared gradients, the precursor
/// whose adaptivity Adam combines with momentum (paper §IV-B).
#[derive(Debug, Clone)]
pub struct RmsProp {
    cfg: RmsPropConfig,
    sq_avg: Vec<f64>,
    buf: Vec<f64>,
    t: u64,
}

impl RmsProp {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: RmsPropConfig, n_params: usize) -> RmsProp {
        assert!(
            cfg.lr > 0.0 && cfg.lr.is_finite(),
            "lr must be positive, got {}",
            cfg.lr
        );
        assert!((0.0..1.0).contains(&cfg.alpha), "alpha must be in [0, 1)");
        assert!(cfg.eps > 0.0, "eps must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.momentum),
            "momentum must be in [0, 1)"
        );
        RmsProp {
            cfg,
            sq_avg: vec![0.0; n_params],
            buf: if cfg.momentum > 0.0 {
                vec![0.0; n_params]
            } else {
                Vec::new()
            },
            t: 0,
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.sq_avg.len(), params, grads);
        self.t += 1;
        let RmsPropConfig {
            lr,
            alpha,
            eps,
            momentum,
            weight_decay,
        } = self.cfg;
        if momentum > 0.0 {
            par::for_each_slot_zip3(params, &mut self.sq_avg, &mut self.buf, |i, p, sq, buf| {
                let g = grads[i] + weight_decay * *p;
                *sq = alpha * *sq + (1.0 - alpha) * g * g;
                let denom = sq.sqrt() + eps;
                *buf = momentum * *buf + g / denom;
                *p -= lr * *buf;
            });
        } else {
            par::for_each_slot_zip2(params, &mut self.sq_avg, |i, p, sq| {
                let g = grads[i] + weight_decay * *p;
                *sq = alpha * *sq + (1.0 - alpha) * g * g;
                let denom = sq.sqrt() + eps;
                *p -= lr * g / denom;
            });
        }
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.sq_avg.iter_mut().for_each(|x| *x = 0.0);
        self.buf.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.sq_avg.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }

    fn save_state(&self, out: &mut OptimizerState) {
        let n_slots = if self.cfg.momentum > 0.0 { 2 } else { 1 };
        let slots = out.refill(self.t, self.cfg.lr, n_slots);
        slots[0].extend_from_slice(&self.sq_avg);
        if self.cfg.momentum > 0.0 {
            slots[1].extend_from_slice(&self.buf);
        }
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        check_slots(state, if self.cfg.momentum > 0.0 { 2 } else { 1 })?;
        load_slot(&mut self.sq_avg, &state.slots[0], "sq_avg")?;
        if self.cfg.momentum > 0.0 {
            load_slot(&mut self.buf, &state.slots[1], "buf")?;
        }
        self.t = state.t;
        self.set_lr(state.lr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_matches_hand_computation() {
        let mut opt = RmsProp::new(
            RmsPropConfig {
                lr: 0.1,
                ..RmsPropConfig::default()
            },
            1,
        );
        let mut p = vec![0.0];
        opt.step(&mut p, &[2.0]);
        // sq_avg = 0.01·4 = 0.04; Δ = 0.1 · 2/(0.2 + 1e-8).
        let expect = 0.1 * 2.0 / (0.04f64.sqrt() + 1e-8);
        assert!((p[0] + expect).abs() < 1e-12);
    }

    #[test]
    fn momentum_variant_accumulates() {
        let cfg = RmsPropConfig {
            lr: 0.1,
            momentum: 0.5,
            ..RmsPropConfig::default()
        };
        let mut opt = RmsProp::new(cfg, 1);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0]);
        let b1 = 1.0 / (0.1 + 1e-8); // sq_avg = 0.01 ⇒ denom = 0.1
        assert!((p[0] + 0.1 * b1).abs() < 1e-9);
        let before = p[0];
        opt.step(&mut p, &[0.0]); // zero grad: only momentum moves it
        assert!((p[0] - before).abs() > 0.0, "momentum keeps moving");
    }

    #[test]
    fn adapts_to_gradient_scale() {
        // After the average warms up, steps approach lr regardless of scale.
        let mut opt = RmsProp::new(
            RmsPropConfig {
                lr: 0.01,
                ..RmsPropConfig::default()
            },
            2,
        );
        let mut p = vec![0.0, 0.0];
        for _ in 0..2000 {
            opt.step(&mut p, &[100.0, 0.01]);
        }
        let ratio = p[0] / p[1];
        assert!((0.8..1.25).contains(&ratio), "ratio = {ratio}");
    }
}
