//! Kernel-implementation selector: the `params.kernel` oracle knob.
//!
//! PR 4 made the 4-lane vectorized kernels the canonical arithmetic for the
//! hot loops (objective pair/plane terms, Adam/AMSGrad slot updates). The
//! scalar path survives as a cross-checking oracle — the same pattern as the
//! CSR-vs-HashMap neighbor oracle from PR 1. Both paths are written so their
//! results are **bitwise identical** (same candidate order, same IEEE
//! operation sequence per element, SIMD lanes restricted to element-wise
//! correctly-rounded ops); the knob therefore selects an implementation, not
//! a numeric behavior, and the determinism suite pins that equivalence.

use std::fmt;

/// Which arithmetic implementation evaluates the hot loops.
// `LegacyScalar` is a real, constructible selection (the benchmark
// baseline), hidden only from the user-facing knob — not an
// exhaustiveness guard.
#[allow(clippy::manual_non_exhaustive)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Scalar reference path (the oracle): plain `f64` arithmetic with the
    /// same squared-distance early-out as the vectorized path.
    Scalar,
    /// Canonical 4-lane vectorized path (`wide::f64x4`; portable, SSE2 or
    /// AVX2 backend — all bitwise identical).
    #[default]
    Simd,
    /// Opt-in mixed-precision path: pair coordinates and rejection tests in
    /// `f32` lanes (`wide::f32x4`), per-pair contributions accumulated in
    /// `f64`. Deterministic (bitwise-reproducible against itself on any
    /// thread count and backend) but **not** 0-ULP against the `f64` oracle —
    /// parity is guaranteed only within the documented relative budget (see
    /// `adampack-core::objective::MIXED_REL_BUDGET`).
    SimdMixed,
    /// Pre-PR-4 scalar arithmetic (a `sqrt` on *every* candidate pair, no
    /// squared-distance early-out). Benchmark baseline only: not accepted by
    /// the YAML/CLI parsers and excluded from the oracle contract.
    #[doc(hidden)]
    LegacyScalar,
}

impl Kernel {
    /// Parses the user-facing knob value. Only the supported production
    /// kernels are accepted (`"scalar"`, `"simd"`, `"simd_mixed"`); anything
    /// else is `None`.
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "simd" => Some(Kernel::Simd),
            "simd_mixed" => Some(Kernel::SimdMixed),
            _ => None,
        }
    }

    /// Canonical knob spelling (used by the YAML writer and bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
            Kernel::SimdMixed => "simd_mixed",
            Kernel::LegacyScalar => "scalar_legacy",
        }
    }

    /// True for kernels whose hot-loop arithmetic is bitwise-identical to
    /// the scalar `f64` oracle (everything except the mixed-precision path).
    pub fn is_exact(self) -> bool {
        self != Kernel::SimdMixed
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_only_production_kernels() {
        assert_eq!(Kernel::parse("scalar"), Some(Kernel::Scalar));
        assert_eq!(Kernel::parse("SIMD"), Some(Kernel::Simd));
        assert_eq!(Kernel::parse("simd_mixed"), Some(Kernel::SimdMixed));
        assert_eq!(Kernel::parse("Simd_Mixed"), Some(Kernel::SimdMixed));
        assert_eq!(Kernel::parse("scalar_legacy"), None, "bench-only");
        assert_eq!(Kernel::parse("mixed"), None);
        assert_eq!(Kernel::parse("avx2"), None);
        assert_eq!(Kernel::parse(""), None);
    }

    #[test]
    fn default_is_simd_and_names_round_trip() {
        assert_eq!(Kernel::default(), Kernel::Simd);
        for k in [Kernel::Scalar, Kernel::Simd, Kernel::SimdMixed] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
    }

    #[test]
    fn only_the_mixed_kernel_is_inexact() {
        assert!(Kernel::Scalar.is_exact());
        assert!(Kernel::Simd.is_exact());
        assert!(Kernel::LegacyScalar.is_exact());
        assert!(!Kernel::SimdMixed.is_exact());
    }
}
