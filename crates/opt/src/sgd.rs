//! Stochastic gradient descent with optional (Nesterov) momentum.

use rayon::par;

use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{check_slots, load_slot, OptimizerState, StateMismatch};

/// Hyper-parameters for [`Sgd`]. Defaults match `torch.optim.SGD` with
/// `lr = 0.01`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Base learning rate.
    pub lr: f64,
    /// Momentum coefficient μ (0 disables momentum).
    pub momentum: f64,
    /// Use the Nesterov look-ahead variant (requires `momentum > 0`).
    pub nesterov: bool,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.01,
            momentum: 0.0,
            nesterov: false,
            weight_decay: 0.0,
        }
    }
}

/// Plain/momentum/Nesterov SGD (PyTorch buffer semantics:
/// `b ← μ b + g`, update with `g + μ b` for Nesterov, `b` otherwise).
#[derive(Debug, Clone)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<f64>,
    t: u64,
}

impl Sgd {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: SgdConfig, n_params: usize) -> Sgd {
        assert!(
            cfg.lr > 0.0 && cfg.lr.is_finite(),
            "lr must be positive, got {}",
            cfg.lr
        );
        assert!(
            (0.0..1.0).contains(&cfg.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(
            !cfg.nesterov || cfg.momentum > 0.0,
            "nesterov requires momentum > 0"
        );
        assert!(cfg.weight_decay >= 0.0, "weight_decay must be non-negative");
        Sgd {
            cfg,
            velocity: vec![0.0; n_params],
            t: 0,
        }
    }

    /// The hyper-parameters currently in force.
    pub fn config(&self) -> &SgdConfig {
        &self.cfg
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.velocity.len(), params, grads);
        self.t += 1;
        let SgdConfig {
            lr,
            momentum,
            nesterov,
            weight_decay,
        } = self.cfg;
        let first_step = self.t == 1;
        par::for_each_slot_zip2(params, &mut self.velocity, |i, p, vel| {
            let g = grads[i] + weight_decay * *p;
            let d = if momentum > 0.0 {
                // PyTorch initializes the buffer with the first gradient.
                let b = if first_step { g } else { momentum * *vel + g };
                *vel = b;
                if nesterov {
                    g + momentum * b
                } else {
                    b
                }
            } else {
                g
            };
            *p -= lr * d;
        });
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.velocity.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }

    fn save_state(&self, out: &mut OptimizerState) {
        // `t` matters beyond bookkeeping: PyTorch's first-step buffer
        // initialization keys off it.
        let slots = out.refill(self.t, self.cfg.lr, 1);
        slots[0].extend_from_slice(&self.velocity);
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        check_slots(state, 1)?;
        load_slot(&mut self.velocity, &state.slots[0], "velocity")?;
        self.t = state.t;
        self.set_lr(state.lr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step_is_lr_times_grad() {
        let mut sgd = Sgd::new(
            SgdConfig {
                lr: 0.1,
                ..SgdConfig::default()
            },
            2,
        );
        let mut p = vec![1.0, -1.0];
        sgd.step(&mut p, &[2.0, -4.0]);
        assert!((p[0] - 0.8).abs() < 1e-15);
        assert!((p[1] + 0.6).abs() < 1e-15);
    }

    #[test]
    fn momentum_accumulates() {
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            ..SgdConfig::default()
        };
        let mut sgd = Sgd::new(cfg, 1);
        let mut p = vec![0.0];
        sgd.step(&mut p, &[1.0]); // b = 1, Δ = 0.1
        assert!((p[0] + 0.1).abs() < 1e-15);
        sgd.step(&mut p, &[1.0]); // b = 1.9, Δ = 0.19
        assert!((p[0] + 0.29).abs() < 1e-15);
        sgd.step(&mut p, &[1.0]); // b = 2.71
        assert!((p[0] + 0.29 - -0.271).abs() < 1e-12);
    }

    #[test]
    fn nesterov_takes_larger_first_step_under_constant_gradient() {
        let base = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            ..SgdConfig::default()
        };
        let mut plain = Sgd::new(base, 1);
        let mut nest = Sgd::new(
            SgdConfig {
                nesterov: true,
                ..base
            },
            1,
        );
        let (mut pp, mut pn) = (vec![0.0], vec![0.0]);
        plain.step(&mut pp, &[1.0]);
        nest.step(&mut pn, &[1.0]);
        // Nesterov: Δ = lr (g + μ b) = 0.1 · 1.9.
        assert!((pn[0] + 0.19).abs() < 1e-15);
        assert!(pn[0].abs() > pp[0].abs());
    }

    #[test]
    fn momentum_overshoots_then_returns_on_quadratic() {
        // Sanity: heavy-ball dynamics still converge on x².
        let mut sgd = Sgd::new(
            SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                ..SgdConfig::default()
            },
            1,
        );
        let mut p = vec![1.0];
        for _ in 0..300 {
            let g = [2.0 * p[0]];
            sgd.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-6, "p = {}", p[0]);
    }

    #[test]
    #[should_panic(expected = "nesterov requires momentum")]
    fn nesterov_without_momentum_rejected() {
        let _ = Sgd::new(
            SgdConfig {
                nesterov: true,
                momentum: 0.0,
                ..SgdConfig::default()
            },
            1,
        );
    }

    #[test]
    fn reset_clears_velocity() {
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.9,
            ..SgdConfig::default()
        };
        let mut sgd = Sgd::new(cfg, 1);
        let mut p = vec![0.0];
        sgd.step(&mut p, &[1.0]);
        sgd.reset();
        assert_eq!(sgd.steps_taken(), 0);
        let mut q = vec![0.0];
        sgd.step(&mut q, &[1.0]);
        assert!(
            (q[0] + 0.1).abs() < 1e-15,
            "first-step semantics after reset"
        );
    }
}
