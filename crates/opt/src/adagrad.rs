//! AdaGrad (Duchi, Hazan & Singer, 2011).

use rayon::par;

use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{check_slots, load_slot, OptimizerState, StateMismatch};

/// Hyper-parameters for [`AdaGrad`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaGradConfig {
    /// Base learning rate.
    pub lr: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// L2 weight decay coefficient.
    pub weight_decay: f64,
}

impl Default for AdaGradConfig {
    fn default() -> Self {
        AdaGradConfig {
            lr: 0.01,
            eps: 1e-10,
            weight_decay: 0.0,
        }
    }
}

/// AdaGrad: per-parameter learning rates scaled by the inverse square root
/// of the running sum of squared gradients.
///
/// Its monotonically shrinking step sizes are exactly the behaviour AMSGrad
/// was designed to soften — included here for the optimizer ablation.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    cfg: AdaGradConfig,
    sum_sq: Vec<f64>,
    t: u64,
}

impl AdaGrad {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: AdaGradConfig, n_params: usize) -> AdaGrad {
        assert!(
            cfg.lr > 0.0 && cfg.lr.is_finite(),
            "lr must be positive, got {}",
            cfg.lr
        );
        assert!(cfg.eps > 0.0, "eps must be positive");
        assert!(cfg.weight_decay >= 0.0, "weight_decay must be non-negative");
        AdaGrad {
            cfg,
            sum_sq: vec![0.0; n_params],
            t: 0,
        }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.sum_sq.len(), params, grads);
        self.t += 1;
        let AdaGradConfig {
            lr,
            eps,
            weight_decay,
        } = self.cfg;
        par::for_each_slot_zip2(params, &mut self.sum_sq, |i, p, sq| {
            let g = grads[i] + weight_decay * *p;
            *sq += g * g;
            *p -= lr * g / (sq.sqrt() + eps);
        });
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive, got {lr}");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.sum_sq.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.sum_sq.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }

    fn save_state(&self, out: &mut OptimizerState) {
        let slots = out.refill(self.t, self.cfg.lr, 1);
        slots[0].extend_from_slice(&self.sum_sq);
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        check_slots(state, 1)?;
        load_slot(&mut self.sum_sq, &state.slots[0], "sum_sq")?;
        self.t = state.t;
        self.set_lr(state.lr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_normalizes_gradient() {
        let mut opt = AdaGrad::new(
            AdaGradConfig {
                lr: 0.5,
                ..AdaGradConfig::default()
            },
            1,
        );
        let mut p = vec![0.0];
        opt.step(&mut p, &[4.0]);
        // sum_sq = 16, Δ = 0.5 · 4/4 = 0.5.
        assert!((p[0] + 0.5 * 4.0 / (4.0 + 1e-10)).abs() < 1e-15);
    }

    #[test]
    fn steps_shrink_under_constant_gradient() {
        let mut opt = AdaGrad::new(AdaGradConfig::default(), 1);
        let mut p = vec![0.0];
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            let before = p[0];
            opt.step(&mut p, &[1.0]);
            let step = (p[0] - before).abs();
            assert!(step < last, "AdaGrad steps must shrink monotonically");
            last = step;
        }
        // Step k has size lr/√k.
        assert!((last - 0.01 / (10.0f64).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn reset_restores_step_size() {
        let mut opt = AdaGrad::new(AdaGradConfig::default(), 1);
        let mut p = vec![0.0];
        for _ in 0..5 {
            opt.step(&mut p, &[1.0]);
        }
        opt.reset();
        let before = p[0];
        opt.step(&mut p, &[1.0]);
        assert!(((p[0] - before).abs() - 0.01).abs() < 1e-10);
    }
}
