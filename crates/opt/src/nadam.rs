//! NAdam (Dozat, 2016): Adam with Nesterov momentum, PyTorch semantics.

use rayon::par;

use crate::optimizer::{check_sizes, Optimizer};
use crate::state::{check_slots, load_slot, mismatch, OptimizerState, StateMismatch};

/// Hyper-parameters for [`NAdam`]. Defaults match `torch.optim.NAdam`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NAdamConfig {
    /// Base learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Denominator fuzz ε.
    pub eps: f64,
    /// Momentum-decay schedule constant ψ (PyTorch `momentum_decay`).
    pub momentum_decay: f64,
}

impl Default for NAdamConfig {
    fn default() -> Self {
        NAdamConfig {
            lr: 2e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            momentum_decay: 4e-3,
        }
    }
}

/// Nesterov-accelerated Adam.
///
/// Applies the look-ahead correction through the μ-product schedule
/// `μ_t = β₁(1 − ½·0.96^{t·ψ})`, following PyTorch's implementation, so the
/// update blends the *current* gradient with the bias-corrected momentum of
/// the *next* step.
#[derive(Debug, Clone)]
pub struct NAdam {
    cfg: NAdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    mu_product: f64,
    t: u64,
}

impl NAdam {
    /// Creates an optimizer for `n_params` parameters.
    pub fn new(cfg: NAdamConfig, n_params: usize) -> NAdam {
        assert!(cfg.lr > 0.0 && cfg.lr.is_finite(), "lr must be positive");
        assert!((0.0..1.0).contains(&cfg.beta1), "beta1 in [0, 1)");
        assert!((0.0..1.0).contains(&cfg.beta2), "beta2 in [0, 1)");
        assert!(cfg.eps > 0.0, "eps must be positive");
        assert!(cfg.momentum_decay >= 0.0);
        NAdam {
            cfg,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            mu_product: 1.0,
            t: 0,
        }
    }
}

impl Optimizer for NAdam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        check_sizes(self.m.len(), params, grads);
        self.t += 1;
        let NAdamConfig {
            lr,
            beta1,
            beta2,
            eps,
            momentum_decay,
        } = self.cfg;
        let t = self.t as f64;
        let mu_t = beta1 * (1.0 - 0.5 * 0.96_f64.powf(t * momentum_decay));
        let mu_next = beta1 * (1.0 - 0.5 * 0.96_f64.powf((t + 1.0) * momentum_decay));
        let mu_product = self.mu_product * mu_t;
        let mu_product_next = mu_product * mu_next;
        self.mu_product = mu_product;
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        par::for_each_slot_zip3(params, &mut self.m, &mut self.v, |i, p, m, v| {
            let g = grads[i];
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
            let denom = (*v / bc2).sqrt() + eps;
            // Nesterov blend of current gradient and next-step momentum.
            *p -= lr * (1.0 - mu_t) / (1.0 - mu_product) * g / denom
                + lr * mu_next / (1.0 - mu_product_next) * *m / denom;
        });
    }

    fn lr(&self) -> f64 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "lr must be positive");
        self.cfg.lr = lr;
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.mu_product = 1.0;
        self.t = 0;
    }

    fn n_params(&self) -> usize {
        self.m.len()
    }

    fn steps_taken(&self) -> u64 {
        self.t
    }

    fn save_state(&self, out: &mut OptimizerState) {
        let slots = out.refill(self.t, self.cfg.lr, 2);
        slots[0].extend_from_slice(&self.m);
        slots[1].extend_from_slice(&self.v);
        out.scalars.push(self.mu_product);
    }

    fn load_state(&mut self, state: &OptimizerState) -> Result<(), StateMismatch> {
        check_slots(state, 2)?;
        if state.scalars.len() != 1 {
            return Err(mismatch(format!(
                "expected 1 scalar (mu_product), snapshot has {}",
                state.scalars.len()
            )));
        }
        load_slot(&mut self.m, &state.slots[0], "m")?;
        load_slot(&mut self.v, &state.slots[1], "v")?;
        self.mu_product = state.scalars[0];
        self.t = state.t;
        self.set_lr(state.lr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        let mut opt = NAdam::new(
            NAdamConfig {
                lr: 0.05,
                ..NAdamConfig::default()
            },
            2,
        );
        let mut p = vec![3.0, -2.0];
        for _ in 0..2000 {
            let g = vec![2.0 * p[0], 8.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.05 && p[1].abs() < 0.05, "p = {p:?}");
    }

    #[test]
    fn first_step_direction_is_negative_gradient() {
        let mut opt = NAdam::new(NAdamConfig::default(), 3);
        let mut p = vec![0.0, 0.0, 0.0];
        opt.step(&mut p, &[1.0, -2.0, 0.5]);
        assert!(p[0] < 0.0 && p[1] > 0.0 && p[2] < 0.0);
    }

    #[test]
    fn reset_reproduces_fresh_trajectory() {
        let cfg = NAdamConfig::default();
        let mut a = NAdam::new(cfg, 1);
        let mut pa = vec![1.0];
        a.step(&mut pa, &[0.7]);
        a.step(&mut pa, &[0.3]);
        a.reset();
        let mut pb = vec![1.0];
        a.step(&mut pb, &[0.7]);
        let mut fresh = NAdam::new(cfg, 1);
        let mut pc = vec![1.0];
        fresh.step(&mut pc, &[0.7]);
        assert_eq!(pb, pc);
    }

    #[test]
    fn nesterov_blend_differs_from_plain_adam() {
        use crate::adam::{Adam, AdamConfig};
        let mut nadam = NAdam::new(
            NAdamConfig {
                lr: 0.01,
                ..NAdamConfig::default()
            },
            1,
        );
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.01,
                ..AdamConfig::default()
            },
            1,
        );
        let (mut pn, mut pa) = (vec![0.0], vec![0.0]);
        for _ in 0..5 {
            nadam.step(&mut pn, &[1.0]);
            adam.step(&mut pa, &[1.0]);
        }
        assert_ne!(pn[0], pa[0], "distinct update rules must diverge");
    }
}
