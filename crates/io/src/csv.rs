//! CSV particle tables (`x,y,z,radius,batch,set`).
//!
//! The format DEM pipelines ingest as initial conditions; full `f64`
//! round-trip precision via shortest-repr formatting.

use std::io::{self, BufRead, Write};

use adampack_geometry::Vec3;

/// A particle row as read/written by this module (mirrors
/// `adampack_core::Particle` without the dependency).
pub type ParticleRow = (Vec3, f64, usize, usize);

/// Failpoint site: fires an injected I/O error before the CSV header is
/// written.
pub const FAILPOINT_CSV_WRITE: &str = "io.csv.write";

/// Writes particles as CSV with a header row.
pub fn write_particles_csv<W: Write>(
    mut w: W,
    rows: impl IntoIterator<Item = ParticleRow>,
) -> io::Result<()> {
    if failpoints::should_fail(FAILPOINT_CSV_WRITE) {
        return Err(io::Error::other("injected failpoint io.csv.write"));
    }
    writeln!(w, "x,y,z,radius,batch,set")?;
    for (c, r, batch, set) in rows {
        writeln!(w, "{},{},{},{},{},{}", c.x, c.y, c.z, r, batch, set)?;
    }
    Ok(())
}

/// Reads particles from CSV produced by [`write_particles_csv`] (header
/// required; `batch`/`set` columns optional for foreign files).
pub fn read_particles_csv<R: BufRead>(r: R) -> io::Result<Vec<ParticleRow>> {
    let mut out = Vec::new();
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 4 || cols[0] != "x" || cols[1] != "y" || cols[2] != "z" || cols[3] != "radius" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected csv header: {header}"),
        ));
    }
    for (ln, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected >= 4 fields, got {}",
                    ln + 2,
                    fields.len()
                ),
            ));
        }
        let num = |s: &str| {
            s.parse::<f64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number '{s}'", ln + 2),
                )
            })
        };
        let int = |s: &str| {
            s.parse::<usize>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad index '{s}'", ln + 2),
                )
            })
        };
        let c = Vec3::new(num(fields[0])?, num(fields[1])?, num(fields[2])?);
        let r = num(fields[3])?;
        let batch = if fields.len() > 4 { int(fields[4])? } else { 0 };
        let set = if fields.len() > 5 { int(fields[5])? } else { 0 };
        out.push((c, r, batch, set));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip_exact() {
        let rows: Vec<ParticleRow> = vec![
            (Vec3::new(0.1, -0.25, 1.0 / 3.0), 0.052, 0, 0),
            (Vec3::new(1e-17, 2e8, -3.5), 0.075, 12, 1),
        ];
        let mut buf = Vec::new();
        write_particles_csv(&mut buf, rows.clone()).unwrap();
        let back = read_particles_csv(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, rows, "f64 round trip must be exact");
    }

    #[test]
    fn reads_foreign_csv_without_batch_columns() {
        let text = "x,y,z,radius\n1,2,3,0.5\n4,5,6,0.25\n";
        let rows = read_particles_csv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (Vec3::new(1.0, 2.0, 3.0), 0.5, 0, 0));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "x,y,z,radius,batch,set\n1,2,3,0.5,0,0\n\n\n4,5,6,0.25,1,0\n";
        let rows = read_particles_csv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(read_particles_csv(BufReader::new(&b""[..])).is_err());
        assert!(read_particles_csv(BufReader::new(&b"a,b,c\n"[..])).is_err());
        let bad_field = "x,y,z,radius\n1,2,three,0.5\n";
        assert!(read_particles_csv(BufReader::new(bad_field.as_bytes())).is_err());
        let short = "x,y,z,radius\n1,2\n";
        assert!(read_particles_csv(BufReader::new(short.as_bytes())).is_err());
    }
}
