//! Unified typed error for the file-level I/O entry points.
//!
//! The per-format modules keep their own narrow error types (e.g.
//! [`StlError`](crate::stl::StlError)) so in-memory users don't pay for
//! path bookkeeping; the file-level helpers and the checkpoint writer wrap
//! those in [`Error`], which always carries the offending path so a CLI
//! message can name the file without the caller threading it through.

use std::io;
use std::path::{Path, PathBuf};

use crate::stl::StlError;

/// A file-level I/O failure with the path it happened on.
#[derive(Debug)]
pub enum Error {
    /// Operating-system I/O failure (open/read/write/rename/fsync).
    Io {
        /// File (or directory, for fsync-of-parent) the operation targeted.
        path: PathBuf,
        /// What the writer was doing when it failed.
        op: &'static str,
        /// Underlying OS error.
        source: io::Error,
    },
    /// STL content was malformed.
    Stl {
        /// The offending file.
        path: PathBuf,
        /// Parse-level detail (dialect, line/byte position, cause).
        source: StlError,
    },
    /// Non-STL content was malformed (CSV/checkpoint framing, …).
    Format {
        /// The offending file.
        path: PathBuf,
        /// What was wrong, with line/byte-offset context where available.
        message: String,
    },
    /// No readable checkpoint exists among the rotation candidates.
    NoCheckpoint {
        /// The primary checkpoint path that was probed.
        path: PathBuf,
    },
}

impl Error {
    /// Wraps an OS error with the path and operation it occurred on.
    pub fn io(path: impl AsRef<Path>, op: &'static str, source: io::Error) -> Error {
        Error::Io {
            path: path.as_ref().to_path_buf(),
            op,
            source,
        }
    }

    /// Whether this failure is the filesystem reporting no space left
    /// (`ENOSPC`). A server treats disk-full as a degradable condition —
    /// shed load, evict cache, retry — where other I/O errors are fatal.
    pub fn is_disk_full(&self) -> bool {
        match self {
            Error::Io { source, .. } => source.raw_os_error() == Some(28),
            _ => false,
        }
    }

    /// The path the failure occurred on.
    pub fn path(&self) -> &Path {
        match self {
            Error::Io { path, .. }
            | Error::Stl { path, .. }
            | Error::Format { path, .. }
            | Error::NoCheckpoint { path } => path,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io { path, op, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            Error::Stl { path, source } => write!(f, "{}: {source}", path.display()),
            Error::Format { path, message } => write!(f, "{}: {message}", path.display()),
            Error::NoCheckpoint { path } => {
                write!(
                    f,
                    "no readable checkpoint at {} (or rotated copies)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Stl { source, .. } => Some(source),
            Error::Format { .. } | Error::NoCheckpoint { .. } => None,
        }
    }
}

/// Reads an STL file, attaching the path to any failure.
pub fn read_stl_path(path: impl AsRef<Path>) -> Result<adampack_geometry::TriMesh, Error> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| Error::io(path, "read", e))?;
    crate::stl::read_stl(&bytes).map_err(|source| Error::Stl {
        path: path.to_path_buf(),
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_cause() {
        let e = Error::io(
            "/tmp/x.stl",
            "read",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        let text = e.to_string();
        assert!(text.contains("/tmp/x.stl"), "{text}");
        assert!(text.contains("gone"), "{text}");
        assert_eq!(e.path(), Path::new("/tmp/x.stl"));
    }

    #[test]
    fn read_stl_path_names_the_file_on_parse_error() {
        let dir = std::env::temp_dir().join("adampack_io_error_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.stl");
        std::fs::write(&path, b"hello world").unwrap();
        let err = read_stl_path(&path).expect_err("garbage accepted");
        assert!(matches!(err, Error::Stl { .. }));
        assert!(err.to_string().contains("bad.stl"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_io_with_op() {
        let err = read_stl_path("/nonexistent/adampack/void.stl").expect_err("file exists?");
        match &err {
            Error::Io { op, .. } => assert_eq!(*op, "read"),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
