//! Atomic (torn-write-proof) file replacement and rotating checkpoints.
//!
//! A checkpoint that is being written when the process dies must never
//! destroy the previous good checkpoint. [`write_atomic`] gives the
//! standard guarantee: the payload goes to a sibling temp file, is fsynced,
//! and only then renamed over the destination (rename within one directory
//! is atomic on POSIX), followed by an fsync of the parent directory so
//! the rename itself survives a crash.
//!
//! [`RotatingCheckpointWriter`] layers `keep_last` history on top using the
//! logrotate scheme — `run.ckpt` is newest, `run.ckpt.1` one older, … — so
//! a checkpoint that turns out corrupt (torn at a sector boundary the
//! atomicity dance can't cover, or bit-rotted on disk) still leaves an
//! older sibling to fall back to; [`checkpoint_candidates`] enumerates the
//! fallback chain newest-first for resume.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::Error;

/// Failpoint site: fires an injected I/O error before the temp file is
/// renamed into place (the destination is left untouched).
pub const FAILPOINT_CHECKPOINT_WRITE: &str = "io.checkpoint.write";

/// Failpoint site: fires an injected I/O error at the parent-directory
/// fsync *after* the rename. This models the power-loss window the
/// directory fsync exists to close: the new file is visible in the
/// running process (the rename happened) but its directory entry was
/// never persisted, so the caller must treat the write as not durably
/// committed.
pub const FAILPOINT_CHECKPOINT_DIR_SYNC: &str = "io.checkpoint.dir_sync";

/// Failpoint site: fires `ENOSPC` from the payload write inside
/// [`write_atomic`], before anything is renamed. Models a full disk:
/// the destination keeps its previous content and the temp file is
/// cleaned up, so callers can degrade (shed load, evict cache) instead
/// of crashing. Detect it via [`Error::is_disk_full`].
pub const FAILPOINT_WRITE_ENOSPC: &str = "io.write.enospc";

/// `ENOSPC` — `io::ErrorKind::StorageFull` is still unstable, so the
/// raw errno is matched instead.
const ENOSPC: i32 = 28;

fn injected(path: &Path, op: &'static str, site: &'static str) -> Error {
    Error::io(
        path,
        op,
        std::io::Error::other(format!("injected failpoint {site}")),
    )
}

/// Writes `bytes` to `path` atomically: temp file + fsync + rename +
/// parent-directory fsync. On any failure the previous content of `path`
/// (if any) is untouched and the temp file is removed.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), Error> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);

    let result = (|| {
        let mut f = fs::File::create(&tmp).map_err(|e| Error::io(&tmp, "create", e))?;
        if failpoints::should_fail(FAILPOINT_WRITE_ENOSPC) {
            return Err(Error::io(
                &tmp,
                "write",
                std::io::Error::from_raw_os_error(ENOSPC),
            ));
        }
        f.write_all(bytes)
            .map_err(|e| Error::io(&tmp, "write", e))?;
        f.sync_all().map_err(|e| Error::io(&tmp, "fsync", e))?;
        drop(f);
        if failpoints::should_fail(FAILPOINT_CHECKPOINT_WRITE) {
            return Err(injected(path, "rename", FAILPOINT_CHECKPOINT_WRITE));
        }
        fs::rename(&tmp, path).map_err(|e| Error::io(path, "rename", e))?;
        // Persist the rename itself: fsync the directory entry. This also
        // covers any rotation renames [`RotatingCheckpointWriter::save`]
        // performed just before in the same directory — one barrier
        // flushes them all.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if failpoints::should_fail(FAILPOINT_CHECKPOINT_DIR_SYNC) {
                return Err(injected(parent, "fsync dir", FAILPOINT_CHECKPOINT_DIR_SYNC));
            }
            let dir = fs::File::open(parent).map_err(|e| Error::io(parent, "open dir", e))?;
            dir.sync_all()
                .map_err(|e| Error::io(parent, "fsync dir", e))?;
        }
        Ok(())
    })();

    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// The rotated sibling of `path` with history index `i` (`i >= 1`):
/// `run.ckpt` → `run.ckpt.1`.
fn rotated(path: &Path, i: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{i}"));
    PathBuf::from(name)
}

/// The fallback chain for resume: `path`, `path.1`, …, newest first,
/// restricted to files that exist. Empty when no checkpoint was ever
/// completed.
pub fn checkpoint_candidates(path: impl AsRef<Path>, keep_last: usize) -> Vec<PathBuf> {
    let path = path.as_ref();
    let mut out = Vec::new();
    if path.is_file() {
        out.push(path.to_path_buf());
    }
    for i in 1..keep_last.max(1) {
        let p = rotated(path, i);
        if p.is_file() {
            out.push(p);
        }
    }
    out
}

/// Writes checkpoints to a fixed path, keeping the last `keep_last` files
/// (current + rotated history).
#[derive(Debug)]
pub struct RotatingCheckpointWriter {
    path: PathBuf,
    keep_last: usize,
}

impl RotatingCheckpointWriter {
    /// A writer targeting `path`; `keep_last` is clamped to at least 1
    /// (the current file itself).
    pub fn new(path: impl Into<PathBuf>, keep_last: usize) -> RotatingCheckpointWriter {
        RotatingCheckpointWriter {
            path: path.into(),
            keep_last: keep_last.max(1),
        }
    }

    /// The primary (newest) checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rotates history and atomically writes `bytes` as the newest
    /// checkpoint. A failure mid-rotation or mid-write leaves every
    /// already-completed checkpoint file intact. The rotation renames all
    /// happen in the destination's directory, so the parent-directory
    /// fsync at the end of [`write_atomic`] makes the whole shift durable
    /// in one barrier; a crash before it falls back through whichever
    /// mix of old/new names survived via [`checkpoint_candidates`].
    pub fn save(&mut self, bytes: &[u8]) -> Result<(), Error> {
        if self.keep_last > 1 && self.path.is_file() {
            // Shift run.ckpt.{i} → run.ckpt.{i+1}, oldest first, dropping
            // the one past the retention window.
            let oldest = rotated(&self.path, self.keep_last - 1);
            fs::remove_file(&oldest).ok();
            for i in (1..self.keep_last - 1).rev() {
                let from = rotated(&self.path, i);
                if from.is_file() {
                    fs::rename(&from, rotated(&self.path, i + 1))
                        .map_err(|e| Error::io(&from, "rotate", e))?;
                }
            }
            fs::rename(&self.path, rotated(&self.path, 1))
                .map_err(|e| Error::io(&self.path, "rotate", e))?;
        }
        write_atomic(&self.path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adampack_atomic_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_cleans_temp() {
        let dir = temp_dir("replace");
        let path = dir.join("run.ckpt");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(
            !dir.join("run.ckpt.tmp").exists(),
            "temp file must not linger"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_keeps_exactly_keep_last() {
        let dir = temp_dir("rotate");
        let path = dir.join("run.ckpt");
        let mut w = RotatingCheckpointWriter::new(&path, 3);
        for i in 0..5u8 {
            w.save(&[i]).unwrap();
        }
        assert_eq!(fs::read(&path).unwrap(), [4]);
        assert_eq!(fs::read(rotated(&path, 1)).unwrap(), [3]);
        assert_eq!(fs::read(rotated(&path, 2)).unwrap(), [2]);
        assert!(!rotated(&path, 3).exists(), "history bounded by keep_last");
        let candidates = checkpoint_candidates(&path, 3);
        assert_eq!(candidates.len(), 3);
        assert_eq!(candidates[0], path, "newest first");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keep_last_one_never_rotates() {
        let dir = temp_dir("single");
        let path = dir.join("run.ckpt");
        let mut w = RotatingCheckpointWriter::new(&path, 1);
        w.save(b"a").unwrap();
        w.save(b"b").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"b");
        assert!(!rotated(&path, 1).exists());
        assert_eq!(checkpoint_candidates(&path, 1), vec![path.clone()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn candidates_empty_without_files() {
        let dir = temp_dir("empty");
        assert!(checkpoint_candidates(dir.join("never.ckpt"), 4).is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_failpoint_degrades_without_clobbering() {
        let dir = temp_dir("enospc");
        let path = dir.join("run.ckpt");
        write_atomic(&path, b"good").unwrap();
        failpoints::arm(FAILPOINT_WRITE_ENOSPC, 0, 1);
        let err = write_atomic(&path, b"new").expect_err("disk was full");
        failpoints::reset();
        assert!(err.is_disk_full(), "{err:?}");
        assert_eq!(
            fs::read(&path).unwrap(),
            b"good",
            "previous content must survive a full disk"
        );
        assert!(!dir.join("run.ckpt.tmp").exists(), "temp cleaned up");
        // Once space frees up the same write succeeds.
        write_atomic(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_failpoint_errors_are_not_disk_full() {
        let dir = temp_dir("notfull");
        let path = dir.join("run.ckpt");
        failpoints::arm(FAILPOINT_CHECKPOINT_WRITE, 0, 1);
        let err = write_atomic(&path, b"x").expect_err("failpoint armed");
        failpoints::reset();
        assert!(!err.is_disk_full(), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_failure_to_unwritable_dir_is_typed() {
        let err = write_atomic("/nonexistent-dir/x.ckpt", b"x").expect_err("wrote to the void");
        assert!(matches!(err, Error::Io { op: "create", .. }), "{err:?}");
    }
}
