//! Minimal XYZ point-cloud format: a count line, a comment line, then
//! `label x y z` rows. The radius is stored in the label column as `r=<val>`
//! so the format stays readable by generic XYZ viewers.

use std::io::{self, BufRead, Write};

use adampack_geometry::Vec3;

/// Writes `(center, radius)` pairs in XYZ format.
pub fn write_xyz<W: Write>(mut w: W, spheres: &[(Vec3, f64)], comment: &str) -> io::Result<()> {
    writeln!(w, "{}", spheres.len())?;
    writeln!(w, "{}", comment.replace(['\n', '\r'], " "))?;
    for (c, r) in spheres {
        writeln!(w, "r={} {} {} {}", r, c.x, c.y, c.z)?;
    }
    Ok(())
}

/// Reads the XYZ produced by [`write_xyz`].
pub fn read_xyz<R: BufRead>(r: R) -> io::Result<Vec<(Vec3, f64)>> {
    let mut lines = r.lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty xyz"))??
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad count line"))?;
    let _comment = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing comment line"))??;
    let mut out = Vec::with_capacity(n);
    for (ln, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected 4 fields", ln + 3),
            ));
        }
        let radius: f64 = fields[0]
            .strip_prefix("r=")
            .unwrap_or("")
            .parse()
            .map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad label", ln + 3),
                )
            })?;
        let num = |s: &str| {
            s.parse::<f64>().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number", ln + 3),
                )
            })
        };
        out.push((
            Vec3::new(num(fields[1])?, num(fields[2])?, num(fields[3])?),
            radius,
        ));
    }
    if out.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("count line said {n}, found {}", out.len()),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn round_trip() {
        let spheres = vec![
            (Vec3::new(0.25, -1.5, 3.0), 0.06),
            (Vec3::new(1e-3, 0.0, -2.0), 0.075),
        ];
        let mut buf = Vec::new();
        write_xyz(&mut buf, &spheres, "two spheres").unwrap();
        let back = read_xyz(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, spheres);
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "3\ncomment\nr=0.1 0 0 0\n";
        assert!(read_xyz(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn malformed_rows_error() {
        let text = "1\ncomment\n0.1 0 0 0\n"; // missing r= prefix
        assert!(read_xyz(BufReader::new(text.as_bytes())).is_err());
        let text = "1\ncomment\nr=0.1 0 0\n"; // 3 fields
        assert!(read_xyz(BufReader::new(text.as_bytes())).is_err());
        assert!(read_xyz(BufReader::new(&b""[..])).is_err());
    }
}
