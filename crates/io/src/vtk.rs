//! Legacy-VTK output of packings for ParaView.
//!
//! Writes particles as a `POLYDATA` point cloud with `radius` and `batch`
//! point-data arrays; a glyph filter (sphere, scale by radius) reproduces
//! the paper's Figs. 1/10/11 renderings.

use std::io::{self, Write};

use adampack_geometry::Vec3;

/// Failpoint site: fires an injected I/O error before any VTK bytes are
/// written (both the particle and the mesh writer).
pub const FAILPOINT_VTK_WRITE: &str = "io.vtk.write";

/// Writes `(center, radius, batch)` triples as a legacy VTK file.
pub fn write_particles_vtk<W: Write>(
    mut w: W,
    particles: &[(Vec3, f64, usize)],
    title: &str,
) -> io::Result<()> {
    if failpoints::should_fail(FAILPOINT_VTK_WRITE) {
        return Err(io::Error::other("injected failpoint io.vtk.write"));
    }
    writeln!(w, "# vtk DataFile Version 3.0")?;
    // Legacy VTK limits the title line to 256 characters.
    let mut t = title.replace(['\n', '\r'], " ");
    t.truncate(255);
    writeln!(w, "{t}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {} double", particles.len())?;
    for (c, _, _) in particles {
        writeln!(w, "{} {} {}", c.x, c.y, c.z)?;
    }
    writeln!(w, "POINT_DATA {}", particles.len())?;
    writeln!(w, "SCALARS radius double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (_, r, _) in particles {
        writeln!(w, "{r}")?;
    }
    writeln!(w, "SCALARS batch int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (_, _, b) in particles {
        writeln!(w, "{b}")?;
    }
    Ok(())
}

/// Writes a triangle mesh as a legacy VTK `POLYDATA` file (container
/// visualization next to the particle clouds).
pub fn write_mesh_vtk<W: Write>(
    mut w: W,
    mesh: &adampack_geometry::TriMesh,
    title: &str,
) -> io::Result<()> {
    if failpoints::should_fail(FAILPOINT_VTK_WRITE) {
        return Err(io::Error::other("injected failpoint io.vtk.write"));
    }
    writeln!(w, "# vtk DataFile Version 3.0")?;
    let mut t = title.replace(['\n', '\r'], " ");
    t.truncate(255);
    writeln!(w, "{t}")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET POLYDATA")?;
    writeln!(w, "POINTS {} double", mesh.vertex_count())?;
    for v in &mesh.vertices {
        writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
    }
    writeln!(
        w,
        "POLYGONS {} {}",
        mesh.face_count(),
        mesh.face_count() * 4
    )?;
    for f in &mesh.faces {
        writeln!(w, "3 {} {} {}", f[0], f[1], f[2])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_well_formed_vtk() {
        let particles = vec![
            (Vec3::new(0.0, 1.0, 2.0), 0.1, 0),
            (Vec3::new(-1.0, 0.5, 0.0), 0.2, 3),
        ];
        let mut buf = Vec::new();
        write_particles_vtk(&mut buf, &particles, "test packing").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("POINTS 2 double"));
        assert!(text.contains("0 1 2"));
        assert!(text.contains("SCALARS radius double 1"));
        assert!(text.contains("SCALARS batch int 1"));
        // Batch values present in order.
        let after_batch = text.split("SCALARS batch int 1").nth(1).unwrap();
        assert!(after_batch.contains('3'));
    }

    #[test]
    fn mesh_vtk_counts_match() {
        use adampack_geometry::{shapes, Vec3 as V};
        let mesh = shapes::box_mesh(V::ZERO, V::splat(1.0));
        let mut buf = Vec::new();
        write_mesh_vtk(&mut buf, &mesh, "box").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("POINTS 8 double"));
        assert!(text.contains("POLYGONS 12 48"));
        assert_eq!(text.matches("\n3 ").count(), 12);
    }

    #[test]
    fn sanitizes_title() {
        let mut buf = Vec::new();
        write_particles_vtk(&mut buf, &[], "line1\nline2").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().nth(1).unwrap().contains("line1 line2"));
        assert!(text.contains("POINTS 0 double"));
    }
}
