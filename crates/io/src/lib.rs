//! # adampack-io
//!
//! Mesh and particle I/O for the adampack workspace — the Trimesh-I/O
//! substitute.
//!
//! * [`stl`] — STL containers: the paper's configurations reference generic
//!   convex shapes "provided as a generic STL file"; both the ASCII and
//!   binary dialects are read and written, with auto-detection.
//! * [`csv`] — particle tables (`x,y,z,radius,batch,set`) for downstream
//!   DEM tooling.
//! * [`vtk`] — legacy-VTK point clouds with radius/batch point data, for
//!   ParaView visualization of packings (Figs. 1, 10, 11).
//! * [`xyz`] — minimal XYZ point format.
//! * [`atomic`] — torn-write-proof file replacement and the rotating
//!   checkpoint writer the resume pipeline builds on.
//! * [`error`] — unified typed error carrying the offending path for
//!   file-level entry points.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod atomic;
pub mod csv;
pub mod error;
pub mod stl;
pub mod vtk;
pub mod xyz;

pub use atomic::{
    checkpoint_candidates, write_atomic, RotatingCheckpointWriter, FAILPOINT_WRITE_ENOSPC,
};
pub use csv::{read_particles_csv, write_particles_csv};
pub use error::{read_stl_path, Error};
pub use stl::{read_stl, read_stl_file, write_stl_ascii, write_stl_binary, StlError};
pub use vtk::{write_mesh_vtk, write_particles_vtk};
pub use xyz::{read_xyz, write_xyz};
