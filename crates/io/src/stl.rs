//! STL reading and writing (ASCII and binary dialects).
//!
//! STL stores a bag of independent triangles; on read the soup is welded
//! back into an indexed [`TriMesh`] by merging vertices within a relative
//! tolerance, which is what the hull/containment pipeline expects.

use std::io::{self, Read, Write};
use std::path::Path;

use adampack_geometry::{Aabb, TriMesh, Triangle, Vec3};

/// STL parse/serialize errors.
#[derive(Debug)]
pub enum StlError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content (message describes the position/cause).
    Parse(String),
    /// The mesh has no triangles.
    Empty,
}

impl std::fmt::Display for StlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StlError::Io(e) => write!(f, "stl i/o error: {e}"),
            StlError::Parse(m) => write!(f, "stl parse error: {m}"),
            StlError::Empty => write!(f, "stl contains no triangles"),
        }
    }
}

impl std::error::Error for StlError {}

impl From<io::Error> for StlError {
    fn from(e: io::Error) -> Self {
        StlError::Io(e)
    }
}

/// Failpoint site: fires an injected I/O error at the start of either STL
/// writer, before any bytes reach the sink.
pub const FAILPOINT_STL_WRITE: &str = "io.stl.write";

fn injected_write_error(site: &str) -> StlError {
    StlError::Io(io::Error::other(format!("injected failpoint {site}")))
}

/// Writes a mesh as ASCII STL.
pub fn write_stl_ascii<W: Write>(mut w: W, mesh: &TriMesh, name: &str) -> Result<(), StlError> {
    if failpoints::should_fail(FAILPOINT_STL_WRITE) {
        return Err(injected_write_error(FAILPOINT_STL_WRITE));
    }
    writeln!(w, "solid {name}")?;
    for t in mesh.triangles() {
        let n = t.normal().unwrap_or(Vec3::Z);
        writeln!(w, "  facet normal {:e} {:e} {:e}", n.x, n.y, n.z)?;
        writeln!(w, "    outer loop")?;
        for v in [t.a, t.b, t.c] {
            writeln!(w, "      vertex {:e} {:e} {:e}", v.x, v.y, v.z)?;
        }
        writeln!(w, "    endloop")?;
        writeln!(w, "  endfacet")?;
    }
    writeln!(w, "endsolid {name}")?;
    Ok(())
}

/// Writes a mesh as binary STL.
pub fn write_stl_binary<W: Write>(mut w: W, mesh: &TriMesh) -> Result<(), StlError> {
    if failpoints::should_fail(FAILPOINT_STL_WRITE) {
        return Err(injected_write_error(FAILPOINT_STL_WRITE));
    }
    let mut header = [0u8; 80];
    let tag = b"adampack binary stl";
    header[..tag.len()].copy_from_slice(tag);
    w.write_all(&header)?;
    let count = u32::try_from(mesh.face_count())
        .map_err(|_| StlError::Parse("too many triangles for binary STL".into()))?;
    w.write_all(&count.to_le_bytes())?;
    for t in mesh.triangles() {
        let n = t.normal().unwrap_or(Vec3::Z);
        for v in [n, t.a, t.b, t.c] {
            for x in [v.x, v.y, v.z] {
                w.write_all(&(x as f32).to_le_bytes())?;
            }
        }
        w.write_all(&0u16.to_le_bytes())?;
    }
    Ok(())
}

/// Reads an STL from bytes, auto-detecting the dialect.
///
/// Binary files are recognized by the `84 + 50·n` size identity; everything
/// else is parsed as ASCII (the `solid` prefix alone is unreliable — many
/// binary exporters write it too).
pub fn read_stl(bytes: &[u8]) -> Result<TriMesh, StlError> {
    if bytes.len() >= 84 {
        let n = u32::from_le_bytes([bytes[80], bytes[81], bytes[82], bytes[83]]) as usize;
        let expected = 84 + 50 * n;
        if bytes.len() == expected {
            return read_stl_binary(bytes, n);
        }
        // Wrong length for the declared triangle count. If it can't be the
        // ASCII dialect either, say exactly how many bytes are missing
        // instead of surfacing a confusing UTF-8 error.
        if std::str::from_utf8(bytes).is_err() {
            return Err(StlError::Parse(format!(
                "binary STL truncated or corrupt: header declares {n} triangles \
                 ({expected} bytes), file has {} bytes",
                bytes.len()
            )));
        }
    }
    read_stl_ascii(bytes)
}

/// Reads an STL file from disk.
pub fn read_stl_file(path: impl AsRef<Path>) -> Result<TriMesh, StlError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    read_stl(&bytes)
}

fn read_stl_binary(bytes: &[u8], n: usize) -> Result<TriMesh, StlError> {
    if n == 0 {
        return Err(StlError::Empty);
    }
    let mut tris = Vec::with_capacity(n);
    let mut off = 84;
    let f32_at = |bytes: &[u8], o: usize| {
        f32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]) as f64
    };
    for _ in 0..n {
        // Skip the stored normal (recomputed from winding on demand).
        let v = |k: usize| {
            let base = off + 12 + k * 12;
            Vec3::new(
                f32_at(bytes, base),
                f32_at(bytes, base + 4),
                f32_at(bytes, base + 8),
            )
        };
        tris.push(Triangle::new(v(0), v(1), v(2)));
        off += 50;
    }
    weld(&tris)
}

fn read_stl_ascii(bytes: &[u8]) -> Result<TriMesh, StlError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| StlError::Parse(format!("not valid UTF-8 at byte {}", e.valid_up_to())))?;
    let mut tris: Vec<Triangle> = Vec::new();
    let mut verts: Vec<Vec3> = Vec::with_capacity(3);
    let mut saw_solid = false;
    for (ln, line) in text.lines().enumerate() {
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("solid") => saw_solid = true,
            Some("vertex") => {
                let mut coord = [0.0f64; 3];
                for c in coord.iter_mut() {
                    let tok = tokens.next().ok_or_else(|| {
                        StlError::Parse(format!("line {}: missing vertex coordinate", ln + 1))
                    })?;
                    *c = tok.parse().map_err(|_| {
                        StlError::Parse(format!("line {}: bad number '{tok}'", ln + 1))
                    })?;
                }
                verts.push(Vec3::new(coord[0], coord[1], coord[2]));
            }
            Some("endloop") => {
                if verts.len() != 3 {
                    return Err(StlError::Parse(format!(
                        "line {}: facet with {} vertices (need 3)",
                        ln + 1,
                        verts.len()
                    )));
                }
                tris.push(Triangle::new(verts[0], verts[1], verts[2]));
                verts.clear();
            }
            _ => {} // facet / outer / endfacet / endsolid / blank
        }
    }
    if !saw_solid {
        return Err(StlError::Parse("no 'solid' keyword found".into()));
    }
    if tris.is_empty() {
        return Err(StlError::Empty);
    }
    weld(&tris)
}

/// Welds a triangle soup into an indexed mesh, merging vertices within
/// `1e-9 ×` the bounding-box diagonal.
fn weld(tris: &[Triangle]) -> Result<TriMesh, StlError> {
    let mut points = Vec::with_capacity(tris.len() * 3);
    for t in tris {
        points.extend_from_slice(&[t.a, t.b, t.c]);
    }
    let diag = Aabb::from_points(&points).diagonal().max(1.0);
    let mut mesh = TriMesh {
        vertices: points,
        faces: (0..tris.len())
            .map(|i| [3 * i, 3 * i + 1, 3 * i + 2])
            .collect(),
    };
    mesh.deduplicate_vertices(diag * 1e-9);
    mesh.validate()
        .map_err(|e| StlError::Parse(format!("welded mesh invalid: {e}")))?;
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adampack_geometry::shapes;

    fn sample_mesh() -> TriMesh {
        shapes::box_mesh(Vec3::new(0.5, -1.0, 2.0), Vec3::new(1.0, 2.0, 3.0))
    }

    #[test]
    fn ascii_round_trip_preserves_geometry() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_stl_ascii(&mut buf, &mesh, "box").unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("solid box"));
        assert!(text.trim_end().ends_with("endsolid box"));

        let back = read_stl(&buf).unwrap();
        assert_eq!(back.face_count(), mesh.face_count());
        assert_eq!(back.vertex_count(), 8, "weld restores shared vertices");
        assert!(back.is_watertight());
        assert!((back.signed_volume() - mesh.signed_volume()).abs() < 1e-9);
        assert_eq!(back.aabb(), mesh.aabb());
    }

    #[test]
    fn binary_round_trip_preserves_geometry() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &mesh).unwrap();
        assert_eq!(buf.len(), 84 + 50 * mesh.face_count());

        let back = read_stl(&buf).unwrap();
        assert_eq!(back.face_count(), mesh.face_count());
        assert_eq!(back.vertex_count(), 8);
        assert!(back.is_watertight());
        // f32 precision: volumes agree to ~1e-6 relative.
        let rel = (back.signed_volume() - mesh.signed_volume()).abs() / mesh.signed_volume();
        assert!(rel < 1e-6, "rel = {rel}");
    }

    #[test]
    fn binary_round_trip_of_curved_shape() {
        let mesh = shapes::cone(1.0, 2.0, 32, true);
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &mesh).unwrap();
        let back = read_stl(&buf).unwrap();
        assert!(back.is_watertight());
        assert_eq!(back.face_count(), mesh.face_count());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("adampack_stl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cone.stl");
        let mesh = shapes::cone(0.5, 1.0, 16, true);
        let mut file = std::fs::File::create(&path).unwrap();
        write_stl_ascii(&mut file, &mesh, "cone").unwrap();
        drop(file);
        let back = read_stl_file(&path).unwrap();
        assert_eq!(back.face_count(), mesh.face_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ascii_with_scientific_notation() {
        let stl = "solid t\n facet normal 0 0 1\n  outer loop\n   vertex 0e0 0E0 0.0\n   vertex 1.5e-1 0 0\n   vertex 0 2.5E-1 0\n  endloop\n endfacet\nendsolid t\n";
        let mesh = read_stl(stl.as_bytes()).unwrap();
        assert_eq!(mesh.face_count(), 1);
        assert!((mesh.vertices[1].x - 0.15).abs() < 1e-12);
        assert!((mesh.vertices[2].y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        // Not UTF-8 and not valid binary length.
        let garbage = vec![0xFFu8; 100];
        assert!(read_stl(&garbage).is_err());
        // Missing coordinates.
        let bad = "solid t\nvertex 1 2\nendsolid";
        assert!(matches!(read_stl(bad.as_bytes()), Err(StlError::Parse(_))));
        // Non-numeric coordinate.
        let bad = "solid t\nvertex a b c\nendsolid";
        assert!(matches!(read_stl(bad.as_bytes()), Err(StlError::Parse(_))));
        // Empty solid.
        let empty = "solid t\nendsolid t";
        assert!(matches!(read_stl(empty.as_bytes()), Err(StlError::Empty)));
        // Random text without 'solid'.
        assert!(read_stl(b"hello world").is_err());
    }

    #[test]
    fn truncated_binary_reports_byte_counts() {
        let mesh = sample_mesh();
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &mesh).unwrap();
        buf.truncate(buf.len() - 7); // tear mid-facet
        buf[0] = 0xFF; // make sure the header can't pass as UTF-8 ASCII
        let err = read_stl(&buf).expect_err("torn binary accepted");
        let msg = err.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("12 triangles"), "{msg}");
        assert!(msg.contains(&format!("{} bytes", buf.len())), "{msg}");
    }

    #[test]
    fn binary_with_zero_triangles_errors() {
        let mut buf = vec![0u8; 84];
        buf[80..84].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_stl(&buf),
            Err(StlError::Empty) | Err(StlError::Parse(_))
        ));
    }

    #[test]
    fn hull_pipeline_from_stl() {
        // End-to-end: STL bytes → mesh → container hull, as configs do.
        use adampack_geometry::ConvexHull;
        let mesh = shapes::blast_furnace(0.1, 24);
        let mut buf = Vec::new();
        write_stl_binary(&mut buf, &mesh).unwrap();
        let back = read_stl(&buf).unwrap();
        let hull = ConvexHull::from_mesh(&back).unwrap();
        assert!(hull.volume() > 0.0);
    }
}
