//! Property tests: reverse-mode gradients agree with finite differences on
//! randomized inputs of packing-shaped expressions.

use adampack_autograd::{gradient_check, Graph};
use proptest::prelude::*;

/// Builds the two-sphere penetration penalty
/// `p = -min(0, ‖c1 - c2‖ - r1 - r2)` on a fresh graph and returns
/// (value, grad w.r.t. the 6 coordinates).
fn penetration(coords: &[f64; 6], r1: f64, r2: f64) -> (f64, [f64; 6]) {
    let mut g = Graph::new();
    let vars: Vec<_> = coords.iter().map(|&c| g.var(c)).collect();
    let dx = g.sub(vars[0], vars[3]);
    let dy = g.sub(vars[1], vars[4]);
    let dz = g.sub(vars[2], vars[5]);
    let dist = g.norm3(dx, dy, dz);
    let delta = g.add_const(dist, -(r1 + r2));
    let dminus = g.min_zero(delta);
    let p = g.neg(dminus);
    let grads = g.backward(p);
    let mut out = [0.0; 6];
    for (o, v) in out.iter_mut().zip(vars.iter()) {
        *o = grads.wrt(*v);
    }
    (g.value(p), out)
}

proptest! {
    #[test]
    fn penetration_gradient_matches_finite_differences(
        c1 in prop::array::uniform3(-2.0f64..2.0),
        c2 in prop::array::uniform3(-2.0f64..2.0),
        r1 in 0.2f64..1.5,
        r2 in 0.2f64..1.5,
    ) {
        let coords = [c1[0], c1[1], c1[2], c2[0], c2[1], c2[2]];
        let d = ((c1[0]-c2[0]).powi(2) + (c1[1]-c2[1]).powi(2) + (c1[2]-c2[2]).powi(2)).sqrt();
        // Keep away from the two non-differentiable sets: coincident centers
        // and the exact contact distance.
        prop_assume!(d > 1e-3);
        prop_assume!((d - (r1 + r2)).abs() > 1e-3);

        let (_, analytic) = penetration(&coords, r1, r2);
        let f = |x: &[f64]| {
            let arr = [x[0], x[1], x[2], x[3], x[4], x[5]];
            penetration(&arr, r1, r2).0
        };
        let worst = gradient_check(f, &coords, &analytic, 1e-6);
        prop_assert!(worst < 1e-5, "worst discrepancy {worst}");
    }

    #[test]
    fn smooth_composite_gradient_matches(
        x in -3.0f64..3.0,
        y in -3.0f64..3.0,
        z in 0.1f64..3.0,
    ) {
        // f = sin(x)·cos(y) + exp(-z) + ln(z) + x²y
        let eval = |p: &[f64]| {
            let mut g = Graph::new();
            let (vx, vy, vz) = (g.var(p[0]), g.var(p[1]), g.var(p[2]));
            let sx = g.sin(vx);
            let cy = g.cos(vy);
            let t1 = g.mul(sx, cy);
            let nz = g.neg(vz);
            let t2 = g.exp(nz);
            let t3 = g.ln(vz);
            let x2 = g.square(vx);
            let t4 = g.mul(x2, vy);
            let s1 = g.add(t1, t2);
            let s2 = g.add(s1, t3);
            let f = g.add(s2, t4);
            g.value(f)
        };
        let mut g = Graph::new();
        let (vx, vy, vz) = (g.var(x), g.var(y), g.var(z));
        let sx = g.sin(vx);
        let cy = g.cos(vy);
        let t1 = g.mul(sx, cy);
        let nz = g.neg(vz);
        let t2 = g.exp(nz);
        let t3 = g.ln(vz);
        let x2 = g.square(vx);
        let t4 = g.mul(x2, vy);
        let s1 = g.add(t1, t2);
        let s2 = g.add(s1, t3);
        let f = g.add(s2, t4);
        let grads = g.backward(f);
        let analytic = [grads.wrt(vx), grads.wrt(vy), grads.wrt(vz)];
        let worst = gradient_check(eval, &[x, y, z], &analytic, 1e-6);
        prop_assert!(worst < 1e-5, "worst discrepancy {worst}");
    }

    #[test]
    fn analytic_derivatives_of_penetration_known_form(
        c2x in 0.5f64..3.0,
    ) {
        // Overlapping pair along x: gradient is ±1 on the x coordinates.
        let r = 2.0; // r1 + r2 = 4 > any distance here ⇒ always overlapping
        let coords = [0.0, 0.0, 0.0, c2x, 0.0, 0.0];
        let (val, grad) = penetration(&coords, r, r);
        prop_assert!((val - (2.0 * r - c2x)).abs() < 1e-12);
        prop_assert!((grad[0] - 1.0).abs() < 1e-12);
        prop_assert!((grad[3] + 1.0).abs() < 1e-12);
        prop_assert_eq!(grad[1], 0.0);
    }
}
