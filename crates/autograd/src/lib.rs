//! # adampack-autograd
//!
//! A tape-based reverse-mode automatic-differentiation engine — the
//! PyTorch-autograd substitute for the adampack workspace.
//!
//! The paper obtains gradients of its packing objective through PyTorch's
//! autograd. The production path in `adampack-core` uses closed-form
//! analytic gradients instead (faster and allocation-free), and this crate
//! exists to *prove those gradients correct*: tests build the same objective
//! as a computation graph here and check that reverse-mode gradients match
//! the analytic kernels to machine precision. It is also a general engine —
//! any scalar-valued composition of the supported operations can be
//! differentiated, so user-defined objective terms can be prototyped against
//! it before hand-deriving their gradients.
//!
//! ## Design
//!
//! A [`Graph`] is an append-only tape of nodes. Each node stores its value
//! and up to two parent links with the *local derivative* already evaluated
//! at forward time, so the backward sweep is a single reverse pass of
//! multiply-accumulates — the classic Wengert-list formulation.
//!
//! ```
//! use adampack_autograd::Graph;
//!
//! let mut g = Graph::new();
//! let x = g.var(3.0);
//! let y = g.var(4.0);
//! // f = sqrt(x² + y²)  (Euclidean norm)
//! let xx = g.mul(x, x);
//! let yy = g.mul(y, y);
//! let s = g.add(xx, yy);
//! let f = g.sqrt(s);
//! assert_eq!(g.value(f), 5.0);
//! let grads = g.backward(f);
//! assert!((grads.wrt(x) - 3.0 / 5.0).abs() < 1e-15);
//! assert!((grads.wrt(y) - 4.0 / 5.0).abs() < 1e-15);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod graph;
mod numdiff;

pub use graph::{Gradients, Graph, Var};
pub use numdiff::{central_difference, gradient_check};
