//! The Wengert-list computation graph.

/// Handle to a node in a [`Graph`].
///
/// `Var`s are only meaningful for the graph that created them; using them
/// across graphs is a logic error caught by the bounds checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone, Copy)]
struct Node {
    value: f64,
    /// Up to two (parent index, local derivative) links.
    parents: [(usize, f64); 2],
    n_parents: u8,
}

/// A tape of scalar operations supporting one reverse sweep.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

/// The adjoints produced by [`Graph::backward`].
#[derive(Debug)]
pub struct Gradients {
    adjoints: Vec<f64>,
}

impl Gradients {
    /// ∂output/∂`v`.
    pub fn wrt(&self, v: Var) -> f64 {
        self.adjoints[v.0]
    }
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Graph {
        Graph { nodes: Vec::new() }
    }

    /// Empties the tape for reuse, invalidating all existing `Var`s.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: f64, parents: [(usize, f64); 2], n_parents: u8) -> Var {
        self.nodes.push(Node {
            value,
            parents,
            n_parents,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a leaf variable (an optimization parameter).
    pub fn var(&mut self, value: f64) -> Var {
        self.push(value, [(0, 0.0); 2], 0)
    }

    /// Records a constant (zero gradient by construction).
    pub fn constant(&mut self, value: f64) -> Var {
        self.var(value)
    }

    /// Current forward value of a node.
    pub fn value(&self, v: Var) -> f64 {
        self.nodes[v.0].value
    }

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) + self.value(b);
        self.push(v, [(a.0, 1.0), (b.0, 1.0)], 2)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a) - self.value(b);
        self.push(v, [(a.0, 1.0), (b.0, -1.0)], 2)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        self.push(va * vb, [(a.0, vb), (b.0, va)], 2)
    }

    /// `a / b`.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        self.push(va / vb, [(a.0, 1.0 / vb), (b.0, -va / (vb * vb))], 2)
    }

    /// `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -self.value(a);
        self.push(v, [(a.0, -1.0), (0, 0.0)], 1)
    }

    /// `a + c` for a plain constant `c`.
    pub fn add_const(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a) + c;
        self.push(v, [(a.0, 1.0), (0, 0.0)], 1)
    }

    /// `a * c` for a plain constant `c`.
    pub fn mul_const(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a) * c;
        self.push(v, [(a.0, c), (0, 0.0)], 1)
    }

    /// `√a`.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).sqrt();
        self.push(v, [(a.0, 0.5 / v), (0, 0.0)], 1)
    }

    /// `a²`.
    pub fn square(&mut self, a: Var) -> Var {
        let va = self.value(a);
        self.push(va * va, [(a.0, 2.0 * va), (0, 0.0)], 1)
    }

    /// `aⁿ` for integer `n`.
    pub fn powi(&mut self, a: Var, n: i32) -> Var {
        let va = self.value(a);
        self.push(va.powi(n), [(a.0, n as f64 * va.powi(n - 1)), (0, 0.0)], 1)
    }

    /// `exp(a)`.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).exp();
        self.push(v, [(a.0, v), (0, 0.0)], 1)
    }

    /// `ln(a)`.
    pub fn ln(&mut self, a: Var) -> Var {
        let va = self.value(a);
        self.push(va.ln(), [(a.0, 1.0 / va), (0, 0.0)], 1)
    }

    /// `sin(a)`.
    pub fn sin(&mut self, a: Var) -> Var {
        let va = self.value(a);
        self.push(va.sin(), [(a.0, va.cos()), (0, 0.0)], 1)
    }

    /// `cos(a)`.
    pub fn cos(&mut self, a: Var) -> Var {
        let va = self.value(a);
        self.push(va.cos(), [(a.0, -va.sin()), (0, 0.0)], 1)
    }

    /// `|a|`; subgradient 0 at the kink.
    pub fn abs(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let d = if va > 0.0 {
            1.0
        } else if va < 0.0 {
            -1.0
        } else {
            0.0
        };
        self.push(va.abs(), [(a.0, d), (0, 0.0)], 1)
    }

    /// `max(0, a)` — the hinge used by the objective's exterior-distance
    /// term. Subgradient 0 at the kink, matching the analytic kernels in
    /// `adampack-core` (which use a strict `> 0` test).
    pub fn relu(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let (v, d) = if va > 0.0 { (va, 1.0) } else { (0.0, 0.0) };
        self.push(v, [(a.0, d), (0, 0.0)], 1)
    }

    /// `min(0, a)` — the clamp in the paper's penetration depth
    /// `δ⁻ = min(0, δ)`. Subgradient 0 at the kink.
    pub fn min_zero(&mut self, a: Var) -> Var {
        let va = self.value(a);
        let (v, d) = if va < 0.0 { (va, 1.0) } else { (0.0, 0.0) };
        self.push(v, [(a.0, d), (0, 0.0)], 1)
    }

    /// `max(a, b)`; ties propagate to `a`.
    pub fn max(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        if va >= vb {
            self.push(va, [(a.0, 1.0), (b.0, 0.0)], 2)
        } else {
            self.push(vb, [(a.0, 0.0), (b.0, 1.0)], 2)
        }
    }

    /// `min(a, b)`; ties propagate to `a`.
    pub fn min(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        if va <= vb {
            self.push(va, [(a.0, 1.0), (b.0, 0.0)], 2)
        } else {
            self.push(vb, [(a.0, 0.0), (b.0, 1.0)], 2)
        }
    }

    /// Sum of many terms (left fold of [`Graph::add`]).
    pub fn sum(&mut self, terms: &[Var]) -> Var {
        match terms {
            [] => self.constant(0.0),
            [single] => *single,
            [first, rest @ ..] => {
                let mut acc = *first;
                for &t in rest {
                    acc = self.add(acc, t);
                }
                acc
            }
        }
    }

    /// Euclidean norm of a 3-vector of variables — the `‖cᵢ - cⱼ‖` kernel of
    /// the penetration term.
    pub fn norm3(&mut self, x: Var, y: Var, z: Var) -> Var {
        let xx = self.square(x);
        let yy = self.square(y);
        let zz = self.square(z);
        let s1 = self.add(xx, yy);
        let s2 = self.add(s1, zz);
        self.sqrt(s2)
    }

    /// Reverse sweep from `output`; returns adjoints for every node.
    ///
    /// The output's adjoint is seeded with 1. Multiple calls are allowed
    /// (each allocates fresh adjoints); the tape itself is immutable during
    /// the sweep.
    pub fn backward(&self, output: Var) -> Gradients {
        let mut adjoints = vec![0.0; self.nodes.len()];
        adjoints[output.0] = 1.0;
        for i in (0..=output.0).rev() {
            let a = adjoints[i];
            if a == 0.0 {
                continue;
            }
            let node = &self.nodes[i];
            for k in 0..node.n_parents as usize {
                let (pi, d) = node.parents[k];
                adjoints[pi] += a * d;
            }
        }
        Gradients { adjoints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad1(build: impl Fn(&mut Graph, Var) -> Var, x: f64) -> (f64, f64) {
        let mut g = Graph::new();
        let v = g.var(x);
        let out = build(&mut g, v);
        let grads = g.backward(out);
        (g.value(out), grads.wrt(v))
    }

    #[test]
    fn arithmetic_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.var(2.0);
        let y = g.var(5.0);
        let p = g.mul(x, y); // 10
        let q = g.sub(p, x); // 8
        let r = g.div(q, y); // 1.6
        assert!((g.value(r) - 1.6).abs() < 1e-15);
        let grads = g.backward(r);
        // r = (xy - x)/y = x - x/y ⇒ ∂r/∂x = 1 - 1/y = 0.8; ∂r/∂y = x/y² = 0.08.
        assert!((grads.wrt(x) - 0.8).abs() < 1e-15);
        assert!((grads.wrt(y) - 0.08).abs() < 1e-15);
    }

    #[test]
    fn unary_derivatives() {
        let (v, d) = grad1(|g, x| g.sqrt(x), 4.0);
        assert!((v - 2.0).abs() < 1e-15 && (d - 0.25).abs() < 1e-15);

        let (v, d) = grad1(|g, x| g.square(x), 3.0);
        assert!((v - 9.0).abs() < 1e-15 && (d - 6.0).abs() < 1e-15);

        let (v, d) = grad1(|g, x| g.exp(x), 0.0);
        assert!((v - 1.0).abs() < 1e-15 && (d - 1.0).abs() < 1e-15);

        let (v, d) = grad1(|g, x| g.ln(x), 2.0);
        assert!((v - 2f64.ln()).abs() < 1e-15 && (d - 0.5).abs() < 1e-15);

        let (v, d) = grad1(|g, x| g.powi(x, 3), 2.0);
        assert!((v - 8.0).abs() < 1e-15 && (d - 12.0).abs() < 1e-15);

        let (_, d) = grad1(|g, x| g.sin(x), 0.3);
        assert!((d - 0.3f64.cos()).abs() < 1e-15);
        let (_, d) = grad1(|g, x| g.cos(x), 0.3);
        assert!((d + 0.3f64.sin()).abs() < 1e-15);
    }

    #[test]
    fn fan_out_accumulates_adjoints() {
        // f = x·x + x ⇒ f' = 2x + 1.
        let mut g = Graph::new();
        let x = g.var(3.0);
        let xx = g.mul(x, x);
        let f = g.add(xx, x);
        let grads = g.backward(f);
        assert!((grads.wrt(x) - 7.0).abs() < 1e-15);
    }

    #[test]
    fn hinge_and_clamp_subgradients() {
        // relu
        assert_eq!(grad1(|g, x| g.relu(x), 2.0), (2.0, 1.0));
        assert_eq!(grad1(|g, x| g.relu(x), -2.0), (0.0, 0.0));
        assert_eq!(grad1(|g, x| g.relu(x), 0.0), (0.0, 0.0));
        // min(0, ·)
        assert_eq!(grad1(|g, x| g.min_zero(x), -2.0), (-2.0, 1.0));
        assert_eq!(grad1(|g, x| g.min_zero(x), 2.0), (0.0, 0.0));
        assert_eq!(grad1(|g, x| g.min_zero(x), 0.0), (0.0, 0.0));
        // abs
        assert_eq!(grad1(|g, x| g.abs(x), -3.0), (3.0, -1.0));
        assert_eq!(grad1(|g, x| g.abs(x), 3.0), (3.0, 1.0));
        assert_eq!(grad1(|g, x| g.abs(x), 0.0), (0.0, 0.0));
    }

    #[test]
    fn min_max_select_branch_gradients() {
        let mut g = Graph::new();
        let a = g.var(2.0);
        let b = g.var(5.0);
        let m = g.max(a, b);
        let grads = g.backward(m);
        assert_eq!(g.value(m), 5.0);
        assert_eq!(grads.wrt(a), 0.0);
        assert_eq!(grads.wrt(b), 1.0);

        let mut g = Graph::new();
        let a = g.var(2.0);
        let b = g.var(5.0);
        let m = g.min(a, b);
        let grads = g.backward(m);
        assert_eq!(g.value(m), 2.0);
        assert_eq!(grads.wrt(a), 1.0);
        assert_eq!(grads.wrt(b), 0.0);
    }

    #[test]
    fn sum_of_terms() {
        let mut g = Graph::new();
        let vars: Vec<Var> = (1..=5).map(|i| g.var(i as f64)).collect();
        let s = g.sum(&vars);
        assert_eq!(g.value(s), 15.0);
        let grads = g.backward(s);
        for v in vars {
            assert_eq!(grads.wrt(v), 1.0);
        }
        // Empty sum is a constant 0 with no gradient flow.
        let z = g.sum(&[]);
        assert_eq!(g.value(z), 0.0);
    }

    #[test]
    fn norm3_gradient_is_unit_direction() {
        let mut g = Graph::new();
        let (x, y, z) = (g.var(1.0), g.var(2.0), g.var(2.0));
        let n = g.norm3(x, y, z);
        assert!((g.value(n) - 3.0).abs() < 1e-15);
        let grads = g.backward(n);
        assert!((grads.wrt(x) - 1.0 / 3.0).abs() < 1e-15);
        assert!((grads.wrt(y) - 2.0 / 3.0).abs() < 1e-15);
        assert!((grads.wrt(z) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn pairwise_penetration_gradient_example() {
        // The paper's p_ij = -min(0, ‖ci - cj‖ - ri - rj) for two overlapping
        // unit spheres at distance 1.5: p = 0.5, ∂p/∂c_i = -(ci-cj)/‖·‖.
        let mut g = Graph::new();
        let c1 = [g.var(0.0), g.var(0.0), g.var(0.0)];
        let c2 = [g.var(1.5), g.var(0.0), g.var(0.0)];
        let dx = g.sub(c1[0], c2[0]);
        let dy = g.sub(c1[1], c2[1]);
        let dz = g.sub(c1[2], c2[2]);
        let dist = g.norm3(dx, dy, dz);
        let delta = g.add_const(dist, -2.0); // r_i + r_j = 2
        let dminus = g.min_zero(delta);
        let p = g.neg(dminus);
        assert!((g.value(p) - 0.5).abs() < 1e-15);
        let grads = g.backward(p);
        // Moving c1.x towards +x reduces overlap: gradient = -(0-1.5)/1.5 · (-1)?
        // p = -(‖c1-c2‖ - 2) when overlapping ⇒ ∂p/∂c1x = -(c1x-c2x)/‖·‖ = 1.
        assert!((grads.wrt(c1[0]) - 1.0).abs() < 1e-14);
        assert!((grads.wrt(c2[0]) + 1.0).abs() < 1e-14);
        assert_eq!(grads.wrt(c1[1]), 0.0);
    }

    #[test]
    fn backward_twice_is_stable() {
        let mut g = Graph::new();
        let x = g.var(2.0);
        let f = g.square(x);
        let g1 = g.backward(f);
        let g2 = g.backward(f);
        assert_eq!(g1.wrt(x), g2.wrt(x));
    }

    #[test]
    fn clear_resets_tape() {
        let mut g = Graph::new();
        let _ = g.var(1.0);
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn constants_have_zero_gradient() {
        let mut g = Graph::new();
        let x = g.var(2.0);
        let c = g.constant(10.0);
        let f = g.mul(x, c);
        let grads = g.backward(f);
        assert_eq!(grads.wrt(x), 10.0);
        assert_eq!(grads.wrt(c), 2.0); // it's still a leaf; caller ignores it
    }
}
