//! Finite-difference utilities for gradient verification.

/// Central finite difference of a scalar function of a vector, w.r.t.
/// coordinate `i`, with step `h`.
pub fn central_difference<F>(f: F, x: &[f64], i: usize, h: f64) -> f64
where
    F: Fn(&[f64]) -> f64,
{
    assert!(
        i < x.len(),
        "index {i} out of bounds for {} coords",
        x.len()
    );
    assert!(h > 0.0, "step must be positive");
    let mut xp = x.to_vec();
    let mut xm = x.to_vec();
    xp[i] += h;
    xm[i] -= h;
    (f(&xp) - f(&xm)) / (2.0 * h)
}

/// Checks an analytic gradient against central differences.
///
/// Returns the largest absolute discrepancy over all coordinates, each
/// compared with relative tolerance against `max(1, |∇ᵢ|)`; callers assert
/// the result is below their tolerance. Useful both in this crate's tests
/// and from `adampack-core` to validate the hand-derived objective
/// gradients.
pub fn gradient_check<F>(f: F, x: &[f64], analytic: &[f64], h: f64) -> f64
where
    F: Fn(&[f64]) -> f64,
{
    assert_eq!(x.len(), analytic.len(), "gradient length mismatch");
    let mut worst: f64 = 0.0;
    for (i, &a) in analytic.iter().enumerate() {
        let num = central_difference(&f, x, i, h);
        let scale = a.abs().max(1.0);
        worst = worst.max((num - a).abs() / scale);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn central_difference_on_quadratic_is_exact() {
        // For quadratics the O(h²) error term vanishes identically.
        let f = |x: &[f64]| 3.0 * x[0] * x[0] + 2.0 * x[0];
        let d = central_difference(f, &[1.5], 0, 1e-3);
        assert!((d - (6.0 * 1.5 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn gradient_check_flags_wrong_gradients() {
        let f = |x: &[f64]| x[0] * x[0] + x[1];
        let good = [2.0, 1.0]; // at x = (1, anything)
        let bad = [2.5, 1.0];
        assert!(gradient_check(f, &[1.0, 0.0], &good, 1e-5) < 1e-8);
        assert!(gradient_check(f, &[1.0, 0.0], &bad, 1e-5) > 0.1);
    }

    #[test]
    fn autograd_agrees_with_finite_differences_on_composite() {
        // f(x, y) = relu(x·y - 1) + √(x² + y² + 1)
        let eval = |p: &[f64]| {
            let mut g = Graph::new();
            let x = g.var(p[0]);
            let y = g.var(p[1]);
            let xy = g.mul(x, y);
            let hinge_arg = g.add_const(xy, -1.0);
            let hinge = g.relu(hinge_arg);
            let xx = g.square(x);
            let yy = g.square(y);
            let s = g.add(xx, yy);
            let s1 = g.add_const(s, 1.0);
            let root = g.sqrt(s1);
            let f = g.add(hinge, root);
            g.value(f)
        };
        let p = [1.3, 0.9]; // xy - 1 = 0.17, away from the kink
        let mut g = Graph::new();
        let x = g.var(p[0]);
        let y = g.var(p[1]);
        let xy = g.mul(x, y);
        let hinge_arg = g.add_const(xy, -1.0);
        let hinge = g.relu(hinge_arg);
        let xx = g.square(x);
        let yy = g.square(y);
        let s = g.add(xx, yy);
        let s1 = g.add_const(s, 1.0);
        let root = g.sqrt(s1);
        let f = g.add(hinge, root);
        let grads = g.backward(f);
        let analytic = [grads.wrt(x), grads.wrt(y)];
        assert!(gradient_check(eval, &p, &analytic, 1e-6) < 1e-7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn central_difference_bounds_checked() {
        let _ = central_difference(|x| x[0], &[1.0], 1, 1e-6);
    }
}
