//! Particle-size-distribution showcase: pack the same container under
//! different PSDs (the paper's defining feature is *exact* adherence to a
//! prescribed distribution) and compare adherence and core density.
//!
//! ```sh
//! cargo run --release -p adampack-examples --example psd_showcase
//! ```

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_examples::arg_usize;
use adampack_geometry::{shapes, Vec3};

fn main() {
    let n = arg_usize("--particles", 250);
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).expect("box hull");

    let psds: Vec<(&str, Psd)> = vec![
        ("constant(0.10)", Psd::constant(0.10)),
        ("uniform(0.07, 0.13)", Psd::uniform(0.07, 0.13)),
        ("normal(0.10, 0.015)", Psd::normal(0.10, 0.015)),
        (
            "bimodal 70/30",
            Psd::mixture(vec![(0.7, Psd::constant(0.08)), (0.3, Psd::constant(0.14))]),
        ),
    ];

    println!(
        "{:>22} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "psd", "packed", "density", "mean_r_err_%", "mean_ovl_%", "time_s"
    );
    for (name, psd) in psds {
        let params = PackingParams {
            batch_size: 125,
            target_count: n,
            seed: 3,
            ..PackingParams::default()
        };
        let result = CollectivePacker::new(container.clone(), params).pack(&psd);
        // Probe over the bed region (the box is part-filled at this count).
        let bed_top = result
            .particles
            .iter()
            .map(|p| p.center.z + p.radius)
            .fold(f64::NEG_INFINITY, f64::max);
        let bb = container.aabb();
        let probe = adampack_overlap::DensityProbe::new(adampack_geometry::Aabb::new(
            bb.min + Vec3::splat(0.2),
            Vec3::new(bb.max.x - 0.2, bb.max.y - 0.2, bed_top - 0.25),
        ));
        let density = probe.density(result.particles.iter().map(|p| (p.center, p.radius)));
        let contact = metrics::contact_stats(&result.particles);
        let radii: Vec<f64> = result.particles.iter().map(|p| p.radius).collect();
        let adherence = metrics::psd_adherence(&radii, &psd);
        println!(
            "{name:>22} {:>8} {density:>10.3} {:>14.3} {:>12.3} {:>10.2}",
            result.particles.len(),
            adherence.mean_rel_error * 100.0,
            contact.mean_overlap_ratio * 100.0,
            result.duration.as_secs_f64()
        );
    }
    println!(
        "note: radii are sampled from the PSD and never altered — adherence is sampling noise only"
    );
}
