//! The paper's §VI-A configuration example (Figs. 9–10): a cone container
//! with a spherical zone of fine particles and a slice zone of coarse ones,
//! driven end-to-end from a YAML configuration.
//!
//! ```sh
//! cargo run --release -p adampack-examples --example cone_zones
//! ```

use adampack_config::PackingConfig;
use adampack_core::prelude::*;
use adampack_examples::output_dir;
use adampack_geometry::{shapes, ConvexHull, Vec3};
use adampack_io::{write_particles_vtk, write_stl_ascii};

const CONFIG: &str = r#"
# Fig. 9-style packing configuration.
container:
    path: "cone.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 800
    patience: 50
    batch_size: 80
    seed: 7
gravity_axis: z
particle_sets:
    - radius_distribution: "uniform"
      radius_min: 0.05
      radius_max: 0.08
    - radius_distribution: "normal"
      radius_mean: 0.04
      radius_std_dev: 0.005
zones:
    - n_particles: 120
      location:
          shape:
              path: "sphere.stl"
      set_proportions: [0.0, 1.0,]
    - n_particles: 150
      location:
          slice:
              axis: 2
              min_bound: 0.8
              max_bound: 1.5
      set_proportions: [1.0, 0.0]
"#;

fn main() {
    let dir = output_dir().expect("output dir");

    // Generate the STL assets the configuration references.
    let cone = shapes::cone(1.2, 2.2, 48, false); // apex down, widening upward
    let sphere = shapes::uv_sphere(Vec3::new(0.0, 0.0, 0.55), 0.45, 24, 12);
    for (name, mesh) in [("cone.stl", &cone), ("sphere.stl", &sphere)] {
        let f = std::fs::File::create(dir.join(name)).expect("stl file");
        write_stl_ascii(std::io::BufWriter::new(f), mesh, name).expect("stl write");
    }

    // Parse the YAML, resolve paths, load geometry through adampack-io.
    let mut cfg = PackingConfig::from_str(CONFIG).expect("valid configuration");
    cfg.resolve_paths(&dir);
    let container_mesh = adampack_io::read_stl_file(&cfg.container_path).expect("container stl");
    let container = Container::from_mesh(&container_mesh).expect("container hull");
    let zones = cfg
        .zone_specs(|p| {
            let mesh = adampack_io::read_stl_file(p)
                .map_err(|e| adampack_config::ConfigError::Field(e.to_string()))?;
            ConvexHull::from_mesh(&mesh)
                .map_err(|e| adampack_config::ConfigError::Field(e.to_string()))
        })
        .expect("zone specs");

    println!(
        "algorithm {}, container volume {:.2}, {} zones",
        cfg.algorithm,
        container.volume(),
        zones.len()
    );

    let packer = ZonedPacker::new(container, cfg.to_packing_params(), cfg.psds());
    let result = packer.pack(&zones);
    println!(
        "packed {} particles in {:.2?} ({} batches)",
        result.particles.len(),
        result.duration,
        result.batches.len()
    );

    // The normal set (mean 0.04, 3σ ≤ 0.055) vs the uniform set (≥ 0.05):
    // classify at the midpoint for the zone report.
    let fine = result
        .particles
        .iter()
        .filter(|p| p.radius < 0.0525)
        .count();
    println!("fine (sphere zone, green in Fig. 10): {fine}");
    println!(
        "coarse (slice zone, blue in Fig. 10): {}",
        result.particles.len() - fine
    );

    let path = dir.join("cone_zones.vtk");
    let triples: Vec<(Vec3, f64, usize)> = result
        .particles
        .iter()
        .map(|p| (p.center, p.radius, usize::from(p.radius >= 0.0525)))
        .collect();
    let f = std::fs::File::create(&path).expect("vtk file");
    write_particles_vtk(std::io::BufWriter::new(f), &triples, "cone zones").expect("vtk write");
    println!("VTK written to {}", path.display());
}
