//! The §VI-B industrial scenario: packing a Midrex blast furnace (32 m
//! tall, 6.5 m max diameter) with spheres of radii U(5.2 cm, 7.5 cm) as
//! DEM initial conditions.
//!
//! The default runs a 1:10 scaled replica (laptop-sized, same geometry,
//! radii scaled to keep the particle count tractable). `--full` packs the
//! paper-scale vessel — the paper needed 31 h for its 430,062 particles, so
//! expect a long run.
//!
//! ```sh
//! cargo run --release -p adampack-examples --example blast_furnace
//! cargo run --release -p adampack-examples --example blast_furnace -- --full
//! ```

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_examples::{arg_flag, arg_usize, output_dir};
use adampack_geometry::{shapes, Vec3};
use adampack_io::write_particles_vtk;

fn main() {
    let full = arg_flag("--full");
    let scale = if full { 1.0 } else { 0.1 };
    let mesh = shapes::blast_furnace(scale, 48);
    let container = Container::from_mesh(&mesh).expect("furnace hull");
    // Paper radii at full scale; the replica enlarges them relative to the
    // vessel (radii scale by 0.4 while the vessel scales by 0.1) so the
    // default run stays at a few thousand particles.
    let r_scale = if full { 1.0 } else { 0.4 };
    let psd = Psd::uniform(0.052 * r_scale, 0.075 * r_scale);

    // At full scale the paper packs 430,062 particles; the replica's default
    // is capacity-limited instead.
    let target = arg_usize("--particles", if full { 430_062 } else { 4_000 });

    println!(
        "blast furnace: height {:.1}, max diameter {:.2}, volume {:.1}",
        container.aabb().extent().z,
        container.aabb().extent().x,
        container.volume()
    );
    println!(
        "radii U({:.4}, {:.4}), target {target} particles (capacity est. {})",
        0.052 * r_scale,
        0.075 * r_scale,
        container.capacity_estimate(psd.mean(), 0.6)
    );

    let params = PackingParams {
        batch_size: 500,
        target_count: target,
        seed: 0,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&psd);

    println!(
        "packed {} particles in {:.2?} across {} batches",
        result.particles.len(),
        result.duration,
        result.batches.len()
    );
    let contact = metrics::contact_stats(&result.particles);
    println!(
        "mean contact overlap {:.2}% of radius (max {:.2}%)",
        contact.mean_overlap_ratio * 100.0,
        contact.max_overlap_ratio * 100.0
    );
    let radii: Vec<f64> = result.particles.iter().map(|p| p.radius).collect();
    let adherence = metrics::psd_adherence(&radii, &psd);
    println!(
        "PSD adherence: mean error {:.3}%, out-of-bound fraction {:.4}",
        adherence.mean_rel_error * 100.0,
        adherence.out_of_bound_fraction
    );

    let dir = output_dir().expect("output dir");
    let path = dir.join("blast_furnace.vtk");
    let triples: Vec<(Vec3, f64, usize)> = result
        .particles
        .iter()
        .map(|p| (p.center, p.radius, p.batch))
        .collect();
    let f = std::fs::File::create(&path).expect("vtk file");
    write_particles_vtk(std::io::BufWriter::new(f), &triples, "blast furnace").expect("vtk write");
    println!(
        "VTK written to {} (Fig. 11 rendering: glyph spheres by radius)",
        path.display()
    );
}
