//! Closing the loop to the paper's motivating use-case: pack a bed with
//! the collective-arrangement algorithm, hand it to the DEM substrate, and
//! verify it behaves as a valid DEM *initial condition* — kinetic energy
//! stays bounded and decays, nothing is ejected, the bed barely moves.
//! Optionally relaxes the residual contact overlaps first.
//!
//! ```sh
//! cargo run --release -p adampack-examples --example dem_settle
//! ```

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_dem::{DemParams, DemSimulation};
use adampack_examples::arg_usize;
use adampack_geometry::{shapes, Vec3};

fn main() {
    let n = arg_usize("--particles", 150);
    let mesh = shapes::box_mesh(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).expect("box hull");
    let psd = Psd::uniform(0.08, 0.12);

    let params = PackingParams {
        batch_size: 75,
        target_count: n,
        seed: 13,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&psd);
    let contact = metrics::contact_stats(&result.particles);
    println!(
        "packed {} particles; mean contact overlap {:.2}% of radius",
        result.particles.len(),
        contact.mean_overlap_ratio * 100.0
    );

    let dem_params = DemParams {
        kn: 1e4,
        dt: 2e-5,
        ..DemParams::default()
    };
    let mut sim = DemSimulation::new(
        &result.particles,
        container.halfspaces().clone(),
        dem_params,
    );

    // Phase 1: zero-gravity relaxation of the optimizer's residual overlaps.
    let relaxed = sim.relax_overlaps(0.002, 50_000);
    println!(
        "after relaxation: max overlap {:.3}% of radius",
        relaxed * 100.0
    );

    // Phase 2: settle under gravity and watch the energy decay.
    let bed0 = sim.stats().bed_height;
    println!(
        "{:>8} {:>14} {:>12} {:>12}",
        "t_ms", "kinetic_J", "max_v", "bed_height"
    );
    for _ in 0..10 {
        sim.run(2_500);
        let s = sim.stats();
        println!(
            "{:>8.1} {:>14.3e} {:>12.4} {:>12.4}",
            sim.time() * 1e3,
            s.kinetic_energy,
            s.max_speed,
            s.bed_height
        );
    }
    let s = sim.stats();
    let drop = bed0 - s.bed_height;
    let mean_d = 2.0 * result.particles.iter().map(|p| p.radius).sum::<f64>()
        / result.particles.len() as f64;
    println!(
        "bed height change during settling: {drop:.4} (initial {bed0:.4}, mean diameter {mean_d:.3})"
    );
    // A valid initial condition rearranges by at most about one particle
    // diameter (top-layer particles rolling into pockets); a collapse of
    // several diameters would mean the bed was never packed.
    assert!(
        drop.abs() < 1.5 * mean_d,
        "bed collapsed by {drop:.3} (> 1.5 diameters) — not a valid initial condition"
    );
    // Nothing ejected.
    for (k, &p) in sim.positions().iter().enumerate() {
        let excess = container.halfspaces().sphere_max_excess(p, sim.radii()[k]);
        assert!(excess < 0.05, "particle {k} escaped by {excess}");
    }
    println!("bed is a valid DEM initial condition ✔");
}
