//! Quickstart: pack poly-disperse spheres into a box and inspect the result.
//!
//! ```sh
//! cargo run --release -p adampack-examples --example quickstart
//! ```

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_examples::{arg_usize, output_dir};
use adampack_geometry::{shapes, Vec3};
use adampack_io::write_particles_csv;

fn main() {
    // 1. A container: any convex triangular mesh works; here the paper's
    //    2×2×2 box. (Use `adampack_io::read_stl_file` for STL containers.)
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).expect("convex hull of the box");
    println!(
        "container: volume {:.2}, {} boundary planes",
        container.volume(),
        container.halfspaces().len()
    );

    // 2. A particle-size distribution the packing must follow *exactly*.
    let psd = Psd::uniform(0.08, 0.12);

    // 3. Pack with the paper's hyper-parameters (α=100, β=10, γ=100,
    //    AMSGrad + ReduceLROnPlateau from 1e-2).
    let n = arg_usize("--particles", 300);
    let params = PackingParams {
        batch_size: 150,
        target_count: n,
        seed: 42,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&psd);

    // 4. Inspect quality: density, contacts, boundary, PSD adherence.
    println!(
        "packed {} of {} particles in {:.2?} over {} batches",
        result.particles.len(),
        n,
        result.duration,
        result.batches.len()
    );
    // Probe density over the *bed* region (the box is only part-filled at
    // 300 particles, so the paper's centred inner-box probe would straddle
    // the free surface).
    let bed_top = result
        .particles
        .iter()
        .map(|p| p.center.z + p.radius)
        .fold(f64::NEG_INFINITY, f64::max);
    let bb = container.aabb();
    let probe_region = adampack_geometry::Aabb::new(
        bb.min + adampack_geometry::Vec3::splat(0.15),
        adampack_geometry::Vec3::new(bb.max.x - 0.15, bb.max.y - 0.15, bed_top - 0.2),
    );
    let density = adampack_overlap::DensityProbe::new(probe_region)
        .density(result.particles.iter().map(|p| (p.center, p.radius)));
    let contact = metrics::contact_stats(&result.particles);
    let radii: Vec<f64> = result.particles.iter().map(|p| p.radius).collect();
    let adherence = metrics::psd_adherence(&radii, &psd);
    println!("bed core density: {density:.3}");
    println!(
        "contacts: {} | mean overlap {:.2}% of radius | max {:.2}%",
        contact.contacts,
        contact.mean_overlap_ratio * 100.0,
        contact.max_overlap_ratio * 100.0
    );
    println!(
        "PSD adherence: sample mean {:.4} vs prescribed {:.4} ({:.2}% error)",
        adherence.sample_mean,
        psd.mean(),
        adherence.mean_rel_error * 100.0
    );
    for p in &result.particles {
        assert!(
            container.contains_sphere(p.center, p.radius, 0.05 * p.radius),
            "a particle escaped the container"
        );
    }

    // 5. Export for DEM tooling.
    let dir = output_dir().expect("output dir");
    let path = dir.join("quickstart.csv");
    let file = std::fs::File::create(&path).expect("csv file");
    write_particles_csv(
        std::io::BufWriter::new(file),
        result
            .particles
            .iter()
            .map(|p| (p.center, p.radius, p.batch, p.set)),
    )
    .expect("csv write");
    println!("particles written to {}", path.display());
}
