//! Chaos and hardening tests for the job server (`crates/server`):
//!
//! * **Admission control** — a job predicted to exceed the memory budget
//!   is rejected outright (413); a full queue sheds with 429 and a
//!   `Retry-After` header while `/readyz` goes red and `/healthz` stays
//!   green.
//! * **Disk exhaustion** — with the `io.write.enospc` failpoint armed,
//!   a finished job's artifact write degrades to load shedding (result
//!   parked, `/readyz` red, new submissions 429) instead of failing the
//!   job; once the disk "recovers" the parked artifact persists and the
//!   bytes match a direct run exactly.
//! * **Bounded disk** — the artifact store stays under its configured
//!   cap, evicting LRU entries as new jobs complete.
//! * **Graceful drain** — `begin_drain` stops admission (503 with
//!   `Retry-After`) while reads keep working; a drained-then-restarted
//!   server resumes the parked job from its shutdown checkpoint and
//!   produces byte-identical artifacts.
//! * **Cancel vs preemption** — a cancel that lands while a job sits
//!   evicted in the queue wins: the job goes terminal `cancelled` (never
//!   back into the queue) and its checkpoint rotation is swept.
//! * **Per-job budgets** — a step ceiling expires the job at an exact
//!   batch boundary with its checkpoint persisted; resubmitting resumes
//!   with a fresh budget, and the artifact assembled across however many
//!   budget windows it takes is byte-identical to an unbudgeted run.
//!
//! Servers bind `127.0.0.1:0`. The process-global failpoint registry and
//! telemetry counters serialize the tests on one mutex.

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use adampack_cli::{run_pack_opts, PackOptions};
use adampack_geometry::{shapes, Vec3};
use adampack_io::{checkpoint_candidates, write_stl_ascii, FAILPOINT_WRITE_ENOSPC};
use adampack_server::{client, ServeOptions, Server, ServerHandle};

static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let guard = SERVER_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoints::reset();
    guard
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adampack_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
    let f = std::fs::File::create(dir.join("box.stl")).unwrap();
    write_stl_ascii(std::io::BufWriter::new(f), &mesh, "box").unwrap();
    dir
}

fn config(radius: f64, seed: u64) -> String {
    format!(
        r#"
container:
    path: "box.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 300
    patience: 30
    batch_size: 40
    seed: {seed}
particle_sets:
    - radius_distribution: "constant"
      radius_value: {radius}
"#
    )
}

fn serve(dir: &Path, opts_fn: impl FnOnce(&mut ServeOptions)) -> ServerHandle {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        http_threads: 1,
        queue_shards: 1,
        data_dir: dir.join("data"),
        config_base: dir.to_path_buf(),
        slice_ms: 3_000,
        checkpoint_every: 0,
        keep_last: 3,
        limits: Default::default(),
    };
    opts_fn(&mut opts);
    Server::start(opts).unwrap()
}

fn direct_csv(dir: &Path, yaml: &str, tag: &str) -> Vec<u8> {
    let cfg_path = dir.join(format!("{tag}.yaml"));
    std::fs::write(&cfg_path, yaml).unwrap();
    let out = dir.join(format!("{tag}.csv"));
    let opts = PackOptions {
        out: Some(out.clone()),
        ..PackOptions::default()
    };
    run_pack_opts(&cfg_path, &opts).unwrap();
    std::fs::read(&out).unwrap()
}

fn submit_ok(addr: SocketAddr, yaml: &str) -> (String, String) {
    let (code, body) = client::submit(addr, yaml).unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    (
        client::json_str_field(&body, "address").unwrap(),
        client::json_str_field(&body, "outcome").unwrap(),
    )
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (code, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} not in metrics:\n{text}"))
}

/// Sends a raw request and returns the status code plus the full head
/// (the std client hides headers; shedding tests need `Retry-After`).
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no response head");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("no status code");
    (code, head)
}

/// Polls `GET /jobs/{hex}` until `pred(status_body)` holds.
fn wait_for(addr: SocketAddr, hex: &str, what: &str, pred: impl Fn(&str) -> bool) {
    let t0 = Instant::now();
    loop {
        let (_, body) = client::get(addr, &format!("/jobs/{hex}")).unwrap();
        if pred(&String::from_utf8_lossy(&body)) {
            return;
        }
        assert!(t0.elapsed() < Duration::from_secs(120), "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn overload_sheds_with_429_and_oversize_is_rejected_with_413() {
    let _g = guard();
    let dir = test_dir("overload");

    // One worker, one shard, queue depth 1: the second queued job
    // saturates admission.
    let server = serve(&dir, |o| o.limits.queue_depth = 1);
    let addr = server.addr();
    let shed_before = metric(addr, "adampack_server_shed_total");

    // Radius 0.05 jobs run for seconds (~1100 particles): job A holds
    // the worker for the whole admission-probing sequence below.
    let (a_hex, _) = submit_ok(addr, &config(0.05, 31));
    wait_for(addr, &a_hex, "job A running", |s| s.contains("\"running\""));
    let (_b_hex, o) = submit_ok(addr, &config(0.05, 32));
    assert_eq!(o, "scheduled");

    // Queue full: the third distinct job is shed with 429 + Retry-After,
    // readiness goes red, liveness stays green.
    let (code, head) = raw_request(addr, "POST", "/jobs", config(0.05, 33).as_bytes());
    assert_eq!(code, 429, "{head}");
    assert!(head.contains("Retry-After:"), "no Retry-After in:\n{head}");
    assert!(metric(addr, "adampack_server_shed_total") > shed_before);
    let (code, body) = client::get(addr, "/readyz").unwrap();
    assert_eq!(code, 503);
    assert!(String::from_utf8_lossy(&body).contains("queues full"));
    let (code, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(code, 200, "a loaded server is healthy, just not ready");

    // Duplicates of an in-flight job still coalesce — shedding only
    // applies to *new* work.
    let (_, o) = submit_ok(addr, &config(0.05, 32));
    assert_eq!(o, "coalesced");

    // Cancelling the queued job makes room again.
    let (code, _) = client::post(addr, &format!("/jobs/{_b_hex}/cancel"), b"").unwrap();
    assert_eq!(code, 200);
    let (_, o) = submit_ok(addr, &config(0.16, 34));
    assert_eq!(o, "scheduled");
    server.shutdown();

    // A job whose predicted peak exceeds the whole budget is a permanent
    // 413 (no Retry-After: retrying is pointless).
    let rejected_before = metric_snapshot("adampack_server_rejected_oversize_total");
    let server = serve(&dir, |o| o.limits.memory_budget_bytes = 1);
    let addr = server.addr();
    let (code, head) = raw_request(addr, "POST", "/jobs", config(0.16, 35).as_bytes());
    assert_eq!(code, 413, "{head}");
    assert!(!head.contains("Retry-After:"), "413 must not advise retry");
    assert!(metric(addr, "adampack_server_rejected_oversize_total") > rejected_before);
    server.shutdown();
}

/// Reads a process-global counter without a live server (between server
/// instances in one test).
fn metric_snapshot(name: &str) -> u64 {
    adampack_telemetry::prometheus_snapshot()
        .lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn disk_full_degrades_to_shedding_and_recovers_without_losing_the_result() {
    let _g = guard();
    let dir = test_dir("enospc");
    let yaml = config(0.16, 41);
    let reference = direct_csv(&dir, &yaml, "direct");

    let server = serve(&dir, |_| {});
    let addr = server.addr();
    let full_before = metric(addr, "adampack_server_disk_full_total");

    // Every artifact write now fails with ENOSPC.
    failpoints::arm(FAILPOINT_WRITE_ENOSPC, 0, u64::MAX);
    let (hex, o) = submit_ok(addr, &yaml);
    assert_eq!(o, "scheduled");

    // The job finishes packing but cannot persist: the result is parked,
    // the disk-full latch trips readiness and sheds new submissions.
    let t0 = Instant::now();
    loop {
        let (code, body) = client::get(addr, "/readyz").unwrap();
        if code == 503 && String::from_utf8_lossy(&body).contains("disk full") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "readyz never went red on a full disk"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(metric(addr, "adampack_server_disk_full_total") > full_before);
    let (code, head) = raw_request(addr, "POST", "/jobs", config(0.16, 42).as_bytes());
    assert_eq!(code, 429, "{head}");
    assert!(head.contains("Retry-After:"));
    let (code, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(code, 200);

    // The disk "recovers": the parked artifact persists on the worker's
    // next retry — no recomputation, identical bytes.
    failpoints::reset();
    assert_eq!(
        client::wait_terminal(addr, &hex, Duration::from_secs(120)).unwrap(),
        "done"
    );
    assert_eq!(client::artifact(addr, &hex).unwrap(), reference);
    let t0 = Instant::now();
    loop {
        let (code, _) = client::get(addr, "/readyz").unwrap();
        if code == 200 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "readyz never recovered after the disk freed up"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn artifact_store_stays_under_its_byte_cap() {
    let _g = guard();
    let dir = test_dir("cap");

    // Size the cap from a real artifact: room for about two, never six.
    let sample = direct_csv(&dir, &config(0.16, 49), "sample");
    let cap = (sample.len() as u64) * 5 / 2;

    let server = serve(&dir, |o| o.limits.cache_cap_bytes = cap);
    let addr = server.addr();
    let evictions_before = metric(addr, "adampack_server_cache_evictions_total");

    // Complete enough distinct jobs that their artifacts cannot all fit.
    let mut hexes = Vec::new();
    for seed in 50..56 {
        let (hex, o) = submit_ok(addr, &config(0.16, seed));
        assert_eq!(o, "scheduled");
        assert_eq!(
            client::wait_terminal(addr, &hex, Duration::from_secs(120)).unwrap(),
            "done"
        );
        hexes.push(hex);
    }
    let artifacts = dir.join("data").join("artifacts");
    let total: u64 = std::fs::read_dir(&artifacts)
        .unwrap()
        .flatten()
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(
        total <= cap,
        "artifact store holds {total} bytes, cap is {cap}"
    );
    assert!(
        metric(addr, "adampack_server_cache_evictions_total") > evictions_before,
        "eviction never ran"
    );
    // The newest artifact survived the LRU sweep.
    let (code, _) =
        client::get(addr, &format!("/jobs/{}/artifact", hexes.last().unwrap())).unwrap();
    assert_eq!(code, 200);
    server.shutdown();
}

#[test]
fn drain_stops_admission_and_a_restart_resumes_with_identical_bytes() {
    let _g = guard();
    let dir = test_dir("drain");
    // A multi-second job: the drain provably interrupts it mid-flight.
    let yaml = config(0.05, 61);
    let reference = direct_csv(&dir, &yaml, "solo");

    let server = serve(&dir, |o| o.checkpoint_every = 5);
    let addr = server.addr();
    let (hex, o) = submit_ok(addr, &yaml);
    assert_eq!(o, "scheduled");
    wait_for(addr, &hex, "job mid-flight", |s| s.contains("\"running\""));

    // SIGTERM semantics: admission stops immediately, reads keep working
    // while the worker parks the job at its next batch boundary.
    server.begin_drain();
    let (code, head) = raw_request(addr, "POST", "/jobs", config(0.16, 62).as_bytes());
    assert_eq!(code, 503, "{head}");
    assert!(head.contains("Retry-After:"));
    let (code, body) = client::get(addr, "/readyz").unwrap();
    assert_eq!(code, 503);
    assert!(String::from_utf8_lossy(&body).contains("draining"));
    let (code, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(code, 200, "never restart a draining server");
    let (code, _) = client::get(addr, &format!("/jobs/{hex}")).unwrap();
    assert_eq!(code, 200, "status reads must survive the drain window");
    server.drain();

    // The drain left a resumable checkpoint behind.
    let ckpt = dir.join("data").join("jobs").join(format!("{hex}.ckpt"));
    assert!(
        !checkpoint_candidates(&ckpt, 3).is_empty(),
        "drain must persist the parked job's state"
    );

    // A fresh server on the same data dir resumes the resubmitted job
    // from the shutdown checkpoint and finishes byte-identical.
    let server = serve(&dir, |o| o.checkpoint_every = 5);
    let addr = server.addr();
    let resumed_before = metric(addr, "adampack_server_jobs_resumed_total");
    let (hex2, o2) = submit_ok(addr, &yaml);
    assert_eq!(hex2, hex);
    assert_eq!(o2, "scheduled");
    assert_eq!(
        client::wait_terminal(addr, &hex2, Duration::from_secs(300)).unwrap(),
        "done"
    );
    assert!(metric(addr, "adampack_server_jobs_resumed_total") > resumed_before);
    assert_eq!(
        client::artifact(addr, &hex2).unwrap(),
        reference,
        "drain/restart must be invisible in the artifact bytes"
    );
    server.shutdown();
}

#[test]
fn cancel_racing_a_preemption_lands_cancelled_with_no_checkpoint_debris() {
    let _g = guard();
    let dir = test_dir("cancelrace");

    // Tiny slice + two competing jobs on one worker: the long job cycles
    // through evict/requeue constantly, with disk checkpoints rotating.
    let server = serve(&dir, |o| {
        o.slice_ms = 10;
        o.checkpoint_every = 5;
    });
    let addr = server.addr();
    let (a_hex, _) = submit_ok(addr, &config(0.06, 71));
    let (b_hex, _) = submit_ok(addr, &config(0.06, 72));

    // Wait until A has actually been preempted at least once, so it owns
    // held state and a checkpoint rotation when the cancel lands.
    wait_for(addr, &a_hex, "job A preempted", |s| {
        !s.contains("\"preemptions\":0,")
    });
    let (code, _) = client::post(addr, &format!("/jobs/{a_hex}/cancel"), b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        client::wait_terminal(addr, &a_hex, Duration::from_secs(60)).unwrap(),
        "cancelled",
        "cancel must win the race with eviction, never re-queue the job"
    );
    let ckpt = dir.join("data").join("jobs").join(format!("{a_hex}.ckpt"));
    let t0 = Instant::now();
    while !checkpoint_candidates(&ckpt, 3).is_empty() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "cancelled job left checkpoint debris: {:?}",
            checkpoint_candidates(&ckpt, 3)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let (code, _) = client::get(addr, &format!("/jobs/{a_hex}/artifact")).unwrap();
    assert_eq!(code, 404);

    // The survivor is unaffected by its rival's cancellation.
    assert_eq!(
        client::wait_terminal(addr, &b_hex, Duration::from_secs(300)).unwrap(),
        "done"
    );
    server.shutdown();
}

#[test]
fn step_ceiling_expires_jobs_and_resubmission_resumes_to_identical_bytes() {
    let _g = guard();
    let dir = test_dir("expire");
    let yaml = config(0.14, 81);
    let reference = direct_csv(&dir, &yaml, "unbudgeted");

    // A one-step ceiling expires the job at every batch boundary: the
    // run can only advance one budget window per admission.
    let server = serve(&dir, |o| o.limits.job_step_ceiling = 1);
    let addr = server.addr();
    let expired_before = metric(addr, "adampack_server_jobs_expired_total");

    let (hex, o) = submit_ok(addr, &yaml);
    assert_eq!(o, "scheduled");
    let mut expiries = 0;
    let status = loop {
        let status = client::wait_terminal(addr, &hex, Duration::from_secs(120)).unwrap();
        if status != "expired" {
            break status;
        }
        expiries += 1;
        assert!(expiries < 100, "job never finishes under the step ceiling");
        // Expired is terminal but resumable: the status says so, and a
        // resubmission is admitted with a fresh budget.
        let (_, body) = client::get(addr, &format!("/jobs/{hex}")).unwrap();
        assert!(
            String::from_utf8_lossy(&body).contains("resubmit"),
            "expired status must tell the client how to resume"
        );
        let (hex2, o2) = submit_ok(addr, &yaml);
        assert_eq!(hex2, hex);
        assert_eq!(o2, "scheduled");
    };
    assert_eq!(status, "done");
    assert!(expiries >= 1, "the ceiling never fired");
    assert!(metric(addr, "adampack_server_jobs_expired_total") > expired_before);
    assert_eq!(
        client::artifact(addr, &hex).unwrap(),
        reference,
        "budget expiry must be invisible in the artifact bytes"
    );
    server.shutdown();
}

#[test]
fn wall_clock_deadline_expires_a_long_job() {
    let _g = guard();
    let dir = test_dir("deadline");

    let server = serve(&dir, |o| o.limits.job_deadline_s = 1);
    let addr = server.addr();
    // ~4000 particles: many seconds of work, far past the deadline. (The
    // test still runs in ~1s — expiry stops the job at the first batch
    // boundary past the deadline, not at completion.)
    let (hex, _) = submit_ok(addr, &config(0.035, 91));
    assert_eq!(
        client::wait_terminal(addr, &hex, Duration::from_secs(120)).unwrap(),
        "expired",
        "a multi-second job must expire under a 1s deadline"
    );
    // The deadline was enforced at a boundary with the state persisted.
    let ckpt = dir.join("data").join("jobs").join(format!("{hex}.ckpt"));
    assert!(!checkpoint_candidates(&ckpt, 3).is_empty());
    server.shutdown();
}
