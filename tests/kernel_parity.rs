//! Scalar-vs-SIMD kernel parity, property-tested: on randomized crowded
//! configurations the vectorized pair/plane kernels must reproduce the
//! scalar oracle's objective value, gradient and term breakdown **bitwise**
//! (the spec bound of ≤ 1 ULP is met at 0 ULP — SIMD lanes reject with
//! element-wise correctly-rounded ops and hit lanes run the exact scalar
//! arithmetic in candidate order), and the lane-fused Adam/AMSGrad update
//! must walk the identical trajectory.

use adampack_core::neighbor::{CsrGrid, NeighborStrategy, Workspace};
use adampack_core::objective::{Objective, ObjectiveWeights, MIXED_REL_BUDGET};
use adampack_core::{Container, Kernel};
use adampack_geometry::{shapes, Axis, Vec3};
use adampack_opt::{Adam, AdamConfig, Optimizer};
use proptest::prelude::*;

fn box_container() -> Container {
    Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap()
}

/// A deterministic fixed bed whose size is drawn by the property test, so
/// the cross-kernel's remainder lanes (bed size mod 4) vary across cases.
fn bed(n_fixed: usize) -> CsrGrid {
    let mut centers = Vec::with_capacity(n_fixed);
    let mut radii = Vec::with_capacity(n_fixed);
    for i in 0..n_fixed {
        let t = i as f64 * 0.754877666;
        centers.push(Vec3::new(
            (t % 1.6) - 0.8,
            ((t * 1.9) % 1.6) - 0.8,
            -0.85 + 0.1 * ((t * 3.7) % 1.0),
        ));
        radii.push(0.1 + 0.02 * ((i % 4) as f64));
    }
    CsrGrid::build(&centers, &radii)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Value + gradient + breakdown agree bitwise for every neighbor
    /// pipeline, on batches whose size sweeps the 4-lane remainder cases.
    #[test]
    fn scalar_and_simd_objectives_agree_bitwise(
        seed_offsets in prop::collection::vec(-0.9f64..0.9, 3),
        n in 1usize..40,
        n_fixed in 0usize..30,
        scale in 0.4f64..1.0,
    ) {
        let container = box_container();
        let fixed = bed(n_fixed);
        let radii: Vec<f64> = (0..n).map(|i| 0.07 + 0.015 * ((i % 5) as f64)).collect();
        let mut c = Vec::with_capacity(3 * n);
        for i in 0..n {
            let t = i as f64 * 0.61803398875;
            c.extend_from_slice(&[
                scale * ((t % 1.8) - 0.9) + 0.05 * seed_offsets[0],
                scale * (((t * 1.7) % 1.8) - 0.9) + 0.05 * seed_offsets[1],
                scale * (((t * 2.3) % 1.6) - 0.9) + 0.05 * seed_offsets[2],
            ]);
        }
        let w = ObjectiveWeights::default();
        for strategy in [
            NeighborStrategy::Naive,
            NeighborStrategy::Grid,
            NeighborStrategy::Verlet,
        ] {
            let mut out = Vec::new();
            for kernel in [Kernel::Scalar, Kernel::Simd] {
                let obj = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &fixed)
                    .with_neighbor(strategy, 0.04)
                    .with_kernel(kernel);
                let mut ws = Workspace::new();
                let mut grad = vec![0.0; 3 * n];
                let (v, b) = obj.value_grad_breakdown_ws(&c, &mut grad, &mut ws);
                out.push((v, grad, b));
            }
            let (vs, gs, bs) = &out[0];
            let (vv, gv, bv) = &out[1];
            prop_assert_eq!(vs.to_bits(), vv.to_bits(), "{:?}: value", strategy);
            for (k, (a, b)) in gs.iter().zip(gv).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}: grad[{}]", strategy, k);
            }
            prop_assert_eq!(
                bs.penetration_intra.to_bits(),
                bv.penetration_intra.to_bits(),
                "{:?}: intra", strategy
            );
            prop_assert_eq!(
                bs.penetration_cross.to_bits(),
                bv.penetration_cross.to_bits(),
                "{:?}: cross", strategy
            );
            prop_assert_eq!(bs.exterior.to_bits(), bv.exterior.to_bits(), "{:?}: exterior", strategy);
            prop_assert_eq!(bs.altitude.to_bits(), bv.altitude.to_bits(), "{:?}: altitude", strategy);
        }
    }

    /// The mixed-precision kernel ([`Kernel::SimdMixed`]) keeps its
    /// documented accuracy budget against the scalar oracle on randomized
    /// crowded configurations: value within `MIXED_REL_BUDGET` relative,
    /// every gradient component within the 10× factor (α-scaled direction
    /// sums do not cancel the f32 quantization noise), on every neighbor
    /// pipeline — and replays bitwise against itself.
    #[test]
    fn mixed_kernel_budget_parity(
        seed_offsets in prop::collection::vec(-0.9f64..0.9, 3),
        n in 1usize..40,
        n_fixed in 0usize..30,
        scale in 0.4f64..1.0,
    ) {
        let container = box_container();
        let fixed = bed(n_fixed);
        let radii: Vec<f64> = (0..n).map(|i| 0.07 + 0.015 * ((i % 5) as f64)).collect();
        let mut c = Vec::with_capacity(3 * n);
        for i in 0..n {
            let t = i as f64 * 0.61803398875;
            c.extend_from_slice(&[
                scale * ((t % 1.8) - 0.9) + 0.05 * seed_offsets[0],
                scale * (((t * 1.7) % 1.8) - 0.9) + 0.05 * seed_offsets[1],
                scale * (((t * 2.3) % 1.6) - 0.9) + 0.05 * seed_offsets[2],
            ]);
        }
        let w = ObjectiveWeights::default();
        let tol = |x: f64| MIXED_REL_BUDGET * x.abs().max(1.0);
        for strategy in [
            NeighborStrategy::Naive,
            NeighborStrategy::Grid,
            NeighborStrategy::Verlet,
        ] {
            let scalar = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &fixed)
                .with_neighbor(strategy, 0.04)
                .with_kernel(Kernel::Scalar);
            let mixed = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &fixed)
                .with_neighbor(strategy, 0.04)
                .with_kernel(Kernel::SimdMixed);
            let (mut ws_s, mut ws_m) = (Workspace::new(), Workspace::new());
            let mut gs = vec![0.0; 3 * n];
            let mut gm = vec![0.0; 3 * n];
            let vs = scalar.value_and_grad_ws(&c, &mut gs, &mut ws_s);
            let vm = mixed.value_and_grad_ws(&c, &mut gm, &mut ws_m);
            prop_assert!(
                (vs - vm).abs() <= tol(vs),
                "{:?}: value {} vs {} (budget {})", strategy, vs, vm, tol(vs)
            );
            for (k, (a, b)) in gs.iter().zip(&gm).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 10.0 * tol(*a),
                    "{:?}: grad[{}] {} vs {}", strategy, k, a, b
                );
            }
            let mut gm2 = vec![0.0; 3 * n];
            let vm2 = mixed.value_and_grad_ws(&c, &mut gm2, &mut ws_m);
            prop_assert_eq!(vm.to_bits(), vm2.to_bits(), "{:?}: replay value", strategy);
            for (a, b) in gm.iter().zip(&gm2) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}: replay grad", strategy);
            }
        }
    }

    /// The lane-fused Adam/AMSGrad update matches the scalar update bitwise
    /// over a multi-step trajectory (including the bias-correction warm-up
    /// and the AMSGrad running maximum).
    #[test]
    fn scalar_and_simd_adam_agree_bitwise(
        init in prop::collection::vec(-1.0f64..1.0, 1..64),
        grads in prop::collection::vec(-2.0f64..2.0, 64),
        amsgrad_bit in 0usize..2,
        steps in 1usize..12,
    ) {
        let amsgrad = amsgrad_bit == 1;
        let n = init.len();
        let mut trajectories = Vec::new();
        for kernel in [Kernel::Scalar, Kernel::Simd] {
            let mut p = init.clone();
            let mut opt = Adam::new(
                AdamConfig {
                    lr: 1e-2,
                    amsgrad,
                    kernel,
                    ..AdamConfig::default()
                },
                n,
            );
            for s in 0..steps {
                // Deterministic pseudo-gradients varying per step.
                let g: Vec<f64> = (0..n).map(|i| grads[(i + s) % grads.len()]).collect();
                opt.step(&mut p, &g);
            }
            trajectories.push(p);
        }
        for (k, (a, b)) in trajectories[0].iter().zip(&trajectories[1]).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "param[{}]", k);
        }
    }
}

/// Padding lanes (batch size not a multiple of 4) must contribute nothing:
/// append a particle, compare against the value with it removed.
#[test]
fn padding_never_leaks_into_results() {
    let container = box_container();
    let fixed = bed(17);
    let w = ObjectiveWeights::default();
    for n in 1..=9usize {
        let radii: Vec<f64> = (0..n).map(|i| 0.1 + 0.01 * (i as f64)).collect();
        let mut c = Vec::with_capacity(3 * n);
        for i in 0..n {
            let t = i as f64 * 0.61803398875;
            c.extend_from_slice(&[
                (t % 1.6) - 0.8,
                ((t * 1.7) % 1.6) - 0.8,
                ((t * 2.3) % 1.4) - 0.8,
            ]);
        }
        let mut gs = vec![0.0; 3 * n];
        let mut gv = vec![0.0; 3 * n];
        let vs = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &fixed)
            .with_kernel(Kernel::Scalar)
            .value_and_grad(&c, &mut gs);
        let vv = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &fixed)
            .with_kernel(Kernel::Simd)
            .value_and_grad(&c, &mut gv);
        assert_eq!(vs.to_bits(), vv.to_bits(), "n = {n}");
        for (a, b) in gs.iter().zip(&gv) {
            assert_eq!(a.to_bits(), b.to_bits(), "n = {n}");
        }
    }
}
