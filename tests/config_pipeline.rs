//! The application pipeline of §VI-A: YAML configuration → STL containers →
//! zoned packing, end to end, exactly as the paper's Fig. 9/10 example.

use adampack_config::{ConfigError, PackingConfig};
use adampack_core::prelude::*;
use adampack_geometry::{shapes, ConvexHull, Vec3};
use adampack_io::{read_stl_file, write_stl_ascii};

fn write_assets(dir: &std::path::Path) {
    std::fs::create_dir_all(dir).unwrap();
    let cone = shapes::cone(1.2, 2.2, 32, false);
    let sphere = shapes::uv_sphere(Vec3::new(0.0, 0.0, 0.55), 0.45, 16, 8);
    for (name, mesh) in [("cone.stl", &cone), ("sphere.stl", &sphere)] {
        let f = std::fs::File::create(dir.join(name)).unwrap();
        write_stl_ascii(std::io::BufWriter::new(f), mesh, name).unwrap();
    }
}

const CONFIG: &str = r#"
container:
    path: "cone.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 500
    patience: 50
    batch_size: 40
    seed: 11
gravity_axis: z
particle_sets:
    - radius_distribution: "uniform"
      radius_min: 0.05
      radius_max: 0.08
    - radius_distribution: "normal"
      radius_mean: 0.04
      radius_std_dev: 0.005
zones:
    - n_particles: 40
      location:
          shape:
              path: "sphere.stl"
      set_proportions: [0.0, 1.0,]
    - n_particles: 50
      location:
          slice:
              axis: 2
              min_bound: 0.8
              max_bound: 1.5
      set_proportions: [1.0, 0.0]
"#;

fn load_zone_hull(p: &std::path::Path) -> Result<ConvexHull, ConfigError> {
    let mesh = read_stl_file(p).map_err(|e| ConfigError::Field(e.to_string()))?;
    ConvexHull::from_mesh(&mesh).map_err(|e| ConfigError::Field(e.to_string()))
}

#[test]
fn yaml_to_zoned_packing_end_to_end() {
    let dir = std::env::temp_dir().join("adampack_config_pipeline");
    write_assets(&dir);
    let config_path = dir.join("pack.yaml");
    std::fs::write(&config_path, CONFIG).unwrap();

    // Load the config from disk: paths resolve against its directory.
    let cfg = PackingConfig::from_file(&config_path).unwrap();
    let container_mesh = read_stl_file(&cfg.container_path).unwrap();
    let container = Container::from_mesh(&container_mesh).unwrap();
    let zones = cfg.zone_specs(load_zone_hull).unwrap();
    assert_eq!(zones.len(), 2);

    let packer = ZonedPacker::new(container.clone(), cfg.to_packing_params(), cfg.psds());
    let result = packer.pack(&zones);
    assert!(
        result.particles.len() >= 50,
        "packed only {}",
        result.particles.len()
    );

    // All particles inside the cone.
    for p in &result.particles {
        let excess = container.halfspaces().sphere_max_excess(p.center, p.radius);
        assert!(excess <= 0.05 * p.radius + 1e-9, "escaped by {excess}");
    }

    // The two particle sets are distinguishable by radius: uniform ∈
    // [0.05, 0.08], normal ≤ 0.055. The slice zone (z ∈ [0.8, 1.5]) must be
    // dominated by uniform radii, the sphere zone (centre z 0.55) by normal.
    let in_slice: Vec<&Particle> = result
        .particles
        .iter()
        .filter(|p| p.center.z >= 0.75 && p.center.z <= 1.55)
        .collect();
    let uniform_in_slice = in_slice.iter().filter(|p| p.radius >= 0.05).count();
    assert!(
        uniform_in_slice * 2 >= in_slice.len(),
        "slice zone should mostly hold uniform-set particles"
    );
}

#[test]
fn config_algorithm_key_selects_runner() {
    let dir = std::env::temp_dir().join("adampack_config_runner");
    write_assets(&dir);
    // Minimal single-set config with an RSA algorithm key.
    let yaml = r#"
container:
    path: "cone.stl"
algorithm: "RSA"
particle_sets:
    - radius_distribution: "constant"
      radius_value: 0.08
"#;
    let config_path = dir.join("rsa.yaml");
    std::fs::write(&config_path, yaml).unwrap();
    let cfg = PackingConfig::from_file(&config_path).unwrap();
    let algo = registry(&cfg.algorithm).expect("RSA registered");
    let container = Container::from_mesh(&read_stl_file(&cfg.container_path).unwrap()).unwrap();
    let result = algo.pack(&container, &cfg.psds()[0], 60, &cfg.to_packing_params());
    assert!(!result.particles.is_empty());
    for p in &result.particles {
        assert!(container.contains_sphere(p.center, p.radius, 1e-9));
    }
}

#[test]
fn missing_stl_surfaces_as_error() {
    let cfg = PackingConfig::from_str(CONFIG).unwrap();
    // Without resolve_paths the relative files do not exist here.
    let err = cfg.zone_specs(load_zone_hull).unwrap_err();
    assert!(err.to_string().contains("sphere.stl") || !err.to_string().is_empty());
}
