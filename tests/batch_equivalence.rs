//! The batched engine's core contract (DESIGN.md §11): a system packed as
//! one lane of a batched multi-system run finishes **bitwise identical** to
//! the same system packed alone by [`CollectivePacker::try_pack`].
//!
//! The equality is structural, not approximate: the batched engine drives
//! each system through the identical `advance_batch` sequence with its own
//! RNG, optimizer, scheduler and workspace state, so positions, radii,
//! per-batch fitness and acceptance decisions all match to the bit. The
//! matrix proven here:
//!
//! * S ∈ {1, 2, 3} systems with **ragged** per-system targets (different
//!   N per lane exercises the arena's inf-padding),
//! * scalar × SIMD kernels — each batched lane matches its same-kernel
//!   single run,
//! * 1- and 4-thread pools — the engine parallelizes across systems, the
//!   single runs across particles; both are thread-count invariant,
//! * a property test randomizing seeds, targets and PSDs per system.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use proptest::prelude::*;

/// See tests/determinism.rs: raise the pool-width cap before the first
/// parallel region resolves it, so 1-core CI still exercises parallelism.
fn force_parallel_hardware() {
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "8");
    }
}

fn box_container() -> Container {
    Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap()
}

fn quick_params(seed: u64, target: usize, kernel: Kernel) -> PackingParams {
    PackingParams {
        batch_size: target,
        target_count: target,
        max_steps: 200,
        patience: 40,
        seed,
        kernel,
        ..PackingParams::default()
    }
}

/// S=3 sweep with ragged targets (14/9/17) and mixed PSDs.
fn ragged_specs(kernel: Kernel) -> Vec<SystemSpec> {
    vec![
        SystemSpec {
            label: "a".into(),
            params: quick_params(11, 14, kernel),
            psd: Psd::constant(0.15),
        },
        SystemSpec {
            label: "b".into(),
            params: quick_params(22, 9, kernel),
            psd: Psd::uniform(0.11, 0.16),
        },
        SystemSpec {
            label: "c".into(),
            params: quick_params(33, 17, kernel),
            psd: Psd::constant(0.13),
        },
    ]
}

fn assert_bitwise_equal(got: &PackResult, want: &PackResult, what: &str) {
    assert_eq!(got.particles.len(), want.particles.len(), "{what}: count");
    for (g, w) in got.particles.iter().zip(&want.particles) {
        assert_eq!(g.center.x.to_bits(), w.center.x.to_bits(), "{what}: x");
        assert_eq!(g.center.y.to_bits(), w.center.y.to_bits(), "{what}: y");
        assert_eq!(g.center.z.to_bits(), w.center.z.to_bits(), "{what}: z");
        assert_eq!(g.radius.to_bits(), w.radius.to_bits(), "{what}: radius");
    }
    assert_eq!(got.batches.len(), want.batches.len(), "{what}: batches");
    for (g, w) in got.batches.iter().zip(&want.batches) {
        assert_eq!(g.steps, w.steps, "{what}: steps");
        assert_eq!(g.accepted, w.accepted, "{what}: acceptance");
        assert_eq!(
            g.best_fitness.to_bits(),
            w.best_fitness.to_bits(),
            "{what}: fitness"
        );
    }
}

/// Packs each spec alone, then as one batched run, and compares per-system.
fn check_batched_matches_singles(specs: Vec<SystemSpec>, what: &str) {
    let container = box_container();
    let singles: Vec<PackResult> = specs
        .iter()
        .map(|spec| {
            CollectivePacker::new(container.clone(), spec.params.clone())
                .try_pack(&spec.psd)
                .unwrap_or_else(|e| panic!("{what}: single run '{}': {e}", spec.label))
        })
        .collect();
    let labels: Vec<String> = specs.iter().map(|s| s.label.clone()).collect();
    let reports = BatchedPacker::new(&container, specs).run();
    assert_eq!(reports.len(), singles.len(), "{what}: report count");
    for ((label, single), report) in labels.iter().zip(&singles).zip(&reports) {
        assert_eq!(&report.label, label, "{what}: label order");
        let batched = report
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{what}: batched system '{label}': {e}"));
        assert_bitwise_equal(batched, single, &format!("{what}, system '{label}'"));
    }
}

#[test]
fn batched_matches_singles_across_kernels_threads_and_widths() {
    force_parallel_hardware();
    for kernel in [Kernel::Simd, Kernel::Scalar] {
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                // Ragged S=3, plus its S=1 and S=2 prefixes: every width
                // must reproduce the same per-system bits.
                let full = ragged_specs(kernel);
                for s in 1..=full.len() {
                    check_batched_matches_singles(
                        full[..s].to_vec(),
                        &format!("{kernel} kernel, {threads} threads, S={s}"),
                    );
                }
            });
        }
    }
}

#[test]
fn batched_lane_is_independent_of_its_siblings() {
    force_parallel_hardware();
    // System "b" packed inside two different sweeps (S=3 ragged, and alone)
    // must produce identical bits: lanes share nothing but the pass loop.
    let container = box_container();
    let specs = ragged_specs(Kernel::default());
    let alone = BatchedPacker::new(&container, vec![specs[1].clone()]).run();
    let together = BatchedPacker::new(&container, specs).run();
    let a = alone[0].result.as_ref().unwrap();
    let b = together[1].result.as_ref().unwrap();
    assert_bitwise_equal(b, a, "system 'b' alone vs inside S=3");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized sweeps: any S ∈ {1,2,3} with per-system random seeds,
    /// ragged targets and PSD widths still reproduces each single run
    /// bitwise. Budgets are small (N ≤ 10, one batch per system) so the
    /// property stays cheap enough for CI.
    #[test]
    fn random_ragged_sweeps_match_their_single_runs(
        systems in proptest::collection::vec(
            (0u64..1000, 4usize..=10, 0.11f64..0.14), 1..=3,
        ),
    ) {
        force_parallel_hardware();
        let specs: Vec<SystemSpec> = systems
            .iter()
            .enumerate()
            .map(|(i, &(seed, target, r))| SystemSpec {
                label: format!("p{i}"),
                params: quick_params(seed, target, Kernel::default()),
                psd: Psd::uniform(r, r + 0.03),
            })
            .collect();
        check_batched_matches_singles(specs, "proptest sweep");
    }
}
