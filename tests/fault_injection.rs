//! Fault injection: every recovery path in the fault-tolerance layer,
//! exercised end-to-end with the `failpoints` facility compiled in
//! (`features = ["enabled"]` — the sites are inert no-ops in production
//! builds).
//!
//! The matrix proven here:
//!
//! * **Kill + resume** — a run interrupted at an arbitrary checkpoint and
//!   resumed from the encoded bytes finishes bitwise identical to the
//!   uninterrupted run, across scalar/SIMD kernels and 1/4-thread pools,
//!   including the step trace tail.
//! * **Torn / corrupt checkpoints** — truncated and bit-flipped files are
//!   rejected by the CRC/footer checks, and the rotated `keep_last`
//!   history still yields the newest *valid* state.
//! * **Objective NaN** — the divergence sentinel rolls back, cuts the
//!   learning rate, and the run completes with finite fitness; an
//!   unrecoverable stream of NaNs exhausts the budget into a typed
//!   [`PackError::Diverged`].
//! * **Checkpoint write failure** — a failing sink is counted and skipped,
//!   never aborts the run, and later cadence points still persist.
//! * **Output write failures** — STL/CSV/VTK writers surface the injected
//!   error instead of a partial file.
//! * **Grid rebuild panic** — the JSONL trace file stays parseable
//!   line-by-line thanks to the sink's drop-flush guard.
//!
//! The failpoint registry is process-global, so every test here serializes
//! on one mutex (poison-tolerant: the panic test poisons it by design).

use std::fs;
use std::io::BufWriter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use adampack_core::checkpoint::{self, BatchedRunState, RunState};
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use adampack_io::{
    checkpoint_candidates, write_particles_csv, write_particles_vtk, write_stl_ascii,
    RotatingCheckpointWriter,
};
use adampack_telemetry::{JsonlWriter, StepRecord, TraceSink};

/// Serializes tests around the process-global failpoint registry. Also
/// clears any armed site so a poisoned predecessor can't leak faults.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn failpoint_guard() -> MutexGuard<'static, ()> {
    let guard = FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoints::reset();
    guard
}

/// See tests/determinism.rs: raise the pool-width cap before the first
/// parallel region resolves it, so 1-core CI still exercises parallelism.
fn force_parallel_hardware() {
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "8");
    }
}

fn packer(seed: u64, kernel: Kernel) -> CollectivePacker {
    force_parallel_hardware();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 40,
        target_count: 80,
        max_steps: 500,
        patience: 50,
        seed,
        kernel,
        ..PackingParams::default()
    };
    CollectivePacker::new(container, params)
}

fn psd() -> Psd {
    Psd::uniform(0.09, 0.13)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adampack_fault_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Checkpoint sink capturing every encoded state in memory — the
/// "filesystem" of the kill-and-resume tests, with the encode/decode codec
/// on the path so resume exercises the real wire format.
struct MemorySink(Arc<Mutex<Vec<Vec<u8>>>>);

impl CheckpointSink for MemorySink {
    fn save(&mut self, state: &RunState) -> Result<(), String> {
        self.0.lock().unwrap().push(checkpoint::encode(state));
        Ok(())
    }
}

/// Checkpoint sink persisting through the rotating atomic writer — the
/// CLI's on-disk path, reused here to prove write-failure tolerance.
struct FileSink(RotatingCheckpointWriter);

impl CheckpointSink for FileSink {
    fn save(&mut self, state: &RunState) -> Result<(), String> {
        self.0
            .save(&checkpoint::encode(state))
            .map_err(|e| e.to_string())
    }
}

/// Multi-system counterpart of [`MemorySink`]: captures every encoded
/// batched state so the kill-and-resume test replays the real wire format.
#[derive(Clone, Default)]
struct BatchedMemorySink(Arc<Mutex<Vec<Vec<u8>>>>);

impl BatchedCheckpointSink for BatchedMemorySink {
    fn save(&mut self, state: &BatchedRunState) -> Result<(), String> {
        self.0
            .lock()
            .unwrap()
            .push(checkpoint::encode_batched(state));
        Ok(())
    }
}

/// Trace sink sharing its buffer, surviving `take_trace_sink`.
struct SharedTrace(Arc<Mutex<Vec<StepRecord>>>);

impl TraceSink for SharedTrace {
    fn record(&mut self, record: &StepRecord) {
        self.0.lock().unwrap().push(*record);
    }
}

fn assert_same_packing(a: &PackResult, b: &PackResult, what: &str) {
    assert_eq!(a.particles.len(), b.particles.len(), "{what}: count");
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        assert_eq!(pa.center.x.to_bits(), pb.center.x.to_bits(), "{what}: x");
        assert_eq!(pa.center.y.to_bits(), pb.center.y.to_bits(), "{what}: y");
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits(), "{what}: z");
        assert_eq!(pa.radius.to_bits(), pb.radius.to_bits(), "{what}: radius");
    }
    assert_eq!(a.batches.len(), b.batches.len(), "{what}: batch count");
    for (ba, bb) in a.batches.iter().zip(&b.batches) {
        assert_eq!(ba.steps, bb.steps, "{what}: steps");
        assert_eq!(
            ba.best_fitness.to_bits(),
            bb.best_fitness.to_bits(),
            "{what}: fitness"
        );
        assert_eq!(ba.accepted, bb.accepted, "{what}: acceptance");
    }
}

/// Runs the reference scenario with a checkpoint cadence and a tracer,
/// returning the result, the encoded checkpoints, and the step trace.
fn straight_run(
    seed: u64,
    kernel: Kernel,
    every_steps: usize,
) -> (PackResult, Vec<Vec<u8>>, Vec<StepRecord>) {
    let blobs = Arc::new(Mutex::new(Vec::new()));
    let trace = Arc::new(Mutex::new(Vec::new()));
    let mut p = packer(seed, kernel);
    p.set_checkpoint_sink(Box::new(MemorySink(Arc::clone(&blobs))), every_steps);
    p.set_trace_sink(Box::new(SharedTrace(Arc::clone(&trace))));
    let result = p.try_pack(&psd()).expect("straight run packs");
    drop(p.take_trace_sink());
    drop(p);
    let blobs = Arc::try_unwrap(blobs).ok().unwrap().into_inner().unwrap();
    let trace = Arc::try_unwrap(trace).ok().unwrap().into_inner().unwrap();
    (result, blobs, trace)
}

/// Decodes one captured checkpoint and finishes the run from it, as if the
/// process had been killed right after that write.
fn resume_run(
    seed: u64,
    kernel: Kernel,
    every_steps: usize,
    blob: &[u8],
) -> (PackResult, Vec<StepRecord>) {
    let state = checkpoint::decode(blob).expect("captured checkpoint decodes");
    let trace = Arc::new(Mutex::new(Vec::new()));
    let mut p = packer(seed, kernel);
    p.set_checkpoint_sink(
        Box::new(MemorySink(Arc::new(Mutex::new(Vec::new())))),
        every_steps,
    );
    p.set_trace_sink(Box::new(SharedTrace(Arc::clone(&trace))));
    let result = p.resume(&psd(), state).expect("resume packs");
    drop(p.take_trace_sink());
    drop(p);
    let trace = Arc::try_unwrap(trace).ok().unwrap().into_inner().unwrap();
    (result, trace)
}

/// The step-trace suffix a resume from `blob` must reproduce bitwise.
fn trace_tail<'a>(full: &'a [StepRecord], blob: &[u8]) -> Vec<&'a StepRecord> {
    let state = checkpoint::decode(blob).unwrap();
    let cut_batch = state.batch_index;
    let cut_step = state.batch.as_ref().map(|b| b.next_step).unwrap_or(0);
    full.iter()
        .filter(|r| r.batch > cut_batch || (r.batch == cut_batch && r.step >= cut_step))
        .collect()
}

fn assert_same_trace(expected: &[&StepRecord], got: &[StepRecord], what: &str) {
    assert_eq!(expected.len(), got.len(), "{what}: trace length");
    for (ra, rb) in expected.iter().zip(got) {
        assert_eq!(ra.batch, rb.batch, "{what}: batch");
        assert_eq!(ra.step, rb.step, "{what}: step");
        assert_eq!(ra.loss.to_bits(), rb.loss.to_bits(), "{what}: loss");
        assert_eq!(
            ra.grad_norm.to_bits(),
            rb.grad_norm.to_bits(),
            "{what}: grad norm"
        );
        assert_eq!(ra.lr.to_bits(), rb.lr.to_bits(), "{what}: lr");
        assert_eq!(
            ra.max_disp.to_bits(),
            rb.max_disp.to_bits(),
            "{what}: max displacement"
        );
        assert_eq!(
            ra.verlet_rebuilds, rb.verlet_rebuilds,
            "{what}: verlet rebuilds"
        );
    }
}

#[test]
fn kill_and_resume_is_bitwise_identical_across_kernels_and_threads() {
    let _guard = failpoint_guard();
    for kernel in [Kernel::Simd, Kernel::Scalar] {
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let what = format!("{kernel} kernel, {threads} threads");
                let (straight, blobs, trace) = straight_run(9, kernel, 30);
                assert!(
                    blobs.len() >= 2,
                    "{what}: need several cadence points, got {}",
                    blobs.len()
                );
                let mid = &blobs[blobs.len() / 2];
                let (resumed, resumed_trace) = resume_run(9, kernel, 30, mid);
                assert_same_packing(&straight, &resumed, &what);
                assert_same_trace(&trace_tail(&trace, mid), &resumed_trace, &what);
            });
        }
    }
}

/// A ragged three-system sweep for the batched kill-and-resume scenario.
fn batched_specs() -> Vec<SystemSpec> {
    let sys = |label: &str, seed: u64, target: usize, psd: Psd| SystemSpec {
        label: label.into(),
        params: PackingParams {
            batch_size: 6,
            target_count: target,
            max_steps: 300,
            patience: 40,
            seed,
            ..PackingParams::default()
        },
        psd,
    };
    vec![
        sys("a", 13, 14, Psd::constant(0.15)),
        sys("b", 29, 9, Psd::uniform(0.11, 0.16)),
        sys("c", 37, 17, Psd::constant(0.13)),
    ]
}

#[test]
fn batched_kill_and_resume_is_bitwise_identical() {
    let _guard = failpoint_guard();
    force_parallel_hardware();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();

    // Uninterrupted batched run with a checkpoint cadence.
    let sink = BatchedMemorySink::default();
    let mut straight = BatchedPacker::new(&container, batched_specs());
    straight.set_checkpoint_sink(Box::new(sink.clone()), 20);
    let want = straight.run();
    let blobs = sink.0.lock().unwrap().clone();
    assert!(
        blobs.len() >= 2,
        "need several cadence points, got {}",
        blobs.len()
    );

    // Kill at the middle checkpoint: decode the bytes and finish the sweep
    // from them, as if the process died right after that write.
    let mid = &blobs[blobs.len() / 2];
    let state = checkpoint::decode_batched(mid).expect("captured batched checkpoint decodes");
    let mut resumed = BatchedPacker::new(&container, batched_specs());
    resumed.set_checkpoint_sink(Box::new(BatchedMemorySink::default()), 20);
    resumed.resume(state).expect("mid-run state resumes");
    let got = resumed.run();

    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.label, g.label, "system order preserved");
        let what = format!("batched resume, system '{}'", w.label);
        assert_same_packing(
            w.result.as_ref().unwrap(),
            g.result.as_ref().unwrap(),
            &what,
        );
    }

    // A torn batched checkpoint is rejected, never half-resumed.
    assert!(checkpoint::decode_batched(&mid[..mid.len() - 5]).is_err());
}

#[test]
fn every_sampled_checkpoint_is_a_valid_resume_point() {
    let _guard = failpoint_guard();
    let (straight, blobs, trace) = straight_run(21, Kernel::default(), 45);
    assert!(blobs.len() >= 2, "need several cadence points");
    // First, middle and last cadence points (the full set is O(steps/45)
    // runs; the boundary + interior sample covers batch starts, mid-batch
    // and the tail without quadratic test time).
    for idx in [0, blobs.len() / 2, blobs.len() - 1] {
        let what = format!("resume from checkpoint {idx}/{}", blobs.len());
        let (resumed, resumed_trace) = resume_run(21, Kernel::default(), 45, &blobs[idx]);
        assert_same_packing(&straight, &resumed, &what);
        assert_same_trace(&trace_tail(&trace, &blobs[idx]), &resumed_trace, &what);
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_rotated_history() {
    let _guard = failpoint_guard();
    let (_, blobs, _) = straight_run(33, Kernel::default(), 30);
    assert!(blobs.len() >= 2);
    let older = &blobs[blobs.len() - 2];
    let newest = &blobs[blobs.len() - 1];

    let path = temp_path("fallback.ckpt");
    let mut writer = RotatingCheckpointWriter::new(&path, 3);
    writer.save(older).unwrap();
    writer.save(newest).unwrap();

    // Tear the newest file mid-section and verify the recovery scan (the
    // CLI's resume loop) lands on the rotated predecessor.
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let candidates = checkpoint_candidates(&path, 3);
    assert_eq!(candidates.len(), 2, "current + one rotated file");
    let recovered = candidates
        .iter()
        .find_map(|c| checkpoint::decode(&fs::read(c).ok()?).ok())
        .expect("rotated history must yield a valid state");
    let want = checkpoint::decode(older).unwrap();
    assert_eq!(recovered.global_step, want.global_step);
    assert_eq!(recovered.rng, want.rng);
    assert_eq!(recovered.particles.len(), want.particles.len());

    // And the torn file itself is firmly rejected.
    assert!(checkpoint::decode(&fs::read(&path).unwrap()).is_err());
}

#[test]
fn bit_flipped_checkpoint_is_rejected_not_resumed() {
    let _guard = failpoint_guard();
    let (_, blobs, _) = straight_run(4, Kernel::default(), 60);
    let good = &blobs[0];
    // Flip one payload bit well inside the particle section: the section
    // CRC must catch it (resuming from silently corrupt coordinates would
    // destroy the bitwise-reproducibility contract).
    let mut bad = good.clone();
    let at = bad.len() / 2;
    bad[at] ^= 0x10;
    assert!(
        checkpoint::decode(&bad).is_err(),
        "flipped byte at {at} of {} must fail the CRC",
        bad.len()
    );
    // Truncation at any point is also rejected (the END footer catches
    // even cuts on section boundaries).
    for cut in [1, bad.len() / 3, good.len() - 1] {
        assert!(checkpoint::decode(&good[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn injected_objective_nan_is_recovered_by_the_sentinel() {
    let _guard = failpoint_guard();
    // One NaN objective evaluation mid-run: the sentinel must roll back to
    // its last good snapshot, cut the learning rate, and finish finite.
    failpoints::arm("core.objective.eval", 40, 1);
    let mut p = packer(5, Kernel::default());
    let result = p.try_pack(&psd()).expect("one NaN must not kill the run");
    assert_eq!(failpoints::hits("core.objective.eval"), 1, "site fired");
    assert!(p.recoveries() >= 1, "sentinel must count the rollback");
    assert_eq!(
        result.recoveries,
        p.recoveries(),
        "result carries the count"
    );
    for b in &result.batches {
        assert!(b.best_fitness.is_finite(), "post-recovery fitness finite");
    }
    failpoints::reset();
}

#[test]
fn unrecoverable_nan_stream_exhausts_the_budget_into_a_typed_error() {
    let _guard = failpoint_guard();
    // Every evaluation after the tenth returns NaN: rollbacks can't help,
    // so the run must stop with the typed divergence error instead of
    // looping forever or packing garbage.
    failpoints::arm("core.objective.eval", 10, u64::MAX);
    let mut p = packer(5, Kernel::default());
    let err = p.try_pack(&psd()).expect_err("divergence budget must trip");
    failpoints::reset();
    match err {
        PackError::Diverged {
            batch, recoveries, ..
        } => {
            assert_eq!(batch, 0, "first batch never stabilizes");
            assert!(recoveries >= 1, "budget spent before giving up");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn checkpoint_write_failure_is_counted_and_does_not_abort_the_run() {
    let _guard = failpoint_guard();
    let path = temp_path("tolerated.ckpt");
    let _ = fs::remove_file(&path);
    // First cadence write fails (injected before the atomic rename, so no
    // file appears); the run continues and later cadence points persist.
    failpoints::arm("io.checkpoint.write", 0, 1);
    let mut p = packer(11, Kernel::default());
    p.set_checkpoint_sink(
        Box::new(FileSink(RotatingCheckpointWriter::new(&path, 2))),
        25,
    );
    let result = p.try_pack(&psd()).expect("failing sink must not abort");
    assert_eq!(failpoints::hits("io.checkpoint.write"), 1);
    failpoints::reset();
    assert!(result.reached_target(), "run completes normally");
    let bytes = fs::read(&path).expect("later cadence points still write");
    let state = checkpoint::decode(&bytes).expect("surviving file is valid");
    assert_eq!(state.seed, 11);
    // No stray temp file left behind by the failed attempt.
    assert!(!path.with_extension("ckpt.tmp").exists());
}

#[test]
fn dir_fsync_failure_is_typed_and_leaves_a_valid_fallback_chain() {
    let _guard = failpoint_guard();
    let path = temp_path("durable.ckpt");
    for p in checkpoint_candidates(&path, 8) {
        let _ = fs::remove_file(p);
    }
    let mut w = RotatingCheckpointWriter::new(&path, 3);
    w.save(b"gen0").unwrap();
    w.save(b"gen1").unwrap();
    // Arm the durability barrier: the next save's rename lands, but the
    // parent-directory fsync that would persist it fails — the power-loss
    // window write_atomic exists to close.
    failpoints::arm("io.checkpoint.dir_sync", 0, 1);
    let err = w.save(b"gen2").expect_err("fsync dir failure must surface");
    assert_eq!(failpoints::hits("io.checkpoint.dir_sync"), 1);
    failpoints::reset();
    assert!(
        matches!(
            err,
            adampack_io::Error::Io {
                op: "fsync dir",
                ..
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("io.checkpoint.dir_sync"), "{err}");
    // The rename itself happened — the running process sees the new bytes
    // (only their durability is unproven) — and the rotated history is a
    // valid fallback chain, so a resume can still find gen1/gen0.
    assert_eq!(fs::read(&path).unwrap(), b"gen2");
    let candidates = checkpoint_candidates(&path, 3);
    assert_eq!(candidates.len(), 3, "{candidates:?}");
    assert_eq!(fs::read(&candidates[1]).unwrap(), b"gen1");
    assert_eq!(fs::read(&candidates[2]).unwrap(), b"gen0");
    // No stray temp file, and the next save is clean end-to-end.
    assert!(!path.with_extension("ckpt.tmp").exists());
    w.save(b"gen3").unwrap();
    assert_eq!(fs::read(&path).unwrap(), b"gen3");
}

#[test]
fn output_write_failpoints_surface_errors_instead_of_partial_files() {
    let _guard = failpoint_guard();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(1.0));

    failpoints::arm("io.stl.write", 0, 1);
    let err = write_stl_ascii(&mut Vec::new(), &mesh, "box").unwrap_err();
    assert!(err.to_string().contains("io.stl.write"), "{err}");

    failpoints::arm("io.csv.write", 0, 1);
    let err =
        write_particles_csv(&mut Vec::new(), vec![(Vec3::ZERO, 0.1, 0usize, 0usize)]).unwrap_err();
    assert!(err.to_string().contains("io.csv.write"), "{err}");

    failpoints::arm("io.vtk.write", 0, 1);
    let err = write_particles_vtk(&mut Vec::new(), &[(Vec3::ZERO, 0.1, 0)], "t").unwrap_err();
    assert!(err.to_string().contains("io.vtk.write"), "{err}");
    failpoints::reset();
}

#[test]
fn grid_rebuild_panic_leaves_a_parseable_jsonl_trace() {
    let _guard = failpoint_guard();
    let trace_path = temp_path("panic_trace.jsonl");
    let _ = fs::remove_file(&trace_path);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let file = fs::File::create(&trace_path).unwrap();
        let mut p = packer(7, Kernel::default());
        p.set_checkpoint_sink(Box::new(MemorySink(Arc::new(Mutex::new(Vec::new())))), 30);
        p.set_trace_sink(Box::new(JsonlWriter::new(BufWriter::new(file))));
        // Arm once batch 0 has finished (its trace drains to the file at
        // the batch boundary): the next grid rebin — batch 1's neighbor
        // canonicalization — then panics mid-run.
        p.set_batch_callback(|stats| {
            if stats.index == 0 {
                failpoints::arm("core.grid.rebuild", 0, 1);
            }
        });
        // Unwinds through the optimizer loop; dropping the packer drops the
        // JsonlWriter, whose Drop flushes every complete line.
        p.try_pack(&psd())
    }));
    assert!(outcome.is_err(), "armed rebuild must panic");
    failpoints::reset();

    let contents = fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = contents.lines().collect();
    assert!(
        !lines.is_empty(),
        "steps before the fault must have been flushed"
    );
    for (i, line) in lines.iter().enumerate() {
        StepRecord::parse(line)
            .unwrap_or_else(|e| panic!("line {i} must stay parseable after the panic: {e}"));
    }
}
