//! Steady-state allocation audit: once the [`Workspace`] buffers are warm,
//! an optimizer step (objective value + gradient through the Verlet
//! pipeline, plus the Adam update) must perform **zero heap allocation**.
//! Verified with a counting `#[global_allocator]` wrapped around the system
//! allocator; the counter only runs while the measured window is active, so
//! test-harness allocations don't pollute it.
//!
//! The measured window deliberately runs with telemetry **enabled** and
//! exercises the full per-step observability surface — a phase span, the
//! step counter and a trace-ring push — proving the instrumentation keeps
//! the hot loop allocation-free (spans and counters are atomics, the ring
//! is preallocated).
//!
//! The whole audit runs inside a 4-thread pool: parallel regions must post
//! work to the persistent workers without allocating, and the window also
//! covers the parallel grid rebuild and the fused value+gradient+breakdown
//! traversal used by traced runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use adampack_core::neighbor::{CsrGrid, NeighborStrategy, Workspace};
use adampack_core::objective::{Objective, ObjectiveWeights};
use adampack_core::Container;
use adampack_geometry::{shapes, Axis, Vec3};
use adampack_opt::Optimizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_steps_do_not_allocate() {
    // Post parallel regions from a 4-thread pool: worker spawning happens
    // during warm-up, and steady-state job posting must not allocate. The
    // shim caps effective width at the hardware thread count, so raise the
    // cap first — a 1-core box would otherwise audit only the serial path.
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(steady_state_body);
}

fn steady_state_body() {
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    // A fixed bed plus a batch big enough to exercise the parallel kernels
    // and the Verlet pipeline (n ≥ the auto-threshold).
    let bed: Vec<Vec3> = (0..120)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.95..-0.5),
            )
        })
        .collect();
    let bed_radii = vec![0.1; bed.len()];
    let fixed = CsrGrid::build(&bed, &bed_radii);

    let n = 80;
    let radii = vec![0.08; n];
    let mut coords = Vec::with_capacity(3 * n);
    for _ in 0..n {
        coords.push(rng.gen_range(-0.7..0.7));
        coords.push(rng.gen_range(-0.7..0.7));
        coords.push(rng.gen_range(-0.4..0.4));
    }

    // The default kernel is SIMD, so the measured window also audits the
    // per-step SoA coordinate/plane snapshot refresh: after warm-up the
    // padded columns are resized in place, never reallocated.
    let objective = Objective::new(
        ObjectiveWeights::default(),
        Axis::Z,
        container.halfspaces(),
        &radii,
        &fixed,
    )
    .with_neighbor(NeighborStrategy::Verlet, 0.05);
    assert_eq!(objective.kernel(), adampack_core::Kernel::Simd);

    let mut ws = Workspace::new();
    let mut grad = vec![0.0; coords.len()];
    let mut opt = adampack_opt::Adam::new(
        adampack_opt::AdamConfig {
            lr: 1e-3,
            amsgrad: true,
            ..Default::default()
        },
        coords.len(),
    );

    // A separate grid rebuilt inside the measured window (the `fixed` grid
    // stays borrowed by the objective). Same input every rebuild, so the
    // key/histogram scratch reaches steady-state capacity after one pass.
    let mut rebuilt = CsrGrid::build(&bed, &bed_radii);

    // Warm-up: fill every buffer to its steady-state capacity (including
    // Verlet rebuilds triggered by real optimizer motion, and the
    // per-particle breakdown buffer used by the fused traced path).
    for step in 0..400 {
        if step % 2 == 0 {
            let _ = objective.value_and_grad_ws(&coords, &mut grad, &mut ws);
        } else {
            let _ = objective.value_grad_breakdown_ws(&coords, &mut grad, &mut ws);
        }
        opt.step(&mut coords, &grad);
    }
    rebuilt.rebuild(&bed, &bed_radii);

    // Telemetry on, with a preallocated trace ring large enough that no
    // record is dropped inside the window.
    adampack_telemetry::set_enabled(true);
    let mut ring = adampack_telemetry::TraceRing::with_capacity(128);

    // Measured window: steps continue from the warm state, instrumented the
    // way `CollectivePacker` instruments them.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for step in 0..100u64 {
        let span = adampack_telemetry::span(adampack_telemetry::Phase::Gradient);
        let z = if step % 2 == 0 {
            objective.value_and_grad_ws(&coords, &mut grad, &mut ws)
        } else {
            objective
                .value_grad_breakdown_ws(&coords, &mut grad, &mut ws)
                .0
        };
        drop(span);
        adampack_telemetry::metrics::STEPS_TOTAL.inc();
        ring.push(adampack_telemetry::StepRecord {
            step,
            loss: z,
            ..adampack_telemetry::StepRecord::default()
        });
        let _span = adampack_telemetry::span(adampack_telemetry::Phase::OptimizerStep);
        opt.step(&mut coords, &grad);
        if step % 10 == 0 {
            let _span = adampack_telemetry::span(adampack_telemetry::Phase::GridBuild);
            rebuilt.rebuild(&bed, &bed_radii);
        }
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "steady-state optimizer steps allocated {allocs} times in 100 steps"
    );
    assert!(
        ws.evals() >= 500,
        "workspace should have served every evaluation"
    );
    assert_eq!(ring.len(), 100, "every step record landed in the ring");
    assert_eq!(ring.dropped(), 0, "no record was overwritten");
    assert!(
        adampack_telemetry::metrics::PHASE_GRADIENT.count() >= 100,
        "spans recorded into the gradient histogram"
    );
}
