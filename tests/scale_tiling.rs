//! Million-particle scale-out contracts (PR 8): gravity-axis tiling,
//! Morton-ordered pair sweeps and the mixed-precision kernel, proven at
//! the public-API level.
//!
//! The load-bearing claims, each tested here end-to-end:
//!
//! - **Tiling is a pure memory optimization.** A run with `tiles = T > 1`
//!   retires settled slabs from the resident hot set but produces the
//!   bitwise identical packing to the monolithic run, under any thread
//!   count, and a checkpoint taken mid-tiled-run resumes bitwise.
//! - **Morton ordering is a pure cache optimization.** The z-order query
//!   permutation visits every particle exactly once (gradients are
//!   one-writer-per-slot and values reduce over slot index, not visit
//!   order), so `order: morton` and `order: strided` packings coincide
//!   at 0 ULP.
//! - **The mixed kernel stays inside its documented budget.** `simd_mixed`
//!   rejects pairs in f32 and is only *self*-deterministic; against the
//!   exact kernels it must stay within `MIXED_REL_BUDGET` on the
//!   objective (10x per gradient component — unit directions are
//!   quantized, and opposing pair contributions do not cancel the
//!   perturbation).

use std::sync::{Arc, Mutex};

use adampack_core::checkpoint;
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};

/// Raise the rayon shim's width cap before the first pool resolves it, so
/// thread-count sweeps mean something on 1-core CI boxes.
fn force_parallel_hardware() {
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "8");
    }
}

/// A tall, narrow box: the bed climbs the gravity axis fast enough for a
/// handful of tiles to retire settled slabs during the run.
fn tall_box() -> Container {
    Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::new(0.8, 0.8, 2.0))).unwrap()
}

fn params(tiles: usize, kernel: Kernel, order: SweepOrder) -> PackingParams {
    let mut p = PackingParams {
        batch_size: 24,
        target_count: 120,
        max_steps: 300,
        patience: 40,
        seed: 23,
        kernel,
        tiles,
        ..PackingParams::default()
    };
    p.neighbor.order = order;
    p
}

fn psd() -> Psd {
    Psd::uniform(0.07, 0.1)
}

fn pack_with(tiles: usize, kernel: Kernel, order: SweepOrder) -> PackResult {
    force_parallel_hardware();
    let mut packer = CollectivePacker::new(tall_box(), params(tiles, kernel, order));
    packer.try_pack(&psd()).expect("run packs")
}

fn assert_same_packing(a: &PackResult, b: &PackResult, what: &str) {
    assert_eq!(a.particles.len(), b.particles.len(), "{what}: count");
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        assert_eq!(pa.center.x.to_bits(), pb.center.x.to_bits(), "{what}: x");
        assert_eq!(pa.center.y.to_bits(), pb.center.y.to_bits(), "{what}: y");
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits(), "{what}: z");
        assert_eq!(pa.radius.to_bits(), pb.radius.to_bits(), "{what}: radius");
    }
    assert_eq!(a.batches.len(), b.batches.len(), "{what}: batch count");
    for (ba, bb) in a.batches.iter().zip(&b.batches) {
        assert_eq!(ba.steps, bb.steps, "{what}: steps");
        assert_eq!(
            ba.best_fitness.to_bits(),
            bb.best_fitness.to_bits(),
            "{what}: fitness"
        );
        assert_eq!(ba.accepted, bb.accepted, "{what}: acceptance");
    }
}

#[test]
fn tiled_matches_untiled_across_kernels_and_thread_counts() {
    force_parallel_hardware();
    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let reference = pack_with(1, kernel, SweepOrder::Morton);
        assert!(
            reference.particles.len() >= 48,
            "fixture too small to span multiple slabs"
        );
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            for tiles in [2usize, 5] {
                let tiled = pool.install(|| pack_with(tiles, kernel, SweepOrder::Morton));
                assert_same_packing(
                    &reference,
                    &tiled,
                    &format!("{kernel} kernel, {tiles} tiles, {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn morton_and_strided_orders_produce_identical_packings() {
    for kernel in [Kernel::Scalar, Kernel::Simd] {
        let morton = pack_with(1, kernel, SweepOrder::Morton);
        let strided = pack_with(1, kernel, SweepOrder::Strided);
        assert_same_packing(&morton, &strided, &format!("{kernel}: morton vs strided"));
    }
}

#[test]
fn mixed_kernel_packs_and_is_self_deterministic() {
    // simd_mixed trades bitwise agreement with the exact kernels for f32
    // rejection bandwidth; what it must keep is (a) a physically valid
    // packing under the same acceptance thresholds and (b) bitwise
    // self-reproducibility — including under tiling.
    let a = pack_with(1, Kernel::SimdMixed, SweepOrder::Morton);
    let b = pack_with(1, Kernel::SimdMixed, SweepOrder::Morton);
    assert_same_packing(&a, &b, "simd_mixed replay");
    assert!(a.particles.len() >= 48, "mixed kernel packed too little");
    let tiled = pack_with(5, Kernel::SimdMixed, SweepOrder::Morton);
    assert_same_packing(&a, &tiled, "simd_mixed tiled vs untiled");
    // Against the exact kernels the mixed trajectory diverges (the f32
    // rejection perturbation compounds chaotically over batches — the
    // per-evaluation budget is proven in `kernel_parity.rs`), so the
    // end-to-end contract is packing *quality*: the same acceptance
    // thresholds hold, so yield and overlap discipline must match.
    let exact = pack_with(1, Kernel::Simd, SweepOrder::Morton);
    assert!(
        a.particles.len() * 10 >= exact.particles.len() * 9,
        "mixed yield collapsed: {} vs {} exact",
        a.particles.len(),
        exact.particles.len()
    );
    let (cm, ce) = (contact_stats(&a.particles), contact_stats(&exact.particles));
    assert!(
        cm.max_overlap_ratio <= (2.0 * ce.max_overlap_ratio).max(0.02),
        "mixed overlaps degraded: max {} vs {} exact",
        cm.max_overlap_ratio,
        ce.max_overlap_ratio
    );
}

/// In-memory checkpoint sink (the encode/decode codec stays on the path so
/// resume exercises the real wire format).
struct MemorySink(Arc<Mutex<Vec<Vec<u8>>>>);

impl CheckpointSink for MemorySink {
    fn save(&mut self, state: &RunState) -> Result<(), String> {
        self.0.lock().unwrap().push(checkpoint::encode(state));
        Ok(())
    }
}

#[test]
fn checkpoint_resume_mid_tiled_run_is_bitwise_identical() {
    force_parallel_hardware();
    // Straight tiled run with a mid-run checkpoint cadence.
    let blobs = Arc::new(Mutex::new(Vec::new()));
    let mut p = CollectivePacker::new(tall_box(), params(4, Kernel::Simd, SweepOrder::Morton));
    p.set_checkpoint_sink(Box::new(MemorySink(Arc::clone(&blobs))), 150);
    let straight = p.try_pack(&psd()).expect("straight tiled run packs");
    drop(p);
    let blobs = Arc::try_unwrap(blobs).ok().unwrap().into_inner().unwrap();
    assert!(
        blobs.len() >= 3,
        "cadence captured only {} checkpoints",
        blobs.len()
    );

    // Kill-and-resume from an early, a middle and the last capture: the
    // resumed run must rebuild the hot window from the particle list and
    // finish bitwise identical to the uninterrupted run.
    for idx in [0, blobs.len() / 2, blobs.len() - 1] {
        let state = checkpoint::decode(&blobs[idx]).expect("checkpoint decodes");
        let mut p = CollectivePacker::new(tall_box(), params(4, Kernel::Simd, SweepOrder::Morton));
        p.set_checkpoint_sink(Box::new(MemorySink(Arc::new(Mutex::new(Vec::new())))), 150);
        let resumed = p.resume(&psd(), state).expect("resume packs");
        assert_same_packing(&straight, &resumed, &format!("resume from capture {idx}"));
    }

    // And the tiled checkpointed run equals the untiled checkpointed run:
    // checkpoints do not perturb the tiling parity contract.
    let mut p = CollectivePacker::new(tall_box(), params(1, Kernel::Simd, SweepOrder::Morton));
    p.set_checkpoint_sink(Box::new(MemorySink(Arc::new(Mutex::new(Vec::new())))), 150);
    let untiled = p.try_pack(&psd()).expect("untiled checkpointed run packs");
    assert_same_packing(&straight, &untiled, "tiled vs untiled, checkpointing on");
}
