//! End-to-end packing invariants across container shapes.
//!
//! For every supported container geometry the packer must produce particles
//! that (a) stay inside the hull, (b) never overlap beyond the acceptance
//! tolerance, (c) follow the prescribed PSD exactly, and (d) settle towards
//! the gravity floor.

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Axis, TriMesh, Vec3};

fn quick_params(n: usize, seed: u64) -> PackingParams {
    PackingParams {
        batch_size: n.div_ceil(2),
        target_count: n,
        max_steps: 800,
        patience: 60,
        seed,
        ..PackingParams::default()
    }
}

fn assert_packing_invariants(container: &Container, result: &PackResult, tol_ratio: f64) {
    assert!(!result.particles.is_empty(), "nothing packed");
    // Containment.
    for (i, p) in result.particles.iter().enumerate() {
        let excess = container.halfspaces().sphere_max_excess(p.center, p.radius);
        assert!(
            excess <= tol_ratio * p.radius + 1e-9,
            "particle {i} pokes out by {excess} ({}% of r)",
            excess / p.radius * 100.0
        );
    }
    // Pairwise overlaps.
    let stats = metrics::contact_stats(&result.particles);
    assert!(
        stats.max_overlap_ratio <= 2.5 * tol_ratio,
        "worst overlap {:.2}% of radius",
        stats.max_overlap_ratio * 100.0
    );
}

#[test]
fn box_container_end_to_end() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let result =
        CollectivePacker::new(container.clone(), quick_params(60, 1)).pack(&Psd::constant(0.13));
    assert!(
        result.particles.len() >= 40,
        "packed {}",
        result.particles.len()
    );
    assert_packing_invariants(&container, &result, 0.05);
}

#[test]
fn cylinder_container_end_to_end() {
    let mesh = shapes::cylinder(1.0, 2.0, 32);
    let container = Container::from_mesh(&mesh).unwrap();
    let result = CollectivePacker::new(container.clone(), quick_params(50, 2))
        .pack(&Psd::uniform(0.09, 0.13));
    assert!(result.particles.len() >= 30);
    assert_packing_invariants(&container, &result, 0.05);
}

#[test]
fn cone_container_end_to_end() {
    let mesh = shapes::cone(1.2, 2.0, 32, false); // widens upward
    let container = Container::from_mesh(&mesh).unwrap();
    let result =
        CollectivePacker::new(container.clone(), quick_params(40, 3)).pack(&Psd::constant(0.1));
    assert!(result.particles.len() >= 20);
    assert_packing_invariants(&container, &result, 0.05);
}

#[test]
fn blast_furnace_replica_end_to_end() {
    let mesh = shapes::blast_furnace(0.05, 24); // 1.6 units tall replica
    let container = Container::from_mesh(&mesh).unwrap();
    let result = CollectivePacker::new(container.clone(), quick_params(40, 4))
        .pack(&Psd::uniform(0.05, 0.07));
    assert!(result.particles.len() >= 20);
    assert_packing_invariants(&container, &result, 0.05);
}

#[test]
fn particles_settle_towards_gravity_floor() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let result = CollectivePacker::new(container, quick_params(50, 5)).pack(&Psd::constant(0.12));
    // Bed occupies the lower part of the box: mean z well below centre 0.
    let mean_z: f64 =
        result.particles.iter().map(|p| p.center.z).sum::<f64>() / result.particles.len() as f64;
    assert!(mean_z < -0.2, "bed should sit low, mean z = {mean_z}");
}

#[test]
fn psd_is_followed_exactly() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let psd = Psd::uniform(0.08, 0.14);
    let result = CollectivePacker::new(container, quick_params(80, 6)).pack(&psd);
    let radii: Vec<f64> = result.particles.iter().map(|p| p.radius).collect();
    let adherence = metrics::psd_adherence(&radii, &psd);
    assert_eq!(adherence.out_of_bound_fraction, 0.0);
    assert!(radii.iter().all(|&r| (0.08..=0.14).contains(&r)));
    // Radii are used verbatim from the sampler: the mean error is pure
    // sampling noise, bounded well under the distribution width.
    assert!(
        adherence.mean_rel_error < 0.1,
        "err = {}",
        adherence.mean_rel_error
    );
}

#[test]
fn batch_metadata_is_consistent() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let result = CollectivePacker::new(container, quick_params(60, 7)).pack(&Psd::constant(0.12));
    // Every particle's batch index refers to an accepted batch.
    for p in &result.particles {
        let b = &result.batches[p.batch];
        assert!(b.accepted, "particle points at a rejected batch");
    }
    // Accepted batch sizes sum to the particle count.
    let accepted_total: usize = result
        .batches
        .iter()
        .filter(|b| b.accepted)
        .map(|b| b.requested)
        .sum();
    assert_eq!(accepted_total, result.particles.len());
}

#[test]
fn gravity_can_point_along_any_axis() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    type Pick = fn(&Vec3) -> f64;
    let cases: [(Axis, Pick); 3] = [(Axis::X, |p| p.x), (Axis::Y, |p| p.y), (Axis::Z, |p| p.z)];
    for (axis, pick) in cases {
        let container = Container::from_mesh(&mesh).unwrap();
        let mut params = quick_params(30, 8);
        params.gravity = axis;
        let result = CollectivePacker::new(container, params).pack(&Psd::constant(0.14));
        assert!(!result.particles.is_empty());
        let mean: f64 = result
            .particles
            .iter()
            .map(|p| pick(&p.center))
            .sum::<f64>()
            / result.particles.len() as f64;
        assert!(
            mean < 0.0,
            "axis {axis:?}: bed should settle low, mean = {mean}"
        );
    }
}

#[test]
fn works_from_stl_round_trip() {
    // Full pipeline: procedural mesh → STL bytes → parsed mesh → packing,
    // matching the application's container flow.
    let mesh = shapes::cylinder(1.0, 1.6, 24);
    let mut bytes = Vec::new();
    adampack_io::write_stl_binary(&mut bytes, &mesh).unwrap();
    let parsed: TriMesh = adampack_io::read_stl(&bytes).unwrap();
    let container = Container::from_mesh(&parsed).unwrap();
    let result =
        CollectivePacker::new(container.clone(), quick_params(30, 9)).pack(&Psd::constant(0.12));
    assert!(result.particles.len() >= 15);
    assert_packing_invariants(&container, &result, 0.05);
}
