//! Determinism guarantees (§IV): "This can be avoided by fixing the seed of
//! the random generator in order to produce deterministic results." With a
//! fixed seed the whole pipeline — PSD sampling, spawning, optimization,
//! acceptance — must be bitwise reproducible, *including under different
//! Rayon thread counts*, because the objective reduces per-particle partial
//! values sequentially.
//!
//! ## Kernel determinism
//!
//! The default kernel is [`Kernel::Simd`], so every test here exercises the
//! vectorized pair/plane/optimizer kernels; `kernel_choice_does_not_change_
//! the_packing` additionally proves the scalar oracle produces the bitwise
//! identical packing (the spec bound of ≤ 1 ULP is met trivially, at 0 ULP:
//! SIMD lanes reject with element-wise correctly-rounded ops and hit lanes
//! run the exact scalar arithmetic in candidate order).
//!
//! Note on the sqrt-free rejection (this suite carries no hardcoded golden
//! values, so the note is documentary): both current kernels test
//! `d² < (rᵢ+rⱼ)²` where the pre-vectorization code tested
//! `sqrt(d²) < rᵢ+rⱼ`. The two conditions can disagree only when rounding
//! lands `d²` exactly on the contact boundary — a measure-zero event that
//! changes which *zero-penetration* pairs are counted, never the value of a
//! real overlap.

use std::sync::{Arc, Mutex};

use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use adampack_telemetry::{StepRecord, TraceSink};

/// The shim caps a pool's effective width at the hardware thread count
/// (oversubscription buys nothing in production). This suite exists to prove
/// thread-count independence, so raise the cap before the process's first
/// parallel region resolves (and caches) it — otherwise a 1-core CI box
/// would run every "parallel" pool serially and prove nothing.
fn force_parallel_hardware() {
    if std::env::var_os("RAYON_NUM_THREADS").is_none() {
        std::env::set_var("RAYON_NUM_THREADS", "8");
    }
}

fn packer_with_kernel(seed: u64, kernel: Kernel) -> CollectivePacker {
    force_parallel_hardware();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 40,
        target_count: 80,
        max_steps: 500,
        patience: 50,
        seed,
        kernel,
        ..PackingParams::default()
    };
    CollectivePacker::new(container, params)
}

fn packer(seed: u64) -> CollectivePacker {
    packer_with_kernel(seed, Kernel::default())
}

fn pack(seed: u64) -> PackResult {
    packer(seed).pack(&Psd::uniform(0.09, 0.13))
}

/// A trace sink sharing its record buffer, so the trace survives
/// [`CollectivePacker::take_trace_sink`] returning an opaque box.
struct SharedSink(Arc<Mutex<Vec<StepRecord>>>);

impl TraceSink for SharedSink {
    fn record(&mut self, record: &StepRecord) {
        self.0.lock().unwrap().push(*record);
    }
}

/// Runs the reference packing under an `n`-thread pool, optionally with a
/// step tracer attached, returning the result and the collected trace.
fn pack_with_threads(threads: usize, traced: bool) -> (PackResult, Vec<StepRecord>) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let mut p = packer(77);
        let records = Arc::new(Mutex::new(Vec::new()));
        if traced {
            p.set_trace_sink(Box::new(SharedSink(Arc::clone(&records))));
        }
        let result = p.pack(&Psd::uniform(0.09, 0.13));
        drop(p.take_trace_sink());
        let records = Arc::try_unwrap(records).ok().unwrap().into_inner().unwrap();
        (result, records)
    })
}

fn assert_same_packing(a: &PackResult, b: &PackResult, what: &str) {
    assert_eq!(
        a.particles.len(),
        b.particles.len(),
        "{what}: particle count"
    );
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        assert_eq!(pa.center.x.to_bits(), pb.center.x.to_bits(), "{what}: x");
        assert_eq!(pa.center.y.to_bits(), pb.center.y.to_bits(), "{what}: y");
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits(), "{what}: z");
        assert_eq!(pa.radius.to_bits(), pb.radius.to_bits(), "{what}: radius");
    }
    assert_eq!(a.batches.len(), b.batches.len(), "{what}: batch count");
    for (ba, bb) in a.batches.iter().zip(&b.batches) {
        assert_eq!(ba.steps, bb.steps, "{what}: steps");
        assert_eq!(
            ba.best_fitness.to_bits(),
            bb.best_fitness.to_bits(),
            "{what}: fitness"
        );
        assert_eq!(ba.accepted, bb.accepted, "{what}: acceptance");
    }
}

#[test]
fn same_seed_same_packing_bitwise() {
    let a = pack(123);
    let b = pack(123);
    assert_eq!(a.particles.len(), b.particles.len());
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        assert_eq!(pa.center.x.to_bits(), pb.center.x.to_bits());
        assert_eq!(pa.center.y.to_bits(), pb.center.y.to_bits());
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits());
        assert_eq!(pa.radius.to_bits(), pb.radius.to_bits());
        assert_eq!(pa.batch, pb.batch);
    }
    // Batch statistics agree too (steps and fitness are part of the
    // deterministic trajectory; durations are not compared).
    for (ba, bb) in a.batches.iter().zip(&b.batches) {
        assert_eq!(ba.steps, bb.steps);
        assert_eq!(ba.best_fitness.to_bits(), bb.best_fitness.to_bits());
        assert_eq!(ba.accepted, bb.accepted);
    }
}

#[test]
fn different_seeds_different_packings() {
    let a = pack(1);
    let b = pack(2);
    let identical = a.particles.len() == b.particles.len()
        && a.particles
            .iter()
            .zip(&b.particles)
            .all(|(x, y)| x.center == y.center && x.radius == y.radius);
    assert!(
        !identical,
        "distinct seeds must explore distinct configurations"
    );
}

#[test]
fn determinism_is_thread_count_independent() {
    // Run the identical packing under 1/2/4/8-thread pools: final centers,
    // per-batch step counts, fitnesses and acceptance decisions must all be
    // bitwise identical (static contiguous chunking + fixed-shape sequential
    // reductions make the arithmetic independent of the pool width).
    let (reference, _) = pack_with_threads(1, false);
    for threads in [2, 4, 8] {
        let (run, _) = pack_with_threads(threads, false);
        assert_same_packing(&reference, &run, &format!("{threads} threads"));
    }
}

#[test]
fn tracing_is_thread_count_independent_and_free_of_side_effects() {
    // The traced path goes through the fused value+gradient traversal, the
    // untraced path through the plain one; both must produce the identical
    // packing, and the trace itself (loss, gradient norm, displacement)
    // must be bitwise identical for any thread count.
    let (untraced, _) = pack_with_threads(1, false);
    let (reference, ref_trace) = pack_with_threads(1, true);
    assert_same_packing(&untraced, &reference, "traced vs untraced");
    assert!(!ref_trace.is_empty(), "tracer must record steps");
    for threads in [2, 4, 8] {
        let (run, trace) = pack_with_threads(threads, true);
        assert_same_packing(&reference, &run, &format!("traced, {threads} threads"));
        assert_eq!(
            trace.len(),
            ref_trace.len(),
            "{threads} threads: trace length"
        );
        for (ra, rb) in ref_trace.iter().zip(&trace) {
            assert_eq!(ra.batch, rb.batch);
            assert_eq!(ra.step, rb.step);
            assert_eq!(
                ra.loss.to_bits(),
                rb.loss.to_bits(),
                "{threads} threads: loss"
            );
            assert_eq!(
                ra.grad_norm.to_bits(),
                rb.grad_norm.to_bits(),
                "{threads} threads: grad norm"
            );
            assert_eq!(
                ra.max_disp.to_bits(),
                rb.max_disp.to_bits(),
                "{threads} threads: max displacement"
            );
            for (fa, fb) in [
                (ra.penetration_intra, rb.penetration_intra),
                (ra.penetration_cross, rb.penetration_cross),
                (ra.altitude, rb.altitude),
                (ra.exterior, rb.exterior),
            ] {
                assert_eq!(fa.to_bits(), fb.to_bits(), "{threads} threads: breakdown");
            }
        }
    }
}

#[test]
fn kernel_choice_does_not_change_the_packing() {
    // The SIMD kernel (default, exercised by every other test here) and the
    // scalar oracle must produce the bitwise identical packing: both the
    // objective's pair/plane arithmetic and the Adam update are vectorized
    // lane ≡ scalar tail, so the whole trajectory coincides at 0 ULP.
    assert_eq!(Kernel::default(), Kernel::Simd);
    let simd = pack(123);
    let scalar = packer_with_kernel(123, Kernel::Scalar).pack(&Psd::uniform(0.09, 0.13));
    assert_same_packing(&simd, &scalar, "simd vs scalar kernel");
}

#[test]
fn simd_kernel_is_thread_count_independent() {
    // Belt-and-braces restatement of `determinism_is_thread_count_
    // independent` with the kernel pinned explicitly (the other test relies
    // on the default): 1/2/4/8-thread pools under the SIMD kernel agree
    // bitwise, as do 1/2/4/8-thread pools under the scalar kernel.
    for kernel in [Kernel::Simd, Kernel::Scalar] {
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| packer_with_kernel(77, kernel).pack(&Psd::uniform(0.09, 0.13)));
        for threads in [2, 4, 8] {
            let run = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| packer_with_kernel(77, kernel).pack(&Psd::uniform(0.09, 0.13)));
            assert_same_packing(
                &reference,
                &run,
                &format!("{kernel} kernel, {threads} threads"),
            );
        }
    }
}

#[test]
fn baseline_packers_are_deterministic_too() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let psd = Psd::uniform(0.08, 0.12);
    let a = RsaPacker {
        seed: 5,
        ..RsaPacker::default()
    }
    .pack(&container, &psd, 100);
    let b = RsaPacker {
        seed: 5,
        ..RsaPacker::default()
    }
    .pack(&container, &psd, 100);
    assert_eq!(a.particles.len(), b.particles.len());
    for (x, y) in a.particles.iter().zip(&b.particles) {
        assert_eq!(x.center, y.center);
    }
    let c = DropAndRollPacker {
        seed: 5,
        ..DropAndRollPacker::default()
    }
    .pack(&container, &psd, 100);
    let d = DropAndRollPacker {
        seed: 5,
        ..DropAndRollPacker::default()
    }
    .pack(&container, &psd, 100);
    assert_eq!(c.particles.len(), d.particles.len());
    for (x, y) in c.particles.iter().zip(&d.particles) {
        assert_eq!(x.center, y.center);
    }
}
