//! Determinism guarantees (§IV): "This can be avoided by fixing the seed of
//! the random generator in order to produce deterministic results." With a
//! fixed seed the whole pipeline — PSD sampling, spawning, optimization,
//! acceptance — must be bitwise reproducible, *including under different
//! Rayon thread counts*, because the objective reduces per-particle partial
//! values sequentially.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};

fn pack(seed: u64) -> PackResult {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 40,
        target_count: 80,
        max_steps: 500,
        patience: 50,
        seed,
        ..PackingParams::default()
    };
    CollectivePacker::new(container, params).pack(&Psd::uniform(0.09, 0.13))
}

#[test]
fn same_seed_same_packing_bitwise() {
    let a = pack(123);
    let b = pack(123);
    assert_eq!(a.particles.len(), b.particles.len());
    for (pa, pb) in a.particles.iter().zip(&b.particles) {
        assert_eq!(pa.center.x.to_bits(), pb.center.x.to_bits());
        assert_eq!(pa.center.y.to_bits(), pb.center.y.to_bits());
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits());
        assert_eq!(pa.radius.to_bits(), pb.radius.to_bits());
        assert_eq!(pa.batch, pb.batch);
    }
    // Batch statistics agree too (steps and fitness are part of the
    // deterministic trajectory; durations are not compared).
    for (ba, bb) in a.batches.iter().zip(&b.batches) {
        assert_eq!(ba.steps, bb.steps);
        assert_eq!(ba.best_fitness.to_bits(), bb.best_fitness.to_bits());
        assert_eq!(ba.accepted, bb.accepted);
    }
}

#[test]
fn different_seeds_different_packings() {
    let a = pack(1);
    let b = pack(2);
    let identical = a.particles.len() == b.particles.len()
        && a.particles
            .iter()
            .zip(&b.particles)
            .all(|(x, y)| x.center == y.center && x.radius == y.radius);
    assert!(
        !identical,
        "distinct seeds must explore distinct configurations"
    );
}

#[test]
fn determinism_is_thread_count_independent() {
    // Run the identical packing under 1-thread and N-thread Rayon pools.
    let run_with_threads = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| pack(77))
    };
    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);
    assert_eq!(serial.particles.len(), parallel.particles.len());
    for (pa, pb) in serial.particles.iter().zip(&parallel.particles) {
        assert_eq!(
            pa.center.x.to_bits(),
            pb.center.x.to_bits(),
            "thread count changed the result"
        );
        assert_eq!(pa.center.z.to_bits(), pb.center.z.to_bits());
    }
}

#[test]
fn baseline_packers_are_deterministic_too() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let psd = Psd::uniform(0.08, 0.12);
    let a = RsaPacker {
        seed: 5,
        ..RsaPacker::default()
    }
    .pack(&container, &psd, 100);
    let b = RsaPacker {
        seed: 5,
        ..RsaPacker::default()
    }
    .pack(&container, &psd, 100);
    assert_eq!(a.particles.len(), b.particles.len());
    for (x, y) in a.particles.iter().zip(&b.particles) {
        assert_eq!(x.center, y.center);
    }
    let c = DropAndRollPacker {
        seed: 5,
        ..DropAndRollPacker::default()
    }
    .pack(&container, &psd, 100);
    let d = DropAndRollPacker {
        seed: 5,
        ..DropAndRollPacker::default()
    }
    .pack(&container, &psd, 100);
    assert_eq!(c.particles.len(), d.particles.len());
    for (x, y) in c.particles.iter().zip(&d.particles) {
        assert_eq!(x.center, y.center);
    }
}
