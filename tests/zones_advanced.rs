//! Advanced zoned-packing scenarios beyond the paper's Fig. 9 example:
//! icosphere mesh zones, three stacked layers, and zones under a custom
//! gravity axis.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, Axis, ConvexHull, Vec3};

fn quick_params(seed: u64) -> PackingParams {
    PackingParams {
        batch_size: 25,
        max_steps: 600,
        patience: 50,
        seed,
        ..PackingParams::default()
    }
}

#[test]
fn icosphere_zone_confines_particles() {
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let zone_hull =
        ConvexHull::from_mesh(&shapes::icosphere(Vec3::new(0.2, -0.1, -0.3), 0.55, 2)).unwrap();
    let zones = vec![ZoneSpec {
        region: ZoneRegion::Mesh(zone_hull.clone()),
        n_particles: 30,
        set_proportions: vec![1.0],
    }];
    let packer = ZonedPacker::new(container, quick_params(1), vec![Psd::constant(0.09)]);
    let result = packer.pack(&zones);
    assert!(
        result.particles.len() >= 15,
        "packed {}",
        result.particles.len()
    );
    for p in &result.particles {
        // Sphere centres (at least) must lie in the zone within tolerance;
        // the zone planes act like container walls for the sub-packing.
        let excess = zone_hull.halfspaces().sphere_max_excess(p.center, p.radius);
        assert!(
            excess <= 0.05 * p.radius + 1e-9,
            "particle at {} leaves the icosphere zone by {excess}",
            p.center
        );
    }
}

#[test]
fn three_stacked_slices_fill_bottom_up() {
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let sets = vec![
        Psd::constant(0.10),
        Psd::constant(0.13),
        Psd::constant(0.16),
    ];
    let slice = |lo: f64, hi: f64, set: usize| {
        let mut props = vec![0.0; 3];
        props[set] = 1.0;
        ZoneSpec {
            region: ZoneRegion::Slice {
                axis: Axis::Z,
                min: lo,
                max: hi,
            },
            n_particles: 12,
            set_proportions: props,
        }
    };
    // Deliberately out of order: the packer must sort bottom-up.
    let zones = vec![
        slice(0.2, 1.0, 2),
        slice(-1.0, -0.4, 0),
        slice(-0.4, 0.2, 1),
    ];
    let packer = ZonedPacker::new(container, quick_params(2), sets);
    let result = packer.pack(&zones);
    assert!(
        result.particles.len() >= 24,
        "packed {}",
        result.particles.len()
    );
    // Mean altitude must increase with the radius tier.
    let mean_z = |r: f64| {
        let zs: Vec<f64> = result
            .particles
            .iter()
            .filter(|p| (p.radius - r).abs() < 1e-9)
            .map(|p| p.center.z)
            .collect();
        assert!(!zs.is_empty(), "tier {r} missing");
        zs.iter().sum::<f64>() / zs.len() as f64
    };
    let (z_small, z_mid, z_large) = (mean_z(0.10), mean_z(0.13), mean_z(0.16));
    assert!(
        z_small < z_mid && z_mid < z_large,
        "tiers out of order: {z_small} < {z_mid} < {z_large}"
    );
}

#[test]
fn zone_respects_custom_gravity() {
    // Gravity along -x: a slice zone along x fills from the -x side.
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let mut params = quick_params(3);
    params.gravity = Axis::X;
    let zones = vec![ZoneSpec {
        region: ZoneRegion::Slice {
            axis: Axis::X,
            min: -1.0,
            max: 0.5,
        },
        n_particles: 25,
        set_proportions: vec![1.0],
    }];
    let packer = ZonedPacker::new(container, params, vec![Psd::constant(0.12)]);
    let result = packer.pack(&zones);
    assert!(result.particles.len() >= 15);
    let mean_x: f64 =
        result.particles.iter().map(|p| p.center.x).sum::<f64>() / result.particles.len() as f64;
    assert!(mean_x < -0.2, "bed should lean towards -x, mean = {mean_x}");
    for p in &result.particles {
        assert!(p.center.x <= 0.5 + 0.05 * p.radius, "slice bound violated");
    }
}
