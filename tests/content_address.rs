//! Property tests for job content-address canonicalization
//! (`adampack_server::address`): semantically-equal configurations must
//! hash to one address — YAML key order, spelled-out defaults, quoting
//! style, thread counts and sweep-order spellings are all presentation,
//! not semantics — while anything that changes the packed bytes (seed,
//! learning rate, PSD, kernel) must produce a distinct address.

use adampack_config::PackingConfig;
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use adampack_server::address::{content_address, format_address, parse_address};
use proptest::prelude::*;

fn container() -> Container {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
    Container::from_mesh(&mesh).unwrap()
}

/// Parses a YAML config and resolves it into a content address exactly
/// the way the server's submit path does (target count from the capacity
/// estimate; container fixed to the unit box — these tests are about the
/// parameter side of the hash).
fn addr_of(yaml: &str) -> u64 {
    let cfg = PackingConfig::from_str(yaml).expect(yaml);
    let container = container();
    let psd = cfg.psds().into_iter().next().unwrap();
    let mut params = cfg.to_packing_params();
    params.target_count = container.capacity_estimate(psd.mean(), 0.6);
    content_address(&container, &params)
}

#[test]
fn presentation_differences_collapse_to_one_address() {
    // The same job spelled four ways: canonical; keys permuted; defaults
    // spelled out with different quoting; perf-only knobs (threads,
    // sweep order) varied.
    let canonical = r#"
container:
    path: "box.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    seed: 42
particle_sets:
    - radius_distribution: "constant"
      radius_value: 0.1
"#;
    let permuted = r#"
particle_sets:
    - radius_value: 0.1
      radius_distribution: "constant"
params:
    seed: 42
    lr: 0.01
algorithm: "COLLECTIVE_ARRANGEMENT"
container:
    path: "box.stl"
"#;
    let spelled_defaults = r#"
container:
    path: 'box.stl'
algorithm: 'COLLECTIVE_ARRANGEMENT'
gravity_axis: z
params:
    lr: 0.01
    seed: 42
    threads: 0
particle_sets:
    - radius_distribution: 'constant'
      radius_value: 0.1
"#;
    let perf_knobs = r#"
container:
    path: "box.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
neighbor:
    order: "strided"
params:
    lr: 0.01
    seed: 42
    threads: 7
particle_sets:
    - radius_distribution: "constant"
      radius_value: 0.1
"#;
    let a = addr_of(canonical);
    assert_eq!(a, addr_of(permuted), "key order is presentation");
    assert_eq!(
        a,
        addr_of(spelled_defaults),
        "spelled defaults are presentation"
    );
    assert_eq!(
        a,
        addr_of(perf_knobs),
        "threads and sweep order are presentation"
    );

    // The canonical hex form is stable and parseable.
    assert_eq!(parse_address(&format_address(a)), Some(a));
}

/// One parameter point in the collision corpus. Every field changes the
/// packed bytes, so distinct points must get distinct addresses.
#[derive(Clone, Debug, PartialEq)]
struct Point {
    seed: u64,
    lr_milli: u32,
    radius_centi: u32,
    kernel: u32,
}

fn point() -> impl Strategy<Value = Point> {
    (0u64..64, 1u32..40, 5u32..25, 0u32..3).prop_map(|(seed, lr_milli, radius_centi, kernel)| {
        Point {
            seed,
            lr_milli,
            radius_centi,
            kernel,
        }
    })
}

fn params_for(p: &Point, container: &Container) -> PackingParams {
    let mut params = PackingParams {
        seed: p.seed,
        kernel: match p.kernel {
            0 => Kernel::Scalar,
            1 => Kernel::Simd,
            _ => Kernel::SimdMixed,
        },
        ..PackingParams::default()
    };
    params.lr = LrPolicy::Fixed(p.lr_milli as f64 * 1e-3);
    let radius = p.radius_centi as f64 * 1e-2;
    params.target_count = container.capacity_estimate(radius, 0.6);
    params
}

proptest! {
    /// Equal parameter points hash equal; unequal points never collide
    /// across the corpus (FNV-1a over the full parameter debug form plus
    /// container geometry — a collision here means the cache would serve
    /// the wrong artifact).
    #[test]
    fn distinct_parameters_never_collide(points in proptest::collection::vec(point(), 2..20)) {
        let container = container();
        let mut seen: Vec<(Point, u64)> = Vec::new();
        for p in points {
            let addr = content_address(&container, &params_for(&p, &container));
            // Recomputing is deterministic.
            prop_assert_eq!(addr, content_address(&container, &params_for(&p, &container)));
            for (q, qaddr) in &seen {
                if *q == p {
                    prop_assert_eq!(addr, *qaddr);
                } else {
                    prop_assert_ne!(addr, *qaddr);
                }
            }
            seen.push((p, addr));
        }
    }

    /// Sweep order never reaches the address; seeds always do. (The YAML
    /// route is covered above; this drives the params route across the
    /// whole corpus.)
    #[test]
    fn order_is_normalized_for_every_point(p in point()) {
        let container = container();
        let base = params_for(&p, &container);
        for order in [SweepOrder::Auto, SweepOrder::Morton, SweepOrder::Strided] {
            let mut variant = base.clone();
            variant.neighbor.order = order;
            prop_assert_eq!(
                content_address(&container, &base),
                content_address(&container, &variant)
            );
        }
        let mut reseeded = base.clone();
        reseeded.seed = base.seed.wrapping_add(1);
        prop_assert_ne!(content_address(&container, &base), content_address(&container, &reseeded));
    }
}
