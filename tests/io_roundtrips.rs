//! Cross-crate I/O round trips: packing results through every serialization
//! format and back, and STL containers through the hull pipeline.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, ConvexHull, Vec3};
use adampack_io::{
    read_particles_csv, read_stl, read_xyz, write_particles_csv, write_particles_vtk,
    write_stl_ascii, write_stl_binary, write_xyz,
};
use std::io::BufReader;

fn small_packing() -> PackResult {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 30,
        target_count: 60,
        max_steps: 500,
        patience: 50,
        seed: 17,
        ..PackingParams::default()
    };
    CollectivePacker::new(container, params).pack(&Psd::uniform(0.1, 0.14))
}

#[test]
fn packing_survives_csv_round_trip_exactly() {
    let result = small_packing();
    let mut buf = Vec::new();
    write_particles_csv(
        &mut buf,
        result
            .particles
            .iter()
            .map(|p| (p.center, p.radius, p.batch, p.set)),
    )
    .unwrap();
    let rows = read_particles_csv(BufReader::new(&buf[..])).unwrap();
    assert_eq!(rows.len(), result.particles.len());
    for (row, p) in rows.iter().zip(&result.particles) {
        assert_eq!(row.0, p.center, "positions must round-trip bit-exactly");
        assert_eq!(row.1, p.radius);
        assert_eq!(row.2, p.batch);
    }
}

#[test]
fn packing_survives_xyz_round_trip() {
    let result = small_packing();
    let spheres: Vec<(Vec3, f64)> = result.spheres();
    let mut buf = Vec::new();
    write_xyz(&mut buf, &spheres, "packing").unwrap();
    let back = read_xyz(BufReader::new(&buf[..])).unwrap();
    assert_eq!(back, spheres);
}

#[test]
fn vtk_export_is_well_formed() {
    let result = small_packing();
    let triples: Vec<(Vec3, f64, usize)> = result
        .particles
        .iter()
        .map(|p| (p.center, p.radius, p.batch))
        .collect();
    let mut buf = Vec::new();
    write_particles_vtk(&mut buf, &triples, "test").unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains(&format!("POINTS {} double", triples.len())));
    // Line counts: header(5) + points + point_data(3) + radii + batch header(2) + batches.
    let lines = text.lines().count();
    assert_eq!(
        lines,
        5 + triples.len() + 3 + triples.len() + 2 + triples.len()
    );
}

#[test]
fn every_generated_shape_round_trips_through_both_stl_dialects() {
    let meshes = [
        shapes::box_mesh(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)),
        shapes::cylinder(0.7, 1.4, 20),
        shapes::cone(1.0, 2.0, 20, true),
        shapes::frustum(1.0, 0.5, 1.0, 20),
        shapes::uv_sphere(Vec3::ZERO, 0.8, 16, 8),
        shapes::blast_furnace(0.05, 20),
    ];
    for (k, mesh) in meshes.iter().enumerate() {
        let mut ascii = Vec::new();
        write_stl_ascii(&mut ascii, mesh, "shape").unwrap();
        let from_ascii = read_stl(&ascii).unwrap();
        assert_eq!(
            from_ascii.face_count(),
            mesh.face_count(),
            "shape {k} (ascii)"
        );
        assert!(
            from_ascii.is_watertight(),
            "shape {k} ascii weld broke manifoldness"
        );

        let mut binary = Vec::new();
        write_stl_binary(&mut binary, mesh).unwrap();
        let from_binary = read_stl(&binary).unwrap();
        assert_eq!(
            from_binary.face_count(),
            mesh.face_count(),
            "shape {k} (binary)"
        );
        assert!(
            from_binary.is_watertight(),
            "shape {k} binary weld broke manifoldness"
        );

        // Volumes agree within f32 serialization error.
        let rel = (from_binary.signed_volume() - mesh.signed_volume()).abs() / mesh.signed_volume();
        assert!(rel < 1e-5, "shape {k}: volume drift {rel}");
    }
}

#[test]
fn stl_container_hull_matches_original_hull() {
    let mesh = shapes::blast_furnace(0.1, 24);
    let direct = ConvexHull::from_mesh(&mesh).unwrap();
    let mut bytes = Vec::new();
    write_stl_binary(&mut bytes, &mesh).unwrap();
    let parsed = read_stl(&bytes).unwrap();
    let via_stl = ConvexHull::from_mesh(&parsed).unwrap();
    let rel = (direct.volume() - via_stl.volume()).abs() / direct.volume();
    assert!(rel < 1e-5, "hull volume drift through STL: {rel}");
    // Mutual containment within f32 serialization tolerance. (Plane *counts*
    // may differ: the f32 quantization shifts which nearly-coplanar facet
    // planes deduplicate.)
    let tol = 1e-5 * direct.aabb().diagonal();
    for &v in &via_stl.vertices {
        assert!(direct.contains(v, tol));
    }
    for &v in &direct.vertices {
        assert!(via_stl.contains(v, tol));
    }
}
