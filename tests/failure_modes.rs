//! Failure injection: impossible or degenerate inputs must produce clean
//! errors or graceful termination — never panics from library internals or
//! infinite loops.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, ConvexHull, HullError, TriMesh, Vec3};

#[test]
fn unpackable_container_terminates_with_partial_result() {
    // A box that cannot hold even one sphere of the requested size.
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(0.5));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 8,
        target_count: 100,
        max_steps: 200,
        patience: 30,
        seed: 1,
        ..PackingParams::default()
    };
    // Radius 0.4 in a 0.5-wide box: no sphere fits.
    let result = CollectivePacker::new(container, params).pack(&Psd::constant(0.4));
    assert!(result.particles.is_empty(), "nothing should fit");
    assert!(!result.reached_target());
    assert!(
        result.batches.iter().all(|b| !b.accepted),
        "every batch must have been rejected"
    );
    // Batch halving drove the size to zero: 8 → 4 → 2 → 1 → stop.
    assert!(result.batches.len() <= 5);
}

#[test]
fn degenerate_meshes_error_cleanly() {
    // Fewer than 4 vertices.
    assert!(matches!(
        Container::from_points(&[Vec3::ZERO, Vec3::X, Vec3::Y]),
        Err(HullError::TooFewPoints(3))
    ));
    // Non-finite vertices.
    let bad = Container::from_points(&[Vec3::new(f64::NAN, 0.0, 0.0), Vec3::X, Vec3::Y, Vec3::Z]);
    assert!(bad.is_err());
}

#[test]
fn flat_mesh_rejected_or_sliver() {
    // A single flat triangle pair has no 3-D hull.
    let mesh = TriMesh::new(
        vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::new(1.0, 1.0, 0.0)],
        vec![[0, 1, 2], [1, 3, 2]],
    )
    .unwrap();
    match ConvexHull::from_mesh(&mesh) {
        Err(_) => {}
        Ok(h) => assert!(
            h.volume().abs() < 1e-6,
            "flat mesh produced volume {}",
            h.volume()
        ),
    }
}

#[test]
fn invalid_psd_parameters_panic_with_messages() {
    for f in [
        || Psd::constant(-0.1),
        || Psd::uniform(0.2, 0.1),
        || Psd::normal(0.03, 0.02), // 3σ crosses zero
    ] {
        let err = std::panic::catch_unwind(f).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(!msg.is_empty(), "panic should carry a message");
    }
}

#[test]
fn invalid_packing_params_rejected() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let bad = PackingParams {
        batch_size: 0,
        ..PackingParams::default()
    };
    assert!(std::panic::catch_unwind(move || { CollectivePacker::new(container, bad) }).is_err());
}

#[test]
fn yaml_config_errors_never_panic() {
    use adampack_config::PackingConfig;
    for src in [
        "",                                                                              // empty
        "container: 5",              // wrong type
        "container:\n  path: a.stl", // missing particle_sets
        "zones: nope",               // wrong type downstream
        "\tcontainer:",              // tab indentation
        "container:\n  path: a.stl\nparticle_sets:\n  - radius_distribution: uniform\n", // missing bounds
    ] {
        let _ = PackingConfig::from_str(src); // must return Err, not panic
    }
}

#[test]
fn rsa_on_impossible_problem_stops_quickly() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(0.5));
    let container = Container::from_mesh(&mesh).unwrap();
    let result = RsaPacker {
        max_attempts: 100,
        seed: 1,
    }
    .pack(&container, &Psd::constant(0.4), 10);
    assert!(result.particles.is_empty());
}

#[test]
fn empty_zone_region_fails_cleanly() {
    use adampack_geometry::Plane;
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    // Restrict to z >= 5: entirely outside the box.
    let cut = Plane::from_point_normal(Vec3::new(0.0, 0.0, 5.0), -Vec3::Z).unwrap();
    let empty = container.restricted(&[cut], container.aabb());
    assert!(empty.volume() < 1e-9);
    let result = std::panic::catch_unwind(move || {
        let _ = CollectivePacker::new(empty, PackingParams::default());
    });
    let err = result.expect_err("empty container must be rejected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("empty"), "panic message should explain: {msg}");
}

#[test]
fn zero_target_is_a_noop() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        target_count: 0,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container, params).pack(&Psd::constant(0.1));
    assert!(result.particles.is_empty());
    assert!(result.reached_target(), "0-target is trivially reached");
    assert!(result.batches.is_empty());
}
