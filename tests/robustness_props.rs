//! Property tests for the fault-tolerance layer's foundations: the
//! checkpoint codec must never panic on hostile bytes, the plateau
//! scheduler must survive arbitrary (including non-finite) loss streams
//! with its learning rate pinned inside `[min_lr, initial_lr]`, and
//! optimizer snapshots must restore the remaining trajectory bitwise —
//! these are exactly the invariants the divergence sentinel and the
//! resume path lean on.

use adampack_core::checkpoint::{self, RunState};
use adampack_core::prelude::*;
use adampack_geometry::Vec3;
use adampack_opt::{
    Adam, AdamConfig, LrScheduler, Optimizer, OptimizerState, ReduceLrOnPlateau,
    ReduceLrOnPlateauConfig,
};
use proptest::prelude::*;

/// A small but fully populated run state (mid-run, no in-progress batch)
/// used as the mutation target for codec robustness.
fn sample_state() -> RunState {
    RunState {
        seed: 42,
        params_fingerprint: 0xfeed_beef_dead_cafe,
        global_step: 1234,
        recoveries: 2,
        preexisting: 0,
        target: 80,
        batch_index: 1,
        packed: 40,
        batch_size: 40,
        elapsed_ns: 987_654_321,
        evals: 777,
        verlet_rebuilds: 9,
        rng: [1, 2, 3, 4],
        particles: (0..40)
            .map(|i| Particle::new(Vec3::new(i as f64 * 0.1, 0.5, 0.25), 0.1))
            .collect(),
        batches: Vec::new(),
        batch: None,
    }
}

proptest! {
    /// Feeding arbitrary bytes to the decoder must produce a typed error
    /// or a state — never a panic, never an out-of-bounds read (a torn
    /// checkpoint file on disk is exactly "arbitrary bytes").
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..512),
    ) {
        let _ = checkpoint::decode(&bytes);
    }

    /// Single-byte corruptions of a real checkpoint must never panic, and
    /// whenever the decoder does accept the bytes, re-encoding must be
    /// self-consistent (decode∘encode is the identity on accepted states).
    /// Corruption is *usually* rejected by the per-section CRCs; a flip in
    /// an already-skipped region (e.g. turning the optional batch section's
    /// tag into an unknown tag) may legitimately decode.
    #[test]
    fn corrupted_checkpoints_never_panic(at in 0usize..4096, xor in 1u32..=255) {
        let mut bytes = checkpoint::encode(&sample_state());
        let at = at % bytes.len();
        bytes[at] ^= xor as u8;
        if let Ok(state) = checkpoint::decode(&bytes) {
            let re = checkpoint::encode(&state);
            prop_assert_eq!(checkpoint::encode(&checkpoint::decode(&re).unwrap()), re);
        }
    }

    /// Truncation at every possible length must be rejected: the END
    /// footer catches cuts on section boundaries, the length/CRC headers
    /// catch cuts inside a section.
    #[test]
    fn truncations_are_always_rejected(frac in 0.0f64..1.0) {
        let bytes = checkpoint::encode(&sample_state());
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// The plateau scheduler under an arbitrary metric stream — finite
    /// values, NaNs, ±∞, denormals, anything `f64` can encode — must keep
    /// its learning rate finite and inside `[min_lr, initial_lr]`, and its
    /// best-metric memory must never be poisoned by a non-finite value.
    /// (The divergence sentinel calls `force_reduction` on this machinery
    /// mid-recovery; a NaN leaking into `best` would disable every future
    /// reduction.)
    #[test]
    fn plateau_survives_hostile_metric_streams(
        bits in proptest::collection::vec(0u64..=u64::MAX, 1..200),
    ) {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1e-2,
            factor: 0.5,
            patience: 3,
            min_lr: 1e-5,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut sched = ReduceLrOnPlateau::new(cfg);
        for (i, &b) in bits.iter().enumerate() {
            let metric = f64::from_bits(b);
            let lr = sched.step(metric);
            prop_assert!(lr.is_finite(), "step {i}: lr {lr} not finite");
            prop_assert!((cfg.min_lr..=cfg.initial_lr).contains(&lr), "step {i}: lr {lr} out of range");
            prop_assert!(!sched.best().is_nan(), "step {i}: best poisoned by {metric}");
            // The sentinel's recovery hook obeys the same bounds.
            if i % 7 == 3 {
                let forced = sched.force_reduction();
                prop_assert!((cfg.min_lr..=cfg.initial_lr).contains(&forced));
            }
        }
    }

    /// Scheduler snapshots restore the remaining schedule bitwise: run a
    /// prefix, snapshot, then feed the identical suffix to the original
    /// and to a freshly configured scheduler loaded from the snapshot.
    #[test]
    fn plateau_snapshot_restores_remaining_schedule_bitwise(
        prefix in proptest::collection::vec(0.0f64..100.0, 0..50),
        suffix in proptest::collection::vec(0u64..=u64::MAX, 1..50),
    ) {
        let cfg = ReduceLrOnPlateauConfig {
            initial_lr: 1e-2,
            factor: 0.5,
            patience: 2,
            min_lr: 1e-5,
            ..ReduceLrOnPlateauConfig::default()
        };
        let mut original = ReduceLrOnPlateau::new(cfg);
        for &m in &prefix {
            original.step(m);
        }
        let snap = original.save_state();
        let mut restored = ReduceLrOnPlateau::new(cfg);
        restored.load_state(snap);
        for &b in &suffix {
            let metric = f64::from_bits(b);
            let a = original.step(metric);
            let c = restored.step(metric);
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    /// Adam/AMSGrad snapshots restore the remaining trajectory bitwise and
    /// the saved slots stay finite under finite gradients — the exact
    /// invariant the sentinel's rollback relies on (restoring non-finite
    /// moments would re-diverge immediately).
    #[test]
    fn adam_snapshot_restores_remaining_trajectory_bitwise(
        amsgrad in (0u32..2).prop_map(|b| b == 1),
        grads in proptest::collection::vec(-10.0f64..10.0, 24..96),
    ) {
        let n = 8;
        let cfg = AdamConfig { amsgrad, ..AdamConfig::default() };
        let mut original = Adam::new(cfg, n);
        let mut params_a: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let steps: Vec<&[f64]> = grads.chunks_exact(n).collect();
        let split = steps.len() / 2;
        for g in &steps[..split] {
            original.step(&mut params_a, g);
        }
        let mut snap = OptimizerState::default();
        original.save_state(&mut snap);
        prop_assert!(snap.is_finite(), "finite gradients must keep slots finite");

        let mut restored = Adam::new(cfg, n);
        let mut params_b = params_a.clone();
        restored.load_state(&snap).unwrap();
        for g in &steps[split..] {
            original.step(&mut params_a, g);
            restored.step(&mut params_b, g);
        }
        for (a, b) in params_a.iter().zip(&params_b) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(original.steps_taken(), restored.steps_taken());
    }

    /// Loading a shape-mismatched snapshot is a typed error, not a panic
    /// or a silent partial restore.
    #[test]
    fn mismatched_snapshots_are_rejected(n in 1usize..16, m in 1usize..16) {
        prop_assume!(n != m);
        let donor = Adam::new(AdamConfig::default(), n);
        let mut snap = OptimizerState::default();
        donor.save_state(&mut snap);
        let mut receiver = Adam::new(AdamConfig::default(), m);
        prop_assert!(receiver.load_state(&snap).is_err());
    }
}
