//! End-to-end tests for the packing job server (`crates/server`):
//!
//! * **Cache correctness** — a submitted job's artifact is byte-identical
//!   to the same config run directly through `run_pack_opts`, and a
//!   duplicate submission is answered from the cache (`outcome: hit`)
//!   with the same bytes.
//! * **Coalescing + cancel** — duplicate submissions of an in-flight job
//!   coalesce onto one run; cancel takes a queued job out of the queue.
//! * **Fair-share preemption** — a short job submitted behind a long one
//!   completes without waiting for it, and the preempted long job still
//!   finishes bitwise identical to a never-preempted run (checkpoint-
//!   shaped preemption at exact batch boundaries).
//! * **Crash recovery** — a SIGKILL-shaped worker death (in-process via
//!   the `server.worker.crash` failpoint) leaves the rotating disk
//!   checkpoints behind; a fresh server on the same data dir resumes the
//!   resubmitted job from the newest *valid* checkpoint (the newest file
//!   is corrupted on purpose) and produces byte-identical output.
//!
//! Servers bind `127.0.0.1:0`. The process-global failpoint registry and
//! telemetry counters serialize the tests on one mutex.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use adampack_cli::{run_pack_opts, PackOptions};
use adampack_geometry::{shapes, Vec3};
use adampack_io::{checkpoint_candidates, write_stl_ascii};
use adampack_server::{client, ServeOptions, Server, ServerHandle, FAILPOINT_WORKER_CRASH};

static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let guard = SERVER_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoints::reset();
    guard
}

/// A fresh per-test directory holding the container asset; configs and
/// server data live under it too.
fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adampack_server_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
    let f = std::fs::File::create(dir.join("box.stl")).unwrap();
    write_stl_ascii(std::io::BufWriter::new(f), &mesh, "box").unwrap();
    dir
}

/// A servable single-set config in the unit box; `radius` controls run
/// length through the capacity estimate (larger radius = fewer
/// particles = faster job).
fn config(radius: f64, seed: u64) -> String {
    format!(
        r#"
container:
    path: "box.stl"
algorithm: "COLLECTIVE_ARRANGEMENT"
params:
    lr: 0.01
    n_epoch: 300
    patience: 30
    batch_size: 40
    seed: {seed}
particle_sets:
    - radius_distribution: "constant"
      radius_value: {radius}
"#
    )
}

fn serve(dir: &Path, opts_fn: impl FnOnce(&mut ServeOptions)) -> ServerHandle {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        http_threads: 1,
        queue_shards: 4,
        data_dir: dir.join("data"),
        config_base: dir.to_path_buf(),
        slice_ms: 3_000,
        checkpoint_every: 100,
        keep_last: 3,
        limits: Default::default(),
    };
    opts_fn(&mut opts);
    Server::start(opts).unwrap()
}

/// The reference bytes: the same config run directly through the CLI
/// runner with `--out <csv>`.
fn direct_csv(dir: &Path, yaml: &str, tag: &str) -> Vec<u8> {
    let cfg_path = dir.join(format!("{tag}.yaml"));
    std::fs::write(&cfg_path, yaml).unwrap();
    let out = dir.join(format!("{tag}.csv"));
    let opts = PackOptions {
        out: Some(out.clone()),
        ..PackOptions::default()
    };
    run_pack_opts(&cfg_path, &opts).unwrap();
    std::fs::read(&out).unwrap()
}

/// Submits and asserts HTTP 200, returning `(address, outcome)`.
fn submit_ok(addr: std::net::SocketAddr, yaml: &str) -> (String, String) {
    let (code, body) = client::submit(addr, yaml).unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    (
        client::json_str_field(&body, "address").unwrap(),
        client::json_str_field(&body, "outcome").unwrap(),
    )
}

/// Reads an integer field out of a flat JSON object body.
fn json_u64_field(body: &[u8], field: &str) -> Option<u64> {
    let s = std::str::from_utf8(body).ok()?;
    let needle = format!("\"{field}\":");
    let start = s.find(&needle)? + needle.len();
    let digits: String = s[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Scrapes one counter value from `/metrics`.
fn metric(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (code, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} not in metrics:\n{text}"))
}

#[test]
fn artifact_matches_direct_run_and_duplicates_hit_the_cache() {
    let _g = guard();
    let dir = test_dir("bytes");
    let yaml = config(0.16, 7);
    let reference = direct_csv(&dir, &yaml, "direct");

    let server = serve(&dir, |_| {});
    let addr = server.addr();
    let hits_before = metric(addr, "adampack_server_cache_hits_total");

    let (hex, outcome) = submit_ok(addr, &yaml);
    assert_eq!(outcome, "scheduled");
    assert_eq!(
        client::wait_terminal(addr, &hex, Duration::from_secs(120)).unwrap(),
        "done"
    );
    let artifact = client::artifact(addr, &hex).unwrap();
    assert!(!artifact.is_empty());
    assert_eq!(
        artifact, reference,
        "server artifact differs from direct run"
    );

    // A semantically-equal spelling — keys reordered, defaults spelled
    // out, a different thread count and an explicit sweep order — must
    // hash to the same address and be answered from the cache.
    let respelled = r#"
algorithm: "COLLECTIVE_ARRANGEMENT"
particle_sets:
    - radius_value: 0.16
      radius_distribution: "constant"
container:
    path: "box.stl"
neighbor:
    order: "morton"
params:
    seed: 7
    batch_size: 40
    patience: 30
    n_epoch: 300
    lr: 0.01
    threads: 3
"#;
    let (hex2, outcome2) = submit_ok(addr, respelled);
    assert_eq!(hex2, hex, "equivalent configs must share one address");
    assert_eq!(outcome2, "hit");
    assert_eq!(client::artifact(addr, &hex2).unwrap(), reference);
    assert!(metric(addr, "adampack_server_cache_hits_total") > hits_before);

    // Restarting on the same data dir serves the artifact from disk
    // without recomputing anything.
    server.shutdown();
    let server = serve(&dir, |_| {});
    let (hex3, outcome3) = submit_ok(server.addr(), &yaml);
    assert_eq!(hex3, hex);
    assert_eq!(outcome3, "hit");
    assert_eq!(client::artifact(server.addr(), &hex3).unwrap(), reference);
    server.shutdown();
}

#[test]
fn requests_are_validated_and_duplicates_coalesce_until_cancelled() {
    let _g = guard();
    let dir = test_dir("coalesce");
    let server = serve(&dir, |o| o.workers = 1);
    let addr = server.addr();

    // Validation: malformed YAML, non-servable algorithm, bad addresses.
    let (code, _) = client::submit(addr, ": not yaml").unwrap();
    assert_eq!(code, 400);
    let (code, body) = client::submit(
        addr,
        &config(0.16, 1).replace("COLLECTIVE_ARRANGEMENT", "RSA"),
    )
    .unwrap();
    assert_eq!(code, 400, "{}", String::from_utf8_lossy(&body));
    let (code, _) = client::get(addr, "/jobs/zzzz").unwrap();
    assert_eq!(code, 400);
    let (code, _) = client::get(addr, "/jobs/00000000deadbeef").unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(code, 200);

    // Two slow jobs on one worker: the second stays queued, duplicates
    // of either coalesce instead of scheduling twice.
    let busy = config(0.11, 21);
    let queued = config(0.11, 22);
    let (busy_hex, o1) = submit_ok(addr, &busy);
    assert_eq!(o1, "scheduled");
    let (_, o2) = submit_ok(addr, &queued);
    assert_eq!(o2, "scheduled");
    let (queued_hex, o3) = submit_ok(addr, &queued);
    assert_eq!(o3, "coalesced");
    assert_ne!(busy_hex, queued_hex, "different seeds are different jobs");

    // Cancel the queued job: it must go terminal without an artifact.
    let (code, body) = client::post(addr, &format!("/jobs/{queued_hex}/cancel"), b"").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    let status = client::wait_terminal(addr, &queued_hex, Duration::from_secs(60)).unwrap();
    assert_eq!(status, "cancelled");
    let (code, _) = client::get(addr, &format!("/jobs/{queued_hex}/artifact")).unwrap();
    assert_eq!(code, 404, "a cancelled job has no artifact");

    // The busy job is unaffected.
    assert_eq!(
        client::wait_terminal(addr, &busy_hex, Duration::from_secs(120)).unwrap(),
        "done"
    );
    server.shutdown();
}

#[test]
fn fair_share_preempts_the_long_job_without_changing_its_bytes() {
    let _g = guard();
    let dir = test_dir("preempt");
    let long = config(0.105, 3);
    let short = config(0.18, 5);
    let reference = direct_csv(&dir, &long, "long_solo");

    // One worker, tiny slice: the long job must yield at a batch
    // boundary once the short job is waiting behind it.
    let server = serve(&dir, |o| {
        o.workers = 1;
        o.slice_ms = 10;
    });
    let addr = server.addr();
    let (long_hex, _) = submit_ok(addr, &long);

    // Wait until the long job actually owns the worker.
    let t0 = Instant::now();
    loop {
        let (_, body) = client::get(addr, &format!("/jobs/{long_hex}")).unwrap();
        if client::json_str_field(&body, "status").as_deref() == Some("running") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "long job never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let (short_hex, _) = submit_ok(addr, &short);
    assert_eq!(
        client::wait_terminal(addr, &short_hex, Duration::from_secs(120)).unwrap(),
        "done"
    );

    // The moment the short job finished, the long one must still be in
    // flight — it was preempted, not waited out.
    let (_, body) = client::get(addr, &format!("/jobs/{long_hex}")).unwrap();
    let long_status = client::json_str_field(&body, "status").unwrap();
    assert!(
        long_status == "running" || long_status == "queued",
        "short job should finish while the long one is still {long_status}"
    );

    assert_eq!(
        client::wait_terminal(addr, &long_hex, Duration::from_secs(300)).unwrap(),
        "done"
    );
    let (_, body) = client::get(addr, &format!("/jobs/{long_hex}")).unwrap();
    let preemptions = json_u64_field(&body, "preemptions").unwrap();
    assert!(
        preemptions >= 1,
        "long job was never preempted: {body:?}",
        body = String::from_utf8_lossy(&body)
    );

    // Preemption is invisible in the artifact.
    assert_eq!(
        client::artifact(addr, &long_hex).unwrap(),
        reference,
        "preempted run must be bitwise identical to the solo run"
    );
    server.shutdown();
}

#[test]
fn killed_worker_resumes_from_newest_valid_checkpoint_with_identical_bytes() {
    let _g = guard();
    let dir = test_dir("crash");
    let yaml = config(0.12, 11);
    let reference = direct_csv(&dir, &yaml, "solo");

    // Dense checkpoint cadence: every batch boundary qualifies for a save,
    // so surviving a few boundaries leaves a rotation of generations.
    let server = serve(&dir, |o| o.checkpoint_every = 5);
    let addr = server.addr();

    // Crash the worker at the third batch boundary (each earlier boundary
    // wrote a checkpoint): the job stays marked running with its disk
    // rotation intact — exactly a SIGKILL.
    failpoints::arm(FAILPOINT_WORKER_CRASH, 2, 1);
    let (hex, outcome) = submit_ok(addr, &yaml);
    assert_eq!(outcome, "scheduled");
    let t0 = Instant::now();
    while failpoints::hits(FAILPOINT_WORKER_CRASH) == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "crash failpoint never hit"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    failpoints::reset();
    server.shutdown();

    // The dead worker left a rotation of checkpoints; corrupt the newest
    // so resume must fall back to an older valid generation.
    let ckpt = dir.join("data").join("jobs").join(format!("{hex}.ckpt"));
    let candidates = checkpoint_candidates(&ckpt, 3);
    assert!(
        candidates.len() >= 2,
        "expected a checkpoint rotation, got {candidates:?}"
    );
    let mut bytes = std::fs::read(&candidates[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&candidates[0], &bytes).unwrap();

    // A fresh server on the same data dir resumes the resubmitted job
    // from disk and finishes byte-identical to the uninterrupted run.
    let server = serve(&dir, |_| {});
    let addr = server.addr();
    let resumed_before = metric(addr, "adampack_server_jobs_resumed_total");
    let (hex2, outcome2) = submit_ok(addr, &yaml);
    assert_eq!(hex2, hex, "same config, same address across restarts");
    assert_eq!(outcome2, "scheduled", "no artifact yet, so the job reruns");
    assert_eq!(
        client::wait_terminal(addr, &hex2, Duration::from_secs(300)).unwrap(),
        "done"
    );
    assert!(
        metric(addr, "adampack_server_jobs_resumed_total") > resumed_before,
        "the job must resume from disk, not restart"
    );
    assert_eq!(
        client::artifact(addr, &hex2).unwrap(),
        reference,
        "resumed run must be bitwise identical to the uninterrupted run"
    );
    server.shutdown();
}
