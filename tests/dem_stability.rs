//! Fitness-for-purpose: packings are meant to be *DEM initial conditions*
//! (the paper's raison d'être). A good initial bed dropped into a DEM
//! simulation must already be near mechanical equilibrium: energy bounded
//! and decaying, no ejections, minimal subsidence. A deliberately bad
//! initial condition (spheres floating mid-air) must visibly collapse —
//! confirming the test can tell the difference.

use adampack_core::prelude::*;
use adampack_dem::{DemParams, DemSimulation};
use adampack_geometry::{shapes, Vec3};

fn dem_params() -> DemParams {
    DemParams {
        kn: 1e4,
        dt: 2e-5,
        ..DemParams::default()
    }
}

#[test]
fn packed_bed_is_near_equilibrium() {
    let mesh = shapes::box_mesh(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 50,
        target_count: 100,
        max_steps: 800,
        patience: 60,
        seed: 21,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&Psd::uniform(0.09, 0.13));
    assert!(result.particles.len() >= 60);

    let mut sim = DemSimulation::new(
        &result.particles,
        container.halfspaces().clone(),
        dem_params(),
    );
    // Relax residual optimizer overlaps first (the optional XProtoSphere-
    // style pass), then settle under gravity.
    sim.relax_overlaps(0.005, 30_000);
    let bed0 = sim.stats().bed_height;
    sim.run(40_000); // 0.8 s of simulated time
    let s = sim.stats();

    // The bed subsides but must not collapse. At this test's tiny scale
    // (100 spheres, ~5 layers) the loose top layer compacts by ~25–30 % of
    // the bed height regardless of optimizer trajectory; the negative
    // control below falls by far more than that. The bound is deliberately
    // insensitive to floating-point summation order, which shifts the
    // packed configuration between otherwise-equivalent pipelines.
    let drop = bed0 - s.bed_height;
    assert!(
        drop < 0.35 * bed0,
        "bed collapsed by {drop:.3} from height {bed0:.3} — not a valid initial condition"
    );
    // Nothing ejected through the walls.
    for (k, &p) in sim.positions().iter().enumerate() {
        let excess = container.halfspaces().sphere_max_excess(p, sim.radii()[k]);
        assert!(excess < 0.05, "particle {k} escaped by {excess}");
    }
    // Energy decays towards rest.
    let ke_mid = s.kinetic_energy;
    sim.run(40_000);
    let ke_end = sim.stats().kinetic_energy;
    assert!(
        ke_end < ke_mid.max(1e-12) * 1.5,
        "energy must not grow: {ke_mid:.3e} → {ke_end:.3e}"
    );
}

#[test]
fn floating_configuration_visibly_collapses() {
    // Negative control: the same test instrumentation must detect a bad
    // initial condition. Spheres hanging mid-air fall by a macroscopic
    // distance.
    let mesh = shapes::box_mesh(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let floating: Vec<Particle> = (0..9)
        .map(|i| {
            Particle::new(
                Vec3::new(
                    -0.6 + 0.6 * (i % 3) as f64,
                    -0.6 + 0.6 * (i / 3) as f64,
                    1.5, // hanging high above the floor
                ),
                0.1,
            )
        })
        .collect();
    let mut sim = DemSimulation::new(&floating, container.halfspaces().clone(), dem_params());
    let z0: f64 = sim.positions().iter().map(|p| p.z).sum::<f64>() / 9.0;
    sim.run(40_000);
    let z1: f64 = sim.positions().iter().map(|p| p.z).sum::<f64>() / 9.0;
    assert!(
        z0 - z1 > 0.5,
        "floating spheres should have fallen: {z0:.2} → {z1:.2}"
    );
}

#[test]
fn relaxation_removes_residual_overlaps_of_a_packing() {
    let mesh = shapes::box_mesh(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 40,
        target_count: 80,
        max_steps: 600,
        patience: 50,
        seed: 31,
        // Deliberately sloppy acceptance so overlaps remain for the DEM to fix.
        accept_mean_overlap: 0.08,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&Psd::constant(0.12));
    let mut sim = DemSimulation::new(
        &result.particles,
        container.halfspaces().clone(),
        dem_params(),
    );
    let before = sim.stats().max_overlap_ratio;
    let after = sim.relax_overlaps(0.004, 60_000);
    assert!(after <= before + 1e-12);
    assert!(
        after < 0.004 || after < before * 0.5,
        "relaxation ineffective: {before} → {after}"
    );
}
