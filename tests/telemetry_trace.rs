//! End-to-end convergence-trace audit: a small packing with a JSONL sink
//! must emit exactly one record per optimizer step, with batch indices
//! non-decreasing, step indices counting up from zero within each batch,
//! and every line round-tripping through the schema parser. This is the
//! data needed to re-plot the paper's Fig. 3 loss-vs-step curves.

use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use adampack_telemetry::{JsonlWriter, StepRecord};

fn run_traced(path: &std::path::Path) -> PackResult {
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let params = PackingParams {
        batch_size: 30,
        target_count: 60,
        max_steps: 400,
        patience: 40,
        seed: 11,
        ..PackingParams::default()
    };
    let psd = Psd::uniform(0.1, 0.14);
    let mut packer = CollectivePacker::new(container, params);
    let file = std::fs::File::create(path).unwrap();
    packer.set_trace_sink(Box::new(JsonlWriter::new(std::io::BufWriter::new(file))));
    let result = packer.pack(&psd);
    // Dropping the sink flushes the buffered writer.
    drop(packer.take_trace_sink());
    result
}

#[test]
fn traced_pack_emits_one_record_per_step() {
    let path = std::env::temp_dir().join("adampack_telemetry_trace.jsonl");
    let result = run_traced(&path);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let records: Vec<StepRecord> = text
        .lines()
        .map(|line| StepRecord::parse(line).expect("every trace line parses"))
        .collect();

    // One record per optimizer step, counting rejected batch attempts too.
    let total_steps: usize = result.batches.iter().map(|b| b.steps).sum();
    assert_eq!(records.len(), total_steps, "one trace record per step");
    assert!(total_steps > 0, "the packing must have taken steps");

    // Batch indices non-decreasing; step indices restart at 0 and increment
    // by one within a batch — enough to segment the stream downstream.
    let mut prev: Option<(u64, u64)> = None;
    for r in &records {
        match prev {
            None => assert_eq!(r.step, 0, "first record starts at step 0"),
            Some((pb, ps)) if r.batch == pb => {
                assert_eq!(r.step, ps + 1, "steps are consecutive within a batch")
            }
            Some((pb, _)) => {
                assert!(r.batch > pb, "batch indices never go backwards");
                assert_eq!(r.step, 0, "each batch restarts at step 0");
            }
        }
        prev = Some((r.batch, r.step));
    }

    // The fields a Fig. 3 plot needs are populated and sane.
    for r in &records {
        assert!(r.loss.is_finite(), "loss is finite");
        assert!(r.lr > 0.0, "lr stays positive");
        assert!(r.grad_norm >= 0.0);
        assert!(r.max_disp >= 0.0);
        // The loss terms are the paper's unweighted P, A and E_H values:
        // penetrations and exterior distance are non-negative, altitude is
        // a raw coordinate sum (any sign). All must be finite.
        assert!(r.penetration_intra >= 0.0 && r.penetration_intra.is_finite());
        assert!(r.penetration_cross >= 0.0 && r.penetration_cross.is_finite());
        assert!(r.exterior >= 0.0 && r.exterior.is_finite());
        assert!(r.altitude.is_finite());
    }
}

#[test]
fn trace_round_trips_through_writer_and_parser() {
    let record = StepRecord {
        batch: 3,
        step: 17,
        loss: 1.25,
        penetration_intra: 0.5,
        penetration_cross: 0.25,
        altitude: 0.4,
        exterior: 0.1,
        grad_norm: 2.5e-3,
        lr: 1e-2,
        max_disp: 4.0e-4,
        verlet_rebuilds: 2,
    };
    let mut line = String::new();
    record.write_json(&mut line);
    assert_eq!(StepRecord::parse(&line).unwrap(), record);
}
