//! Container-shaped density measurement: the generic sphere∩hull probe
//! (`metrics::container_density`) against analytic expectations on
//! non-box containers — the geometry the Fig. 11 blast-furnace density
//! claims rely on.

use adampack_core::metrics::{container_density, core_density};
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};
use adampack_overlap::{sphere_hull_overlap, sphere_volume};

#[test]
fn container_density_of_known_configuration_in_cone() {
    let mesh = shapes::cone(1.0, 2.0, 64, false); // apex at z=0, widens up
    let container = Container::from_mesh(&mesh).unwrap();
    // One sphere fully inside the wide top region.
    let particles = vec![Particle::new(Vec3::new(0.0, 0.0, 1.6), 0.2)];
    let d = container_density(&particles, &container);
    let expect = sphere_volume(0.2) / container.volume();
    assert!((d - expect).abs() < 1e-9, "d = {d}, expect = {expect}");
}

#[test]
fn hull_probe_discounts_outside_parts() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    // Sphere centred on a face: only half its volume is inside.
    let particles = vec![Particle::new(Vec3::new(1.0, 0.0, 0.0), 0.3)];
    let d = container_density(&particles, &container);
    let expect = sphere_volume(0.3) / 2.0 / 8.0;
    assert!((d - expect).abs() < 1e-7, "d = {d}, expect = {expect}");
}

#[test]
fn packed_cylinder_density_consistent_between_probes() {
    // Pack a cylinder and compare the (box) core probe with the exact
    // container probe: the container probe includes wall voids so it reads
    // lower, but both must land in a sane band and ordering.
    let mesh = shapes::cylinder(1.0, 2.0, 48);
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 300,
        target_count: 2_000, // to capacity
        max_steps: 1_000,
        patience: 50,
        seed: 2,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&Psd::constant(0.12));
    assert!(
        result.particles.len() > 150,
        "packed {}",
        result.particles.len()
    );

    let d_container = container_density(&result.particles, &container);
    assert!(
        (0.40..0.70).contains(&d_container),
        "whole-container density = {d_container}"
    );
    // Core probe over the inscribed box of the cylinder (side √2·R), away
    // from walls: at least as dense as the whole container.
    let half = 1.0 / 2.0f64.sqrt() * 0.9;
    let core_box =
        adampack_geometry::Aabb::new(Vec3::new(-half, -half, 0.3), Vec3::new(half, half, 1.2));
    let probe = adampack_overlap::DensityProbe::new(core_box);
    let d_core = probe.density(result.particles.iter().map(|p| (p.center, p.radius)));
    assert!(
        d_core > d_container - 0.02,
        "core {d_core} should not be sparser than whole container {d_container}"
    );
}

#[test]
fn hull_overlap_agrees_with_box_overlap_on_packings() {
    // Cross-validate the two exact kernels particle-by-particle on a real
    // packing in a box container.
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 60,
        target_count: 120,
        max_steps: 600,
        patience: 50,
        seed: 4,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&Psd::uniform(0.09, 0.13));
    let aabb = container.aabb();
    for p in &result.particles {
        let via_hull = sphere_hull_overlap(p.center, p.radius, container.halfspaces(), &aabb);
        let via_box = adampack_overlap::sphere_aabb_overlap(p.center, p.radius, &aabb);
        assert!(
            (via_hull - via_box).abs() < 1e-7 * via_box.max(1e-9),
            "kernels disagree at {}: {via_hull} vs {via_box}",
            p.center
        );
    }
    // And therefore the two density figures agree on a box.
    let d1 = container_density(&result.particles, &container);
    let probe = adampack_overlap::DensityProbe::new(aabb);
    let d2 = probe.density(result.particles.iter().map(|p| (p.center, p.radius)));
    assert!((d1 - d2).abs() < 1e-7, "{d1} vs {d2}");
    // The core probe runs without error on the same data (its value is not
    // comparable here: the box is only part-filled, so the centred inner
    // box straddles the bed's free surface).
    let d_core = core_density(&result.particles, &aabb, 1.0 / 3.0);
    assert!(d_core.is_finite() && d_core >= 0.0);
}
