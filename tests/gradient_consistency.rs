//! Gradient cross-validation: the hand-derived analytic gradients in
//! `adampack-core` must agree with (a) the reverse-mode autograd engine
//! built as the PyTorch substitute and (b) central finite differences, on
//! randomized configurations exercising every objective term.

use adampack_autograd::{gradient_check, Graph, Var};
use adampack_core::neighbor::{CsrGrid, NeighborStrategy, Workspace};
use adampack_core::objective::{Objective, ObjectiveWeights};
use adampack_core::{Container, Kernel};
use adampack_geometry::{shapes, Axis, Vec3};
use proptest::prelude::*;

/// Builds the full objective (5) on the autograd tape for a batch of
/// spheres against fixed spheres and box planes, and returns value +
/// gradients w.r.t. the batch coordinates.
fn autograd_objective(
    coords: &[f64],
    radii: &[f64],
    fixed: &[(Vec3, f64)],
    planes: &[[f64; 4]],
    w: ObjectiveWeights,
) -> (f64, Vec<f64>) {
    let n = radii.len();
    let mut g = Graph::new();
    let vars: Vec<Var> = coords.iter().map(|&c| g.var(c)).collect();
    let mut terms: Vec<Var> = Vec::new();

    // Intra penetration: ordered pairs (i, j), i ≠ j.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = g.sub(vars[3 * i], vars[3 * j]);
            let dy = g.sub(vars[3 * i + 1], vars[3 * j + 1]);
            let dz = g.sub(vars[3 * i + 2], vars[3 * j + 2]);
            let dist = g.norm3(dx, dy, dz);
            let delta = g.add_const(dist, -(radii[i] + radii[j]));
            let dminus = g.min_zero(delta);
            let p = g.neg(dminus);
            let weighted = g.mul_const(p, w.alpha);
            terms.push(weighted);
        }
    }
    // Cross penetration: batch i against fixed k, once per pair.
    for i in 0..n {
        for &(cf, rf) in fixed {
            let cx = g.constant(cf.x);
            let cy = g.constant(cf.y);
            let cz = g.constant(cf.z);
            let dx = g.sub(vars[3 * i], cx);
            let dy = g.sub(vars[3 * i + 1], cy);
            let dz = g.sub(vars[3 * i + 2], cz);
            let dist = g.norm3(dx, dy, dz);
            let delta = g.add_const(dist, -(radii[i] + rf));
            let dminus = g.min_zero(delta);
            let p = g.neg(dminus);
            let weighted = g.mul_const(p, w.alpha);
            terms.push(weighted);
        }
    }
    // Exterior distance: Σᵢ Σₖ max(0, ρ̃ᵢₖ) with unit-normal plane rows.
    for i in 0..n {
        for row in planes {
            let ax = g.mul_const(vars[3 * i], row[0]);
            let by = g.mul_const(vars[3 * i + 1], row[1]);
            let cz = g.mul_const(vars[3 * i + 2], row[2]);
            let s1 = g.add(ax, by);
            let s2 = g.add(s1, cz);
            let rho = g.add_const(s2, row[3] + radii[i]);
            let hinge = g.relu(rho);
            let weighted = g.mul_const(hinge, w.gamma);
            terms.push(weighted);
        }
    }
    // Altitude along +z.
    for i in 0..n {
        let weighted = g.mul_const(vars[3 * i + 2], w.beta);
        terms.push(weighted);
    }

    let z = g.sum(&terms);
    let grads = g.backward(z);
    let grad: Vec<f64> = vars.iter().map(|v| grads.wrt(*v)).collect();
    (g.value(z), grad)
}

fn setup() -> (Container, Vec<(Vec3, f64)>, CsrGrid) {
    let container = Container::from_mesh(&shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0))).unwrap();
    let fixed_spheres = vec![
        (Vec3::new(0.0, 0.0, -0.7), 0.25),
        (Vec3::new(0.4, 0.2, -0.65), 0.2),
        (Vec3::new(-0.3, -0.4, -0.7), 0.22),
    ];
    let centers: Vec<Vec3> = fixed_spheres.iter().map(|s| s.0).collect();
    let radii: Vec<f64> = fixed_spheres.iter().map(|s| s.1).collect();
    let grid = CsrGrid::build(&centers, &radii);
    (container, fixed_spheres, grid)
}

#[test]
fn analytic_equals_autograd_on_dense_configuration() {
    let (container, fixed_spheres, grid) = setup();
    let radii = [0.3, 0.25, 0.35, 0.2];
    let coords = vec![
        0.1, 0.05, -0.45, // overlaps the bed
        0.35, 0.1, -0.3, // overlaps particle 0
        0.85, 0.8, 0.9, // pokes out of the corner
        -0.2, 0.3, -0.35,
    ];
    let w = ObjectiveWeights::default();
    let obj = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid);
    let mut grad = vec![0.0; coords.len()];
    let v_analytic = obj.value_and_grad(&coords, &mut grad);

    let planes = container.halfspaces().coefficient_rows();
    let (v_auto, g_auto) = autograd_objective(&coords, &radii, &fixed_spheres, &planes, w);

    assert!(
        (v_analytic - v_auto).abs() < 1e-9 * v_auto.abs().max(1.0),
        "values differ: analytic {v_analytic} vs autograd {v_auto}"
    );
    for (i, (a, b)) in grad.iter().zip(&g_auto).enumerate() {
        assert!(
            (a - b).abs() < 1e-9 * b.abs().max(1.0),
            "gradient {i}: analytic {a} vs autograd {b}"
        );
    }
}

#[test]
fn verlet_path_equals_autograd_on_dense_configuration() {
    // Same configuration as above, evaluated through the Verlet-list
    // workspace pipeline: the amortized pair search must not change the
    // analytic gradient.
    let (container, fixed_spheres, grid) = setup();
    let radii = [0.3, 0.25, 0.35, 0.2];
    let coords = vec![
        0.1, 0.05, -0.45, 0.35, 0.1, -0.3, 0.85, 0.8, 0.9, -0.2, 0.3, -0.35,
    ];
    let w = ObjectiveWeights::default();
    let obj = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid)
        .with_neighbor(NeighborStrategy::Verlet, 0.1);
    let mut ws = Workspace::new();
    let mut grad = vec![0.0; coords.len()];
    let v_analytic = obj.value_and_grad_ws(&coords, &mut grad, &mut ws);

    let planes = container.halfspaces().coefficient_rows();
    let (v_auto, g_auto) = autograd_objective(&coords, &radii, &fixed_spheres, &planes, w);

    assert!(
        (v_analytic - v_auto).abs() < 1e-9 * v_auto.abs().max(1.0),
        "values differ: verlet {v_analytic} vs autograd {v_auto}"
    );
    for (i, (a, b)) in grad.iter().zip(&g_auto).enumerate() {
        assert!(
            (a - b).abs() < 1e-9 * b.abs().max(1.0),
            "gradient {i}: verlet {a} vs autograd {b}"
        );
    }

    // Finite differences on the same Verlet pipeline.
    let f = |x: &[f64]| {
        Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid)
            .with_neighbor(NeighborStrategy::Verlet, 0.1)
            .value(x)
    };
    let worst = adampack_autograd::gradient_check(f, &coords, &grad, 1e-6);
    assert!(worst < 1e-5, "worst relative discrepancy {worst}");
}

#[test]
fn simd_kernel_equals_autograd_explicitly() {
    // The other tests cover the vectorized objective implicitly (SIMD is
    // the default kernel); this one pins both kernels explicitly so the
    // cross-validation against the tape survives a change of default.
    let (container, fixed_spheres, grid) = setup();
    let radii = [0.3, 0.25, 0.35, 0.2];
    let coords = vec![
        0.1, 0.05, -0.45, 0.35, 0.1, -0.3, 0.85, 0.8, 0.9, -0.2, 0.3, -0.35,
    ];
    let w = ObjectiveWeights::default();
    let planes = container.halfspaces().coefficient_rows();
    let (v_auto, g_auto) = autograd_objective(&coords, &radii, &fixed_spheres, &planes, w);

    for kernel in [Kernel::Simd, Kernel::Scalar] {
        let obj =
            Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid).with_kernel(kernel);
        let mut grad = vec![0.0; coords.len()];
        let v = obj.value_and_grad(&coords, &mut grad);
        assert!(
            (v - v_auto).abs() < 1e-9 * v_auto.abs().max(1.0),
            "{kernel}: value {v} vs autograd {v_auto}"
        );
        for (i, (a, b)) in grad.iter().zip(&g_auto).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * b.abs().max(1.0),
                "{kernel}: gradient {i}: {a} vs autograd {b}"
            );
        }
    }
}

#[test]
fn analytic_matches_finite_differences() {
    let (container, _, grid) = setup();
    let radii = [0.3, 0.25];
    let coords = vec![0.1, 0.0, -0.5, 0.45, 0.05, -0.4];
    let w = ObjectiveWeights::default();
    let obj = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid);
    let mut grad = vec![0.0; 6];
    obj.value_and_grad(&coords, &mut grad);
    let f = |x: &[f64]| Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid).value(x);
    let worst = gradient_check(f, &coords, &grad, 1e-6);
    assert!(worst < 1e-5, "worst relative discrepancy {worst}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_configurations_agree(
        positions in prop::collection::vec(-0.9f64..0.9, 9),
        r1 in 0.1f64..0.3,
        r2 in 0.1f64..0.3,
        r3 in 0.1f64..0.3,
    ) {
        let (container, fixed_spheres, grid) = setup();
        let radii = [r1, r2, r3];
        let w = ObjectiveWeights::default();
        let obj = Objective::new(w, Axis::Z, container.halfspaces(), &radii, &grid);
        let mut grad = vec![0.0; 9];
        let v_analytic = obj.value_and_grad(&positions, &mut grad);

        let planes = container.halfspaces().coefficient_rows();
        let (v_auto, g_auto) =
            autograd_objective(&positions, &radii, &fixed_spheres, &planes, w);

        prop_assert!((v_analytic - v_auto).abs() < 1e-8 * v_auto.abs().max(1.0),
            "values: {v_analytic} vs {v_auto}");
        for (a, b) in grad.iter().zip(&g_auto) {
            prop_assert!((a - b).abs() < 1e-8 * b.abs().max(1.0),
                "gradients: {a} vs {b}");
        }
    }
}
