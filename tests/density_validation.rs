//! The paper's headline quality claim (§V-A / Fig. 5): packing a 2×2×2 box
//! to capacity with mono-disperse r = 0.1 spheres yields a core density of
//! ≈0.6 (0.571–0.619 over seeds) with mean contact overlap below ~1 % of
//! the radius. This test runs the real experiment at a single seed (the
//! fig5 bench binary runs the 10-seed version) and asserts the paper's
//! ranges with modest slack.

use adampack_core::metrics;
use adampack_core::prelude::*;
use adampack_geometry::{shapes, Vec3};

#[test]
fn core_density_reaches_loose_random_packing_regime() {
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let params = PackingParams {
        batch_size: 500,
        target_count: 1_500, // more than fits: pack to capacity
        seed: 0,
        ..PackingParams::default()
    };
    let result = CollectivePacker::new(container.clone(), params).pack(&Psd::constant(0.1));

    // Paper: 950–1006 particles across seeds; allow slack for the rebuilt
    // pipeline.
    let n = result.particles.len();
    assert!(
        (850..=1100).contains(&n),
        "packed {n}, paper packs 950–1006"
    );

    // Core density in the virtual inner box (Fig. 4): paper 0.571–0.619.
    let density = metrics::core_density(&result.particles, &container.aabb(), 1.0 / 3.0);
    assert!(
        (0.52..=0.68).contains(&density),
        "core density {density:.3}, paper range 0.571–0.619"
    );

    // Mean contact overlap below ~1.1 % of the radius (paper §V-A); allow 3 %.
    let contact = metrics::contact_stats(&result.particles);
    assert!(
        contact.mean_overlap_ratio < 0.03,
        "mean overlap {:.2}% of radius",
        contact.mean_overlap_ratio * 100.0
    );
}

#[test]
fn density_beats_rsa_baseline() {
    // The Table I shape: collective arrangement must dominate RSA's
    // saturation density on the same problem.
    let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(2.0));
    let container = Container::from_mesh(&mesh).unwrap();
    let psd = Psd::constant(0.1);

    let params = PackingParams {
        batch_size: 500,
        target_count: 1_500,
        seed: 1,
        ..PackingParams::default()
    };
    let ours = CollectivePacker::new(container.clone(), params).pack(&psd);
    let rsa = RsaPacker {
        max_attempts: 2_000,
        seed: 1,
    }
    .pack(&container, &psd, 1_500);

    let d_ours = metrics::core_density(&ours.particles, &container.aabb(), 1.0 / 3.0);
    let d_rsa = metrics::core_density(&rsa.particles, &container.aabb(), 1.0 / 3.0);
    assert!(
        d_ours > d_rsa + 0.1,
        "collective ({d_ours:.3}) must clearly beat RSA ({d_rsa:.3})"
    );
}

#[test]
fn probe_counts_straddling_spheres_fractionally() {
    // Density probe sanity on a hand-built configuration: one sphere fully
    // inside the inner box, one exactly straddling its face.
    let container_box = adampack_geometry::Aabb::cube(Vec3::ZERO, 2.0);
    let inner = container_box.shrink(1.0 / 3.0); // side 4/3
    let particles = vec![
        Particle::new(Vec3::ZERO, 0.1),
        Particle::new(Vec3::new(inner.max.x, 0.0, 0.0), 0.1),
    ];
    let d = metrics::core_density(&particles, &container_box, 1.0 / 3.0);
    let v_sphere = 4.0 / 3.0 * std::f64::consts::PI * 0.001;
    let expect = (v_sphere + v_sphere / 2.0) / inner.volume();
    assert!((d - expect).abs() < 1e-9, "d = {d}, expect = {expect}");
}
