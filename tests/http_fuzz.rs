//! Fuzz/property tests for the server's hand-rolled HTTP parser. The
//! parser faces the open network, so its contract is strict: whatever a
//! peer sends — random bytes, truncated requests, oversized or duplicate
//! headers, lying `Content-Length`, a stalled (slowloris) connection —
//! the server must never panic, never hang past its read timeout, and
//! answer with a 4xx (or silently close) before moving on to the next
//! connection.
//!
//! One server instance (no workers doing real packing are needed —
//! nothing here submits a valid job) serves every case; after each
//! hostile exchange the suite proves the server is still alive with a
//! `/healthz` round-trip.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use adampack_geometry::{shapes, Vec3};
use adampack_io::write_stl_ascii;
use adampack_server::{client, ServeOptions, Server, ServerHandle};
use proptest::prelude::*;

/// The shared fuzz target. Leaked for the life of the test process.
fn target() -> SocketAddr {
    static SERVER: OnceLock<(ServerHandle, SocketAddr)> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let dir = std::env::temp_dir().join("adampack_http_fuzz");
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let mesh = shapes::box_mesh(Vec3::ZERO, Vec3::splat(1.0));
            let f = std::fs::File::create(dir.join("box.stl")).unwrap();
            write_stl_ascii(std::io::BufWriter::new(f), &mesh, "box").unwrap();
            let mut opts = ServeOptions {
                addr: "127.0.0.1:0".into(),
                workers: 1,
                http_threads: 2,
                queue_shards: 2,
                data_dir: dir.join("data"),
                config_base: dir.clone(),
                slice_ms: 1_000,
                checkpoint_every: 0,
                keep_last: 2,
                limits: Default::default(),
            };
            // Short read timeout: a stalled peer is cut off quickly, and
            // the slowloris test stays fast.
            opts.limits.read_timeout_ms = 500;
            let handle = Server::start(opts).unwrap();
            let addr = handle.addr();
            (handle, addr)
        })
        .1
}

/// Sends raw bytes, optionally half-closing the write side, and returns
/// the parsed status code — `None` when the server closed without a
/// response (its documented reaction to EOF-before-head and stalls).
fn exchange(addr: SocketAddr, payload: &[u8], close_write: bool) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The peer may answer-and-close mid-write on a huge hostile payload;
    // treat write errors as the connection ending early, not a failure.
    let _ = stream.write_all(payload);
    let _ = stream.flush();
    if close_write {
        let _ = stream.shutdown(Shutdown::Write);
    }
    // Read until the response head is complete. The server may RST right
    // after answering (it closes with our excess bytes unread), so a read
    // error after a complete head still counts as an answered request.
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None, // closed/reset before any head
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]);
    head.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}

/// The server must still answer cleanly after any hostile exchange.
fn assert_alive(addr: SocketAddr) {
    let (code, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
}

/// Status codes acceptable for hostile input: any client error, or the
/// overload statuses the admission layer may legitimately emit.
fn is_rejection(code: u16) -> bool {
    (400..500).contains(&code) || code == 503
}

/// Strategy for a string drawn from a fixed alphabet (the vendored
/// proptest has no regex strategies).
fn chars_of(alphabet: &'static [u8], len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (0u32..alphabet.len() as u32).prop_map(move |i| alphabet[i as usize] as char),
        len,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes on the wire: never a panic, never a 2xx (random
    /// noise cannot spell a valid request for a real route), always a
    /// rejection or a close.
    #[test]
    fn garbage_bytes_never_panic_and_never_succeed(
        bytes in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..2048),
    ) {
        let addr = target();
        if let Some(code) = exchange(addr, &bytes, true) {
            prop_assert!(
                is_rejection(code),
                "garbage got a non-rejection status {code}"
            );
        }
        assert_alive(addr);
    }

    /// A valid request truncated at any byte, with the write side then
    /// closed: the server answers 4xx or closes, and survives.
    #[test]
    fn truncated_requests_are_rejected_or_closed(
        cut in 0usize..120,
        path in chars_of(b"abcdefghij/", 0..12),
    ) {
        let addr = target();
        let full = format!(
            "POST /jobs{path} HTTP/1.1\r\nHost: x\r\nContent-Length: 30\r\n\r\nnot yaml at all, just filler.."
        );
        let payload = &full.as_bytes()[..cut.min(full.len())];
        if let Some(code) = exchange(addr, payload, true) {
            prop_assert!(
                is_rejection(code),
                "truncated request got status {code}"
            );
        }
        assert_alive(addr);
    }

    /// Oversized heads (one giant header line) must be answered with 431
    /// before the server buffers without bound.
    #[test]
    fn oversized_header_is_431(extra in 0usize..4096) {
        let addr = target();
        let huge = "x".repeat(70 * 1024 + extra);
        let req = format!("GET /healthz HTTP/1.1\r\nX-Junk: {huge}\r\n\r\n");
        let code = exchange(addr, req.as_bytes(), true);
        prop_assert_eq!(code, Some(431));
        assert_alive(addr);
    }

    /// Duplicate `Content-Length` headers: consistent duplicates parse
    /// (the body is then judged on its own merits), conflicting ones are
    /// a smuggling vector and must be 400.
    #[test]
    fn conflicting_content_length_is_400(a in 0usize..64, b in 0usize..64) {
        let addr = target();
        let body = "y".repeat(a);
        let req = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\n{body}"
        );
        let code = exchange(addr, req.as_bytes(), true);
        if a == b {
            // Consistent: the request parses; `/jobs` then rejects the
            // filler body as invalid YAML config (400).
            prop_assert_eq!(code, Some(400));
        } else {
            prop_assert_eq!(code, Some(400), "conflicting Content-Length must be 400");
        }
        assert_alive(addr);
    }

    /// A body longer than its declared `Content-Length` is pipelining /
    /// smuggling; this server is strictly one-request-per-connection.
    #[test]
    fn bytes_beyond_declared_body_are_400(extra in 1usize..128) {
        let addr = target();
        let junk = "z".repeat(extra);
        let req = format!("POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd{junk}");
        let code = exchange(addr, req.as_bytes(), true);
        prop_assert_eq!(code, Some(400));
        assert_alive(addr);
    }

    /// A declared body that never arrives (peer half-closes early) is a
    /// 400, not a hang.
    #[test]
    fn short_body_is_400(declared in 5usize..512, sent in 0usize..4) {
        let addr = target();
        let partial = "q".repeat(sent);
        let req = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n{partial}"
        );
        let code = exchange(addr, req.as_bytes(), true);
        prop_assert_eq!(code, Some(400));
        assert_alive(addr);
    }

    /// Non-numeric `Content-Length` is 400.
    #[test]
    fn malformed_content_length_is_400(junk in chars_of(b"abcXYZ!@#%~_", 1..12)) {
        let addr = target();
        let req = format!("POST /jobs HTTP/1.1\r\nContent-Length: {junk}\r\n\r\n");
        let code = exchange(addr, req.as_bytes(), true);
        prop_assert_eq!(code, Some(400));
        assert_alive(addr);
    }
}

/// A declared `Content-Length` over the configured body cap is answered
/// 413 immediately, before any body bytes are read.
#[test]
fn oversized_declared_body_is_413() {
    let addr = target();
    let req = "POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
    assert_eq!(exchange(addr, req.as_bytes(), false), Some(413));
    assert_alive(addr);
}

/// Slowloris: a peer that sends a partial head and then stalls forever
/// is cut off by the read timeout — the connection closes (no response
/// owed to a peer that never finished asking) and the server moves on.
#[test]
fn slowloris_is_cut_off_by_the_read_timeout() {
    let addr = target();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nHost: stall")
        .unwrap();
    stream.flush().unwrap();
    // Never send the rest. The server's 500ms read timeout must close
    // the connection from its side.
    let start = std::time::Instant::now();
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a stalled request must get no response bytes");
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "slowloris connection was not cut off"
    );
    assert_alive(addr);
}

/// Wrong methods on real routes are 405, unknown routes 404 — and the
/// happy path still works after all the hostile traffic above.
#[test]
fn routing_still_sane_under_fuzz() {
    let addr = target();
    let (code, _) = client::request(addr, "DELETE", "/metrics", b"").unwrap();
    assert_eq!(code, 405);
    let (code, _) = client::request(addr, "GET", "/no/such/route", b"").unwrap();
    assert_eq!(code, 404);
    let (code, _) = client::get(addr, "/readyz").unwrap();
    assert_eq!(code, 200);
    let (code, _) = client::get(addr, "/metrics").unwrap();
    assert_eq!(code, 200);
}
